#!/usr/bin/env python
"""CI fleet smoke: SIGKILL one fleet worker mid-replay.

The contract under test is the whole fleet stack through the CLI:

* ``repro serve --tcp --fleet 2`` fronts two supervised workers behind
  one port, routing by content-hash affinity;
* a SIGKILLed worker child is the supervisor's problem — it restarts,
  the router's retrying client rides it out under idempotency keys,
  and the worker keeps its hash range;
* therefore a replay that loses a worker mid-flight must complete with
  every request answered, identical to a fault-free baseline, and the
  front-end must still drain cleanly (exit 0) on ``shutdown``.

Exit 0 on success.  The fleet's ``stats`` document lands at
``--report`` (default ``fleet_report.json``) for the CI artifact
upload.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.resilience.retry import RetryPolicy, RetryingClient  # noqa: E402

STENCIL = """
do i = 2, n-1
  do j = 2, n-1
    a(i, j) = a(i-1, j) + a(i, j-1)
  enddo
enddo
"""

REQUESTS = 50


def request_script(n):
    """n requests over several distinct nests (so both workers own
    some of the corpus); every op is a pure function of its params."""
    script = []
    for i in range(n):
        text = STENCIL + f"! corpus nest {i % 8}\n"
        kind = i % 4
        if kind == 0:
            script.append({"id": i, "op": "parse",
                           "params": {"text": text}})
        elif kind == 1:
            script.append({"id": i, "op": "analyze",
                           "params": {"text": text}})
        elif kind == 2:
            script.append({"id": i, "op": "legality",
                           "params": {"text": text,
                                      "steps": "interchange(1,2)"}})
        else:
            script.append({"id": i, "op": "apply",
                           "params": {"text": text,
                                      "steps": "interchange(1,2)",
                                      "emit": "c"}})
    return script


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def find_worker_pid(fleet_dir, index=0):
    """A fleet worker child is the process whose argv carries that
    worker's heartbeat path (wN.hb inside the fleet directory)."""
    marker = os.path.join(fleet_dir, f"w{index}.hb")
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as fh:
                argv = fh.read().decode("utf-8", "replace").split("\0")
        except OSError:
            continue
        if marker in argv:
            return int(pid)
    return None


def start_fleet(tmpdir, tag, n):
    port = free_port()
    fleet_dir = os.path.join(tmpdir, tag)
    argv = [sys.executable, "-m", "repro", "serve", "--tcp",
            "--host", "127.0.0.1", "--port", str(port),
            "--fleet", str(n), "--fleet-dir", fleet_dir]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(argv, env=env)
    return proc, port, fleet_dir


def replay(port, kill_dir=None, kill_at=REQUESTS // 3):
    client = RetryingClient.tcp(
        "127.0.0.1", port,
        policy=RetryPolicy(attempts=10, backoff_max=3.0, budget=120.0),
        attempt_timeout=30.0)
    deadline = time.monotonic() + 60.0
    while True:  # wait for the front-end to accept
        try:
            client.request("ping")
            break
        except Exception:
            if time.monotonic() > deadline:
                raise
            client.close()
            time.sleep(0.25)
    replies = []
    for i, req in enumerate(request_script(REQUESTS)):
        if kill_dir is not None and i == kill_at:
            pid = find_worker_pid(kill_dir)
            if pid is None:
                raise SystemExit(
                    "fleet-smoke: could not find worker 0's child")
            os.kill(pid, signal.SIGKILL)
            print(f"fleet-smoke: SIGKILLed fleet worker child pid "
                  f"{pid} after {i} requests", flush=True)
        replies.append(client.request_raw(
            req["op"], req.get("params"), req_id=req["id"]))
    stats = client.request("stats")
    client.request_raw("shutdown")
    client.close()
    return replies, stats


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", default="fleet_report.json")
    parser.add_argument("--tmpdir", default=None)
    args = parser.parse_args()
    tmpdir = args.tmpdir or os.path.join(os.getcwd(), ".fleet-smoke")
    os.makedirs(tmpdir, exist_ok=True)

    print("fleet-smoke: fault-free N=1 baseline replay", flush=True)
    base_proc, base_port, _ = start_fleet(tmpdir, "baseline", 1)
    try:
        baseline, _ = replay(base_port)
    finally:
        base_code = base_proc.wait(timeout=60)
    assert base_code == 0, f"baseline front-end exited {base_code}"
    assert all(r["ok"] for r in baseline), "baseline replay failed"

    print("fleet-smoke: N=2 replay with mid-flight worker SIGKILL",
          flush=True)
    proc, port, fleet_dir = start_fleet(tmpdir, "chaotic", 2)
    try:
        chaotic, stats = replay(port, kill_dir=fleet_dir)
    finally:
        code = proc.wait(timeout=120)

    assert len(chaotic) == len(baseline)
    for base, chaos in zip(baseline, chaotic):
        assert chaos["ok"], f"request {base['id']} failed: {chaos}"
        assert base == chaos, (
            f"request {base['id']} diverged under chaos:\n"
            f"  baseline: {base}\n  chaotic:  {chaos}")
    assert code == 0, f"fleet front-end exited {code} (unclean drain)"

    fleet = stats["fleet"]
    assert fleet["size"] == 2, fleet
    restarts = sum(w.get("restarts", 0) for w in stats["workers"])
    assert restarts >= 1, "the kill never registered as a restart"
    with open(args.report, "w") as fh:
        json.dump({"requests": REQUESTS, "restarts": restarts,
                   "front_end_exit": code, "stats": stats},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"fleet-smoke: OK — {REQUESTS} requests answered identically "
          f"across a worker kill ({restarts} restart(s), "
          f"{fleet['counters']['failovers']} failover(s)); front-end "
          f"drained cleanly; report: {args.report}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
