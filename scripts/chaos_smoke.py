#!/usr/bin/env python
"""CI chaos smoke: SIGKILL a supervised server mid-replay.

The contract under test is the whole resilience stack at once:

* ``repro serve --tcp --supervise`` restarts the killed child with
  backoff and warm checkpoint restore;
* the child's answered-request dedup window plus the client's ``idem``
  keys turn the retried resends into exactly-once execution;
* therefore a replay that loses its server mid-flight must complete
  with every request answered, identical to a fault-free baseline.

Exit 0 on success.  The supervisor report lands at ``--report``
(default ``chaos_report.json``) for the CI artifact upload.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.resilience.retry import RetryPolicy, RetryingClient  # noqa: E402

STENCIL = """
do i = 2, n-1
  do j = 2, n-1
    a(i, j) = a(i-1, j) + a(i, j-1)
  enddo
enddo
"""

REQUESTS = 60


def request_script(n):
    """n requests cycling the pipeline ops (same shape as the
    differential suite in tests/test_resilience.py)."""
    script = []
    for i in range(n):
        kind = i % 4
        if kind == 0:
            script.append({"id": i, "op": "parse",
                           "params": {"text": STENCIL}})
        elif kind == 1:
            script.append({"id": i, "op": "analyze",
                           "params": {"text": STENCIL}})
        elif kind == 2:
            script.append({"id": i, "op": "legality",
                           "params": {"text": STENCIL,
                                      "steps": "interchange(1,2)"}})
        else:
            script.append({"id": i, "op": "apply",
                           "params": {"text": STENCIL,
                                      "steps": "interchange(1,2)",
                                      "emit": "c"}})
    return script


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def find_child_pid(marker):
    """The supervised *child* is the process whose argv carries the
    heartbeat path but not --supervise (that one is the supervisor)."""
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as fh:
                argv = fh.read().decode("utf-8", "replace").split("\0")
        except OSError:
            continue
        if marker in argv and "--supervise" not in argv:
            return int(pid)
    return None


def start_server(tmpdir, tag, supervise):
    port = free_port()
    heartbeat = os.path.join(tmpdir, f"{tag}.hb")
    argv = [sys.executable, "-m", "repro", "serve", "--tcp",
            "--host", "127.0.0.1", "--port", str(port),
            "--heartbeat-file", heartbeat, "--hang-timeout", "5"]
    if supervise:
        argv += ["--supervise", "--max-restarts", "5",
                 "--report", os.path.join(tmpdir, f"{tag}.report.json")]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(argv, env=env)
    return proc, port, heartbeat


def replay(port, kill_marker=None, kill_at=REQUESTS // 3):
    client = RetryingClient.tcp(
        "127.0.0.1", port,
        policy=RetryPolicy(attempts=10, backoff_max=3.0, budget=120.0),
        attempt_timeout=20.0)
    deadline = time.monotonic() + 30.0
    while True:  # wait for the server to accept
        try:
            client.request("ping")
            break
        except Exception:
            if time.monotonic() > deadline:
                raise
            client.close()
            time.sleep(0.25)
    replies = []
    for i, req in enumerate(request_script(REQUESTS)):
        if kill_marker is not None and i == kill_at:
            pid = find_child_pid(kill_marker)
            if pid is None:
                raise SystemExit(
                    "chaos-smoke: could not find supervised child")
            os.kill(pid, signal.SIGKILL)
            print(f"chaos-smoke: SIGKILLed supervised child pid {pid} "
                  f"after {i} requests", flush=True)
        replies.append(client.request_raw(
            req["op"], req.get("params"), req_id=req["id"]))
    client.request_raw("shutdown")
    client.close()
    return replies


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", default="chaos_report.json")
    parser.add_argument("--tmpdir", default=None)
    args = parser.parse_args()
    tmpdir = args.tmpdir or os.path.join(
        os.getcwd(), ".chaos-smoke")
    os.makedirs(tmpdir, exist_ok=True)

    print("chaos-smoke: fault-free baseline replay", flush=True)
    base_proc, base_port, _ = start_server(tmpdir, "baseline",
                                           supervise=False)
    try:
        baseline = replay(base_port)
    finally:
        base_proc.wait(timeout=30)
    assert all(r["ok"] for r in baseline), "baseline replay failed"

    print("chaos-smoke: supervised replay with mid-flight SIGKILL",
          flush=True)
    sup_proc, sup_port, heartbeat = start_server(tmpdir, "chaotic",
                                                 supervise=True)
    try:
        chaotic = replay(sup_port, kill_marker=heartbeat)
    finally:
        sup_code = sup_proc.wait(timeout=60)

    assert len(chaotic) == len(baseline)
    for base, chaos in zip(baseline, chaotic):
        assert chaos["ok"], f"request {base['id']} failed: {chaos}"
        assert base == chaos, (
            f"request {base['id']} diverged under chaos:\n"
            f"  baseline: {base}\n  chaotic:  {chaos}")
    assert sup_code == 0, f"supervisor exited {sup_code}"

    report_src = os.path.join(tmpdir, "chaotic.report.json")
    with open(report_src) as fh:
        report = json.load(fh)
    restarts = report.get("restart_count", 0)
    assert restarts >= 1, "the kill never registered as a restart"
    assert report.get("final") == "clean-exit", report.get("final")
    with open(args.report, "w") as fh:
        json.dump({"requests": REQUESTS, "restarts": restarts,
                   "final": report["final"],
                   "supervisor": report}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"chaos-smoke: OK — {REQUESTS} requests answered identically "
          f"across {restarts} restart(s); report: {args.report}",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
