#!/usr/bin/env python
"""CI trace-continuity smoke: one request, one stitched fleet trace.

The contract under test is distributed tracing through the CLI, end to
end:

* ``repro serve --tcp --fleet 2 --jobs 2 --trace-json ...`` turns the
  whole fleet's instrumentation on — front end, both supervised
  workers, and their forked pool children;
* ``repro client --trace-json ...`` roots one trace per scripted
  request, sends the context on the wire, and exports the *stitched*
  cross-process span tree shipped back on the responses;
* therefore a single ``search`` request against the fleet must yield
  **exactly one trace id** whose records cross at least three process
  boundaries (client → front end → worker service → pool child) and
  form a closed tree (every span's parent is in the export);
* ``repro stats`` against the same fleet must return the merged
  telemetry document, with the workers' summed request counters equal
  to the front end's own count and percentile estimates on the op's
  latency histogram.

Exit 0 on success.  The stitched client trace stays at
``--client-trace`` and a JSON summary (trace shape + the merged
telemetry document) lands at ``--report`` for the CI artifact upload.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.resilience.retry import RetryPolicy, RetryingClient  # noqa: E402

STENCIL = """
do i = 2, n-1
  do j = 2, n-1
    a(i, j) = a(i-1, j) + a(i, j-1)
  enddo
enddo
"""

#: Span names the stitched tree must contain, one per layer.
REQUIRED_NAMES = ("client.request", "fleet.admit", "fleet.request",
                  "service.request", "pool.worker", "pool.candidate")


def free_port():
    import socket
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def src_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return env


def wait_ready(port, timeout=90.0):
    client = RetryingClient.tcp(
        "127.0.0.1", port,
        policy=RetryPolicy(attempts=10, backoff_max=2.0, budget=60.0),
        attempt_timeout=30.0)
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.request("ping")
            return client
        except Exception:
            if time.monotonic() > deadline:
                raise
            client.close()
            time.sleep(0.25)


def check_trace(path):
    """Assert the stitched export is one closed cross-process tree."""
    with open(path) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    traced = [r for r in records if r.get("trace")]
    assert traced, f"{path} contains no traced spans"
    trace_ids = {r["trace"] for r in traced}
    assert len(trace_ids) == 1, (
        f"expected exactly one trace id, got {sorted(trace_ids)}")
    names = {r["name"] for r in traced}
    for required in REQUIRED_NAMES:
        assert required in names, (
            f"span {required!r} missing from the stitched trace "
            f"(have {sorted(names)})")
    procs = {r["proc"] for r in traced}
    assert len(procs) >= 4, (
        f"expected >= 4 processes (>= 3 boundaries) in the trace, "
        f"got {len(procs)}: {sorted(procs)}")
    ids = {r["id"] for r in traced}
    roots = []
    for r in traced:
        if r.get("parent") is None:
            roots.append(r["name"])
        else:
            assert r["parent"] in ids, (
                f"span {r['id']} ({r['name']}) has dangling parent "
                f"{r['parent']}")
    assert roots == ["client.request"], (
        f"expected the client span as the single root, got {roots}")
    return {"spans": len(traced), "trace_id": trace_ids.pop(),
            "processes": len(procs), "names": sorted(names)}


def check_stats(doc):
    """Assert the merged telemetry document adds up."""
    assert doc["router"]["enabled"], "fleet telemetry reports tracing off"
    merged = doc["merged"]
    frontend = doc["router"]["metrics"]
    # Routed totals agree layer by layer (the readiness ping rides
    # along with the search, so the totals are 2)...
    assert frontend["counters"]["fleet.frontend.requests"] == \
        doc["router"]["counters"]["requests"] == \
        frontend["counters"]["fleet.requests"], (
        f"front end and router disagree on the routed total: {doc['router']}")
    # ...and the workers' summed per-op counter matches the front end's
    # per-op SLO histogram (the workers also serve direct bootstrap
    # pings the front end never sees, so the comparison is per op).
    assert merged["counters"]["service.requests.search"] == \
        frontend["histograms"]["fleet.latency_ms.search"]["count"] == 1, (
        "workers' summed search count != front-end search count: "
        f"{merged['counters']} vs {frontend['histograms']}")
    lat = merged["histograms"]["service.latency_ms.search"]
    assert lat["count"] == 1 and lat["p95"] is not None, lat
    alive = [w for w in doc["workers"] if w.get("telemetry")]
    assert len(alive) == 2, f"expected 2 reporting workers: {doc['workers']}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", default="trace_report.json")
    parser.add_argument("--client-trace", dest="client_trace",
                        default="client_trace.jsonl")
    parser.add_argument("--tmpdir", default=None)
    args = parser.parse_args()
    tmpdir = args.tmpdir or tempfile.mkdtemp(prefix="trace-smoke-")
    os.makedirs(tmpdir, exist_ok=True)

    script = os.path.join(tmpdir, "script.ndjson")
    with open(script, "w") as fh:
        fh.write(json.dumps({
            "id": 1, "op": "search",
            "params": {"text": STENCIL, "depth": 1, "beam": 4}}) + "\n")

    port = free_port()
    fleet_dir = os.path.join(tmpdir, "fleet")
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--tcp",
         "--host", "127.0.0.1", "--port", str(port),
         "--fleet", "2", "--fleet-dir", fleet_dir, "--jobs", "2",
         "--trace-json", os.path.join(tmpdir, "frontend_trace.jsonl")],
        env=src_env())
    try:
        print("trace-smoke: waiting for the N=2 fleet front end",
              flush=True)
        probe = wait_ready(port)
        probe.close()

        print("trace-smoke: replaying 1 search request with --trace-json",
              flush=True)
        code = subprocess.call(
            [sys.executable, "-m", "repro", "client", script,
             "--connect", f"127.0.0.1:{port}", "--retries", "3",
             "--trace-json", args.client_trace],
            env=src_env(), stdout=subprocess.DEVNULL)
        assert code == 0, f"repro client exited {code}"

        print("trace-smoke: fetching merged fleet telemetry via "
              "`repro stats`", flush=True)
        stats_out = subprocess.run(
            [sys.executable, "-m", "repro", "stats",
             "--connect", f"127.0.0.1:{port}"],
            env=src_env(), capture_output=True, text=True)
        assert stats_out.returncode == 0, stats_out.stderr
        stats = json.loads(stats_out.stdout)

        shutdown = RetryingClient.tcp(
            "127.0.0.1", port,
            policy=RetryPolicy(attempts=4, backoff_max=1.0))
        shutdown.request_raw("shutdown")
        shutdown.close()
    finally:
        code = serve.wait(timeout=120)
    assert code == 0, f"fleet front end exited {code} (unclean drain)"

    shape = check_trace(args.client_trace)
    check_stats(stats)
    with open(args.report, "w") as fh:
        json.dump({"trace": shape, "stats": stats}, fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
    print(f"trace-smoke: OK — {shape['spans']} spans, one trace id "
          f"({shape['trace_id']}) across {shape['processes']} processes; "
          f"merged telemetry adds up; report: {args.report}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
