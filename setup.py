"""Legacy setup shim.

``pip install -e .`` on modern pip requires the ``wheel`` package for the
editable build; on fully offline machines without ``wheel`` installed, use

    python setup.py develop

which this shim enables, or add ``src/`` to a ``.pth`` file.
"""

from setuptools import setup

setup()
