"""Greedy deterministic auto-shrinking of failing fuzz cases.

Given a failing :class:`~repro.fuzz.oracles.CaseOutcome`, the shrinker
searches for the smallest case that *still fails the same oracle with
the same status*, by repeatedly trying reductions in a fixed order and
keeping the first that reproduces:

1. drop the transformation sequence, or individual steps from it;
2. drop body statements (a repro with one statement beats two);
3. unwrap ``if`` guards;
4. drop loops (substituting the index by its lower bound everywhere);
5. replace non-constant bounds by small constants, right-hand sides by
   ``0``, and subscripts by the bare loop index;
6. halve constants toward zero and shrink symbol values toward 3.

Every accepted reduction restarts the pass (greedy fixpoint); the
procedure is a pure function of the input outcome, so the same seed
and the same failure always shrink to the byte-identical artifact —
what the corpus's determinism test asserts.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.expr.nodes import (
    Add,
    Call,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    add,
    call,
    ceildiv,
    const,
    floordiv,
    mod,
    mul,
    substitute,
    var,
    vmax,
    vmin,
)
from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracles import (
    DEFAULT_TIME_LIMIT,
    CaseOutcome,
    evaluate_case,
)
from repro.ir.loopnest import ArrayRef, Assign, If, Loop, LoopNest, Statement
from repro.ir.parser import parse_nest
from repro.obs.metrics import get_metrics
from repro.util.errors import ReproError

#: Hard cap on accepted reductions — a backstop, not a tuning knob
#: (typical failures shrink in well under 50 steps).
MAX_SHRINK_STEPS = 400


def shrink_case(outcome: CaseOutcome, service=None, fleet=None,
                time_limit: float = DEFAULT_TIME_LIMIT) -> CaseOutcome:
    """Minimal outcome reproducing *outcome*'s failure (greedy fixpoint).

    Returns a new outcome whose case is no larger than the input's and
    whose (status, oracle) match; if nothing reduces, the original
    outcome comes back unchanged.
    """
    if not outcome.failed or outcome.oracle is None:
        return outcome
    oracle = outcome.oracle
    status = outcome.status
    metrics = get_metrics()

    def still_fails(case: FuzzCase) -> Optional[CaseOutcome]:
        got = evaluate_case(case, oracles=(oracle,), service=service,
                            fleet=fleet, time_limit=time_limit)
        if got.status == status and got.oracle == oracle:
            return got
        return None

    best = outcome
    steps_taken = 0
    while steps_taken < MAX_SHRINK_STEPS:
        for candidate in _reductions(best.case):
            got = still_fails(candidate)
            if got is not None:
                best = got
                steps_taken += 1
                metrics.counter("fuzz.shrink_steps").inc()
                break
        else:
            break  # no reduction reproduces: fixpoint
    return best


# ---------------------------------------------------------------------------
# candidate enumeration — strictly ordered, no randomness


def _reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    """Candidate reductions of *case*, biggest wins first."""
    yield from _step_reductions(case)
    try:
        nest = parse_nest(case.text)
    except ReproError:
        nest = None
    if nest is not None:
        yield from _nest_reductions(case, nest)
    yield from _symbol_reductions(case)


def _with(case: FuzzCase, text: Optional[str] = None,
          steps: Optional[str] = "<keep>",
          symbols: Optional[dict] = None) -> FuzzCase:
    return FuzzCase(
        case.seed, case.case_id,
        case.text if text is None else text,
        case.steps if steps == "<keep>" else steps,
        case.symbols if symbols is None else symbols)


def _step_reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    if not case.steps:
        return
    yield _with(case, steps=None)
    parts = [p.strip() for p in case.steps.split(";") if p.strip()]
    if len(parts) > 1:
        for i in range(len(parts)):
            rest = parts[:i] + parts[i + 1:]
            yield _with(case, steps="; ".join(rest))


def _nest_reductions(case: FuzzCase,
                     nest: LoopNest) -> Iterator[FuzzCase]:
    # drop whole body statements
    if len(nest.body) > 1:
        for i in range(len(nest.body)):
            body = nest.body[:i] + nest.body[i + 1:]
            yield from _rebuilt(case, nest.loops, body)
    # unwrap guards
    for i, stmt in enumerate(nest.body):
        if isinstance(stmt, If):
            body = _replace(nest.body, i, stmt.then)
            yield from _rebuilt(case, nest.loops, body)
    # drop loops, substituting the index by its lower bound
    if len(nest.loops) > 1:
        for i, loop in enumerate(nest.loops):
            mapping = {loop.index: loop.lower}
            loops = [Loop(lp.index,
                          substitute(lp.lower, mapping),
                          substitute(lp.upper, mapping),
                          substitute(lp.step, mapping), lp.kind)
                     for j, lp in enumerate(nest.loops) if j != i]
            body = [_subst_stmt(s, mapping) for s in nest.body]
            yield from _rebuilt(case, loops, body)
    # simplify bounds to small constants
    for i, loop in enumerate(nest.loops):
        for lower, upper in ((const(0), const(2)), (const(0), const(3))):
            if (loop.lower, loop.upper) == (lower, upper):
                continue
            loops = _replace(nest.loops, i,
                             Loop(loop.index, lower, upper, const(1),
                                  loop.kind))
            yield from _rebuilt(case, loops, list(nest.body))
    # zero out right-hand sides, simplify subscripts
    for i, stmt in enumerate(nest.body):
        target = _target_of(stmt)
        if target is None:
            continue
        inner = _assign_of(stmt)
        if inner.expr != const(0):
            yield from _rebuilt(
                case, nest.loops,
                _replace(nest.body, i,
                         _rewrap(stmt, Assign(target, const(0),
                                              inner.accumulate))))
        for k, sub in enumerate(target.subscripts):
            for idx in _loop_vars(nest):
                if sub != idx:
                    subs = _replace(target.subscripts, k, idx)
                    new = Assign(ArrayRef(target.name, subs), inner.expr,
                                 inner.accumulate)
                    yield from _rebuilt(case, nest.loops,
                                        _replace(nest.body, i,
                                                 _rewrap(stmt, new)))
                    break
    # halve constants everywhere
    for shrunk in _const_shrinks(nest):
        yield from _rebuilt(case, shrunk.loops, list(shrunk.body))


def _symbol_reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    for name in sorted(case.symbols):
        value = case.symbols[name]
        for smaller in (3, value // 2, value - 1):
            if 1 <= smaller < value:
                symbols = dict(case.symbols)
                symbols[name] = smaller
                yield _with(case, symbols=symbols)


# ---------------------------------------------------------------------------
# helpers


def _rebuilt(case: FuzzCase, loops, body) -> Iterator[FuzzCase]:
    """Yield *case* with the nest rebuilt from loops/body — silently
    skipping rebuilds the IR itself rejects (those cannot be repros)."""
    if not body:
        return
    try:
        text = LoopNest(list(loops), list(body)).pretty()
    except (ReproError, ValueError, TypeError):
        return
    if text != case.text:
        yield _with(case, text=text)


def _replace(seq, i, value) -> list:
    out = list(seq)
    out[i] = value
    return out


def _target_of(stmt: Statement) -> Optional[ArrayRef]:
    inner = _assign_of(stmt)
    return inner.target if inner is not None else None


def _assign_of(stmt: Statement) -> Optional[Assign]:
    while isinstance(stmt, If):
        stmt = stmt.then
    return stmt if isinstance(stmt, Assign) else None


def _rewrap(stmt: Statement, new_inner: Statement) -> Statement:
    """*stmt* with its innermost Assign replaced, guards preserved."""
    if isinstance(stmt, If):
        return If(stmt.cond, _rewrap(stmt.then, new_inner))
    return new_inner


def _loop_vars(nest: LoopNest) -> List[Expr]:
    return [var(lp.index) for lp in nest.loops]


def _subst_stmt(stmt: Statement, mapping) -> Statement:
    if isinstance(stmt, If):
        return If(substitute(stmt.cond, mapping),
                  _subst_stmt(stmt.then, mapping))
    if isinstance(stmt, Assign):
        target = ArrayRef(stmt.target.name,
                          [substitute(s, mapping)
                           for s in stmt.target.subscripts])
        return Assign(target, substitute(stmt.expr, mapping),
                      stmt.accumulate)
    return stmt


def _const_shrinks(nest: LoopNest) -> Iterator[LoopNest]:
    """Nests with exactly one constant halved toward zero."""
    consts = sorted({c for c in _all_consts(nest) if abs(c) > 1},
                    key=lambda c: (-abs(c), c))
    for target in consts:
        smaller = target // 2 if target > 0 else -((-target) // 2)

        def fn(value: int, _t=target, _s=smaller) -> int:
            return _s if value == _t else value

        try:
            loops = [Loop(lp.index, _map_consts(lp.lower, fn),
                          _map_consts(lp.upper, fn),
                          _map_consts(lp.step, fn), lp.kind)
                     for lp in nest.loops]
            body = [_map_stmt_consts(s, fn) for s in nest.body]
            yield LoopNest(loops, body)
        except (ReproError, ValueError, TypeError, ZeroDivisionError):
            continue


def _all_consts(nest: LoopNest) -> Iterator[int]:
    for lp in nest.loops:
        for e in (lp.lower, lp.upper, lp.step):
            yield from _expr_consts(e)
    for stmt in nest.body:
        yield from _stmt_consts(stmt)


def _stmt_consts(stmt: Statement) -> Iterator[int]:
    if isinstance(stmt, If):
        yield from _expr_consts(stmt.cond)
        yield from _stmt_consts(stmt.then)
    elif isinstance(stmt, Assign):
        for s in stmt.target.subscripts:
            yield from _expr_consts(s)
        yield from _expr_consts(stmt.expr)


def _expr_consts(e: Expr) -> Iterator[int]:
    if isinstance(e, Const):
        yield e.value
    elif isinstance(e, Add):
        for t in e.terms:
            yield from _expr_consts(t)
    elif isinstance(e, Mul):
        for f in e.factors:
            yield from _expr_consts(f)
    elif isinstance(e, (FloorDiv, CeilDiv, Mod)):
        yield from _expr_consts(e.num)
        yield from _expr_consts(e.den)
    elif isinstance(e, (Min, Max)):
        for a in e.args:
            yield from _expr_consts(a)
    elif isinstance(e, Call):
        for a in e.args:
            yield from _expr_consts(a)


def _map_stmt_consts(stmt: Statement, fn) -> Statement:
    if isinstance(stmt, If):
        return If(_map_consts(stmt.cond, fn),
                  _map_stmt_consts(stmt.then, fn))
    if isinstance(stmt, Assign):
        target = ArrayRef(stmt.target.name,
                          [_map_consts(s, fn)
                           for s in stmt.target.subscripts])
        return Assign(target, _map_consts(stmt.expr, fn), stmt.accumulate)
    return stmt


def _map_consts(e: Expr, fn) -> Expr:
    """Rebuild *e* with every constant passed through *fn*,
    renormalizing via the smart constructors."""
    if isinstance(e, Const):
        return const(fn(e.value))
    if isinstance(e, Var):
        return e
    if isinstance(e, Add):
        return add(*[_map_consts(t, fn) for t in e.terms])
    if isinstance(e, Mul):
        return mul(*[_map_consts(f, fn) for f in e.factors])
    if isinstance(e, FloorDiv):
        return floordiv(_map_consts(e.num, fn), _map_consts(e.den, fn))
    if isinstance(e, CeilDiv):
        return ceildiv(_map_consts(e.num, fn), _map_consts(e.den, fn))
    if isinstance(e, Mod):
        return mod(_map_consts(e.num, fn), _map_consts(e.den, fn))
    if isinstance(e, Min):
        return vmin(*[_map_consts(a, fn) for a in e.args])
    if isinstance(e, Max):
        return vmax(*[_map_consts(a, fn) for a in e.args])
    if isinstance(e, Call):
        return call(e.func, *[_map_consts(a, fn) for a in e.args])
    return e
