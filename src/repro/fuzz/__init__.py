"""Generative differential fuzzing: the trust layer for the stack.

The framework rests on one contract — any legality-accepted
transformation sequence preserves the semantics of the nest it is
applied to — and every layer above (compiled/vectorized engines,
model-guided search, the parallel pool, the service and the fleet)
claims to be differentially identical to the layer below.  This package
attacks those claims adversarially at scale:

* :mod:`repro.fuzz.gen` — a seeded, reproducible random loop-nest
  generator (parametric/triangular/min-max/mod-div bounds, guarded
  statements, accumulations) plus a random transformation-sequence
  generator over the step mini-language;
* :mod:`repro.fuzz.oracles` — the differential oracles: semantics
  preservation under the interpreter, interpreter vs compiled vs
  vectorized engines, brute vs ``prune+speculate`` search, ``jobs=1``
  vs ``jobs=N``, in-process vs service vs N=2 fleet;
* :mod:`repro.fuzz.harness` — the case runner: every divergence,
  non-typed exception or hang is a failure, with obs spans/counters
  (``fuzz.cases``, ``fuzz.divergence.<oracle>``, ...);
* :mod:`repro.fuzz.shrink` — a deterministic greedy auto-shrinker
  (step/statement/loop deletion, constant minimization) that re-runs
  the failing oracle at every candidate reduction and emits a minimal
  repro artifact;
* :mod:`repro.fuzz.corpus` — the persisted regression bank
  (``tests/corpus/fuzz/``) replayed by tier-1;
* :mod:`repro.fuzz.chaos_matrix` — the chaos dimension: a sample of
  cases re-run under :mod:`repro.resilience.chaos` fault specs with a
  supervised, retrying service, asserting exactly-once answers
  identical to the unfaulted run.

Entry point: ``python -m repro fuzz --cases N --seed S [--matrix ...]``.
"""

from repro.fuzz.gen import CaseGen, FuzzCase
from repro.fuzz.harness import FuzzReport, run_fuzz
from repro.fuzz.oracles import CaseOutcome, ORACLE_NAMES, evaluate_case
from repro.fuzz.shrink import shrink_case
from repro.fuzz.corpus import (
    corpus_dir,
    list_artifacts,
    load_artifact,
    replay_artifact,
    write_artifact,
)

__all__ = [
    "CaseGen", "FuzzCase", "FuzzReport", "run_fuzz",
    "CaseOutcome", "ORACLE_NAMES", "evaluate_case", "shrink_case",
    "corpus_dir", "list_artifacts", "load_artifact", "replay_artifact",
    "write_artifact",
]
