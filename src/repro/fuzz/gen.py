"""Seeded random loop-nest and transformation-sequence generation.

Every case is a pure function of ``(seed, case_id)``: the generator
builds a :class:`~repro.ir.loopnest.LoopNest` programmatically, renders
it through ``LoopNest.pretty()`` (so the text round-trips through the
real parser, which is itself one of the oracles) and draws a
transformation-sequence spec in the step mini-language of
:mod:`repro.core.spec`.  The shapes are chosen to cover what the paper's
legality machinery actually has to reason about:

* bounds — constant, parametric (``n``), triangular (outer-index),
  ``min``/``max`` guards, ``div`` of an invariant, negative steps;
* subscripts — affine combinations of indices, constant offsets,
  ``mod``/``div`` subscripts, rank 1-2;
* statements — plain and accumulating (``+=``) assignments, ``if``
  guards over affine conditions, multiple statements per body;
* sequences — 0-3 steps over interchange / permute / reverse / skew /
  parallelize / block / stripmine / coalesce / interleave / wavefront,
  arity-tracked through depth changes.

Small index spaces (symbols 3-6, constant extents <= 6) keep a full
differential check cheap while still exercising boundary iterations.
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Optional, Tuple

from repro.core.spec import build_step
from repro.expr.nodes import (
    Expr,
    add,
    call,
    const,
    floordiv,
    mod,
    mul,
    var,
    vmax,
    vmin,
)
from repro.ir.loopnest import (
    ArrayRef,
    Assign,
    If,
    Loop,
    LoopNest,
    Statement,
)

#: Loop index names, outermost first.
INDEX_NAMES = ("i", "j", "k", "l")

#: Array names the generator draws targets and reads from.
ARRAY_NAMES = ("a", "b", "c")

#: Maximum nest depth a transformation sequence may reach (Block and
#: Interleave grow the nest; unbounded growth makes cases explode).
MAX_SEQ_DEPTH = 6


class FuzzCase:
    """One generated case: nest source, sequence spec, symbol values.

    The nest *text* (not the object) is the canonical form — it feeds
    the same parser every other entry point uses, and it is what the
    shrinker minimizes and the corpus persists.
    """

    __slots__ = ("seed", "case_id", "text", "steps", "symbols")

    def __init__(self, seed: int, case_id: int, text: str,
                 steps: Optional[str], symbols: Dict[str, int]):
        self.seed = seed
        self.case_id = case_id
        self.text = text
        self.steps = steps or None
        self.symbols = dict(symbols)

    def to_json(self) -> Dict[str, object]:
        return {"seed": self.seed, "case_id": self.case_id,
                "text": self.text, "steps": self.steps,
                "symbols": dict(sorted(self.symbols.items()))}

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "FuzzCase":
        return cls(int(doc.get("seed", 0)), int(doc.get("case_id", 0)),
                   str(doc["text"]), doc.get("steps") or None,
                   {str(k): int(v)
                    for k, v in (doc.get("symbols") or {}).items()})

    def key(self) -> str:
        """A stable content key (for dedup across shrunk artifacts)."""
        return json.dumps(self.to_json(), sort_keys=True)

    def __repr__(self):
        head = self.text.splitlines()[0] if self.text else ""
        return (f"FuzzCase(seed={self.seed}, id={self.case_id}, "
                f"{head!r}..., steps={self.steps!r})")


class CaseGen:
    """Deterministic case factory: ``CaseGen(seed).case(i)`` is stable
    across processes and platforms (``random.Random`` is seeded per
    case, never shared)."""

    def __init__(self, seed: int):
        self.seed = int(seed)

    def case(self, case_id: int) -> FuzzCase:
        rng = random.Random((self.seed * 1_000_003) ^ case_id)
        symbols = {"n": rng.randint(3, 6)}
        if rng.random() < 0.3:
            symbols["m"] = rng.randint(2, 5)
        nest = self._gen_nest(rng, symbols)
        steps = self._gen_steps(rng, nest.depth)
        return FuzzCase(self.seed, case_id, nest.pretty(), steps, symbols)

    def cases(self, count: int, start: int = 0):
        for case_id in range(start, start + count):
            yield self.case(case_id)

    # -- nests ---------------------------------------------------------

    def _gen_nest(self, rng: random.Random,
                  symbols: Dict[str, int]) -> LoopNest:
        depth = rng.choices((1, 2, 3), weights=(2, 5, 3))[0]
        loops: List[Loop] = []
        for level in range(depth):
            loops.append(self._gen_loop(rng, level, loops, symbols))
        ranks = {name: rng.randint(1, min(2, depth))
                 for name in ARRAY_NAMES}
        body: List[Statement] = []
        for _ in range(rng.choices((1, 2, 3), weights=(5, 3, 1))[0]):
            body.append(self._gen_statement(rng, loops, ranks, symbols))
        return LoopNest(loops, body)

    def _gen_loop(self, rng: random.Random, level: int,
                  outer: List[Loop], symbols: Dict[str, int]) -> Loop:
        index = INDEX_NAMES[level]
        n = var("n")
        kind = rng.choices(
            ("const", "param", "tri_lo", "tri_hi", "minmax", "div"),
            weights=(3, 4, 2 if outer else 0, 2 if outer else 0,
                     1 if outer else 0, 1))[0]
        if kind == "const":
            lo_v = rng.randint(-2, 2)
            lower, upper = const(lo_v), const(lo_v + rng.randint(1, 5))
        elif kind == "param":
            lower, upper = const(rng.randint(0, 1)), n
            if rng.random() < 0.3:
                upper = add(n, const(-1))
        elif kind == "tri_lo":
            anchor = var(rng.choice(outer).index)
            lower = (anchor if rng.random() < 0.7
                     else add(anchor, const(rng.randint(-1, 1))))
            upper = n if rng.random() < 0.8 else add(n, const(1))
        elif kind == "tri_hi":
            anchor = var(rng.choice(outer).index)
            lower = const(rng.randint(0, 1))
            upper = (anchor if rng.random() < 0.7
                     else add(anchor, const(rng.randint(-1, 1))))
        elif kind == "minmax":
            anchor = var(rng.choice(outer).index)
            if rng.random() < 0.5:
                lower = const(1)
                upper = vmin(n, add(anchor, const(rng.randint(1, 2))))
            else:
                lower = vmax(const(1), add(anchor, const(-rng.randint(1, 2))))
                upper = n
        else:  # div
            lower = const(rng.randint(0, 1))
            upper = add(floordiv(n, const(2)), const(rng.randint(1, 2)))
        step: Expr = const(1)
        roll = rng.random()
        if roll < 0.10 and kind in ("const", "param"):
            lower, upper, step = upper, lower, const(-1)
        elif roll < 0.22:
            step = const(2)
        return Loop(index, lower, upper, step)

    # -- statements ----------------------------------------------------

    def _gen_statement(self, rng: random.Random, loops: List[Loop],
                       ranks: Dict[str, int],
                       symbols: Dict[str, int]) -> Statement:
        target_name = rng.choice(ARRAY_NAMES)
        rank = ranks[target_name]
        subscripts = [self._gen_subscript(rng, loops)
                      for _ in range(rank)]
        rhs = self._gen_rhs(rng, loops, ranks)
        stmt: Statement = Assign(ArrayRef(target_name, subscripts), rhs,
                                 accumulate=rng.random() < 0.25)
        if rng.random() < 0.2:
            left = var(rng.choice(loops).index)
            right = (const(rng.randint(0, 3)) if rng.random() < 0.5 or
                     len(loops) == 1 else var(rng.choice(loops).index))
            op = rng.choice(("le", "ge", "lt", "gt", "eq"))
            stmt = If(call(op, left, right), stmt)
        return stmt

    def _gen_subscript(self, rng: random.Random,
                       loops: List[Loop]) -> Expr:
        kind = rng.choices(("affine", "mod", "div"),
                           weights=(7, 1, 1))[0]
        idx = var(rng.choice(loops).index)
        if kind == "mod":
            return mod(add(idx, const(rng.randint(0, 2))),
                       const(rng.randint(2, 4)))
        if kind == "div":
            other = var(rng.choice(loops).index)
            return floordiv(add(idx, other), const(2))
        terms: List[Expr] = [idx]
        if len(loops) > 1 and rng.random() < 0.35:
            other = rng.choice(loops).index
            if other != idx.name:
                coeff = rng.choice((1, 1, -1, 2))
                terms.append(mul(const(coeff), var(other)))
        offset = rng.choices((0, 0, 0, 1, -1, 2), weights=(6, 6, 6, 3, 3, 1))[0]
        if offset:
            terms.append(const(offset))
        return add(*terms)

    def _gen_rhs(self, rng: random.Random, loops: List[Loop],
                 ranks: Dict[str, int]) -> Expr:
        terms: List[Expr] = []
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.55:
                name = rng.choice(ARRAY_NAMES)
                subs = [self._gen_subscript(rng, loops)
                        for _ in range(ranks[name])]
                terms.append(call(name, *subs))
            elif roll < 0.8:
                terms.append(var(rng.choice(loops).index))
            else:
                terms.append(const(rng.randint(-3, 5)))
        expr = add(*terms)
        if rng.random() < 0.15:
            expr = mul(const(rng.choice((2, 3, -1))), expr)
        return expr

    # -- transformation sequences --------------------------------------

    def _gen_steps(self, rng: random.Random, depth: int) -> Optional[str]:
        length = rng.choices((0, 1, 2, 3), weights=(2, 4, 3, 1))[0]
        if length == 0:
            return None
        parts: List[str] = []
        n = depth
        for _ in range(length):
            spec = self._gen_step(rng, n)
            if spec is None:
                break
            parts.append(spec)
            # Track the depth the next step will see.
            step = build_step(*_name_args(spec), n)
            n = step.output_depth
        return "; ".join(parts) if parts else None

    def _gen_step(self, rng: random.Random, n: int) -> Optional[str]:
        menu = ["reverse", "parallelize", "stripmine"]
        if n >= 2:
            menu += ["interchange", "permute", "skew", "coalesce",
                     "wavefront"]
        if n >= 2 and n + 2 <= MAX_SEQ_DEPTH:
            menu += ["block", "interleave"]
        if n + 1 > MAX_SEQ_DEPTH:
            menu = [m for m in menu if m != "stripmine"]
        if not menu:
            return None
        name = rng.choice(menu)
        if name == "interchange":
            a, b = rng.sample(range(1, n + 1), 2)
            return f"interchange({a},{b})"
        if name == "permute":
            order = list(range(1, n + 1))
            rng.shuffle(order)
            return "permute(" + ",".join(map(str, order)) + ")"
        if name == "reverse":
            return f"reverse({rng.randint(1, n)})"
        if name == "skew":
            t, s = rng.sample(range(1, n + 1), 2)
            return f"skew({t},{s},{rng.randint(1, 2)})"
        if name == "parallelize":
            return f"parallelize({rng.randint(1, n)})"
        if name == "stripmine":
            return f"stripmine({rng.randint(1, n)},{rng.choice((2, 3, 4))})"
        if name == "coalesce":
            i = rng.randint(1, n - 1)
            return f"coalesce({i},{i + 1})"
        if name == "wavefront":
            return "wavefront()"
        # block / interleave over a 2-loop window
        i = rng.randint(1, n - 1)
        j = i + 1
        size = rng.choice((2, 3, 4))
        suffix = ",'precise'" if rng.random() < 0.25 else ""
        return f"{name}({i},{j},{size}{suffix})"


def _name_args(spec: str) -> Tuple[str, list]:
    from repro.core.spec import parse_call
    return parse_call(spec)
