"""The differential oracles: every cross-layer claim, checked per case.

An oracle takes one :class:`~repro.fuzz.gen.FuzzCase` and either passes
or produces a :class:`CaseOutcome` explaining how the stack broke its
own contract.  The outcome taxonomy is strict:

``ok``
    every selected oracle passed;
``rejected``
    a layer refused the input with a *typed* :class:`ReproError`
    (illegal sequence, resource guard, unsupported shape) — allowed,
    because refusing is part of every contract;
``divergence``
    two layers that promise identical answers disagreed;
``crash``
    an untyped exception escaped (the bug class satellite #1 closed for
    the parsers, enforced here for the whole stack);
``hang``
    a case exceeded its per-oracle wall-clock budget.

Oracles are pure functions of the case (plus an optional shared
service/fleet), so the shrinker can re-run exactly the one that failed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.spec import parse_steps
from repro.deps.analysis import analyze
from repro.fuzz.gen import ARRAY_NAMES, FuzzCase
from repro.ir.parser import parse_nest
from repro.optimize.search import SearchConfig, search
from repro.parallel.worker import call_with_timeout
from repro.runtime import (
    Array,
    numpy_available,
    run_compiled,
    run_nest,
    run_vectorized,
)
from repro.runtime.oracle import (
    OracleFailure,
    check_equivalence,
    same_iteration_multiset,
)
from repro.util.errors import ReproError

#: Oracle names in cheap-to-expensive order.  ``pipeline`` through
#: ``engines`` run on every case; ``search``/``jobs`` need the search
#: space and are sampled; ``service``/``fleet`` need a live server and
#: are sampled harder; ``chaos`` lives in
#: :mod:`repro.fuzz.chaos_matrix`.
ORACLE_NAMES = ("pipeline", "semantics", "engines", "search", "jobs",
                "service", "fleet", "chaos")

#: Per-oracle wall-clock budget (seconds).  Generated index spaces are
#: tiny; anything that takes this long is a hang, not a slow case.
DEFAULT_TIME_LIMIT = 10.0


class CaseOutcome:
    """The verdict for one case under one oracle selection."""

    __slots__ = ("case", "status", "oracle", "detail")

    def __init__(self, case: FuzzCase, status: str,
                 oracle: Optional[str] = None, detail: str = ""):
        self.case = case
        self.status = status          # ok | rejected | divergence | crash | hang
        self.oracle = oracle
        self.detail = detail

    @property
    def failed(self) -> bool:
        return self.status in ("divergence", "crash", "hang")

    def to_json(self) -> Dict[str, object]:
        return {"case": self.case.to_json(), "status": self.status,
                "oracle": self.oracle, "detail": self.detail}

    def __repr__(self):
        return (f"CaseOutcome({self.status}, oracle={self.oracle!r}, "
                f"case_id={self.case.case_id}, {self.detail[:60]!r})")


def make_arrays(case: FuzzCase) -> Dict[str, Array]:
    """Deterministic nonzero input arrays for *case*.

    Every array gets both rank-1 and rank-2 entries over a window wide
    enough to cover skewed/offset subscripts; reads outside the window
    fall back to the default 0, which all engines share.
    """
    rng = random.Random((case.seed * 2_000_003) ^ (case.case_id * 7 + 1))
    span = range(-4, 12)
    arrays: Dict[str, Array] = {}
    for name in ARRAY_NAMES:
        data: Dict[Tuple[int, ...], int] = {}
        for v in span:
            data[(v,)] = rng.randint(-9, 9)
        for v1 in span:
            for v2 in span:
                data[(v1, v2)] = rng.randint(-9, 9)
        arrays[name] = Array(0, name, data)
    return arrays


class _Prepared:
    """Parsed pipeline state shared by the oracles for one case."""

    __slots__ = ("nest", "deps", "transformation", "report", "transformed",
                 "arrays")

    def __init__(self, nest, deps, transformation, report, transformed,
                 arrays):
        self.nest = nest
        self.deps = deps
        self.transformation = transformation
        self.report = report
        self.transformed = transformed
        self.arrays = arrays


# ---------------------------------------------------------------------------
# individual oracles — each raises OracleFailure on divergence, any
# ReproError to reject, anything else is a crash (classified by the
# caller).


def _oracle_pipeline(case: FuzzCase) -> _Prepared:
    """Parse, round-trip, analyze, build the sequence, test legality.

    Also the constructor for the shared state: every other oracle uses
    its result.
    """
    nest = parse_nest(case.text)
    canon = nest.pretty()
    again = parse_nest(canon).pretty()
    if again != canon:
        raise OracleFailure(
            "pretty() is not a parse fixpoint:\n--- first\n"
            f"{canon}\n--- second\n{again}")
    deps = analyze(nest)
    transformation = report = transformed = None
    if case.steps:
        transformation = parse_steps(case.steps, nest.depth)
        report = transformation.legality(nest, deps)
        if report.legal:
            transformed = transformation.apply(nest, deps)
    return _Prepared(nest, deps, transformation, report, transformed,
                     make_arrays(case))


def _oracle_semantics(case: FuzzCase, prep: _Prepared) -> None:
    """A legality-accepted sequence preserves semantics (the paper's
    core claim): equal arrays under four pardo schedules and the same
    iteration multiset."""
    if prep.transformed is None:
        return
    check_equivalence(prep.nest, prep.transformed, prep.arrays,
                      symbols=case.symbols)
    same_iteration_multiset(prep.nest, prep.transformed, prep.arrays,
                            symbols=case.symbols)


def _run_engine(engine: str, nest, arrays, symbols):
    """(kind, payload): ("ok", (arrays, body_count)) or a typed
    rejection ("err", exception-type-name)."""
    runner = {"interpreter": run_nest, "compiled": run_compiled,
              "vectorized": run_vectorized}[engine]
    try:
        result = runner(nest, arrays, symbols=symbols)
    except ReproError as exc:
        return ("err", type(exc).__name__)
    return ("ok", (result.arrays, result.body_count))


def _oracle_engines(case: FuzzCase, prep: _Prepared) -> None:
    """Interpreter, compiled and vectorized engines are interchangeable:
    same final arrays, same body count, or the same typed rejection."""
    engines = ["interpreter", "compiled"]
    if numpy_available():
        engines.append("vectorized")
    nests = [("original", prep.nest)]
    if prep.transformed is not None:
        nests.append(("transformed", prep.transformed))
    for label, nest in nests:
        base_kind, base = _run_engine("interpreter", nest, prep.arrays,
                                      case.symbols)
        for engine in engines[1:]:
            kind, payload = _run_engine(engine, nest, prep.arrays,
                                        case.symbols)
            if kind != base_kind:
                raise OracleFailure(
                    f"{label} nest: interpreter {base_kind} "
                    f"({base if base_kind == 'err' else 'ran'}) but "
                    f"{engine} {kind} "
                    f"({payload if kind == 'err' else 'ran'})")
            if kind == "err":
                if payload != base:
                    raise OracleFailure(
                        f"{label} nest: interpreter rejected with {base} "
                        f"but {engine} with {payload}")
                continue
            base_arrays, base_count = base
            got_arrays, got_count = payload
            if got_count != base_count:
                raise OracleFailure(
                    f"{label} nest: body_count {base_count} (interpreter) "
                    f"vs {got_count} ({engine})")
            for name in sorted(set(base_arrays) | set(got_arrays)):
                a = base_arrays.get(name, Array(0, name))
                b = got_arrays.get(name, Array(0, name))
                if a != b:
                    raise OracleFailure(
                        f"{label} nest: array {name!r} differs between "
                        f"interpreter and {engine} (max abs diff "
                        f"{a.max_abs_difference(b)})")


def _search_pair(prep: _Prepared, jobs: int = 1):
    brute = search(prep.nest, prep.deps,
                   config=SearchConfig(depth=2, beam=4))
    guided = search(prep.nest, prep.deps,
                    config=SearchConfig(depth=2, beam=4, prune=True,
                                        speculate=True, jobs=jobs))
    return brute, guided


def _sig(result) -> Optional[str]:
    return (result.transformation.signature()
            if result.transformation is not None else None)


def _oracle_search(case: FuzzCase, prep: _Prepared) -> None:
    """``prune+speculate`` is an optimization, not a different search:
    same winner, same score, same explored count, never more exact
    legality verdicts than brute."""
    brute, guided = _search_pair(prep)
    if _sig(guided) != _sig(brute):
        raise OracleFailure(
            f"search winner diverged: brute {_sig(brute)} vs "
            f"prune+speculate {_sig(guided)}")
    if guided.score != brute.score:
        raise OracleFailure(
            f"search score diverged: brute {brute.score} vs "
            f"prune+speculate {guided.score}")
    if guided.explored != brute.explored:
        raise OracleFailure(
            f"search explored diverged: brute {brute.explored} vs "
            f"prune+speculate {guided.explored}")
    if guided.exact_verdicts > brute.exact_verdicts:
        raise OracleFailure(
            f"prune+speculate needed {guided.exact_verdicts} exact "
            f"verdicts, brute only {brute.exact_verdicts}")


def _oracle_jobs(case: FuzzCase, prep: _Prepared) -> None:
    """``jobs=2`` must be field-identical to ``jobs=1`` — parallel
    dispatch is an implementation detail, not an answer change."""
    serial = search(prep.nest, prep.deps,
                    config=SearchConfig(depth=2, beam=4, prune=True,
                                        speculate=True, jobs=1))
    parallel = search(prep.nest, prep.deps,
                      config=SearchConfig(depth=2, beam=4, prune=True,
                                          speculate=True, jobs=2))
    for field in ("score", "explored", "legal_count", "timeouts", "pruned",
                  "prune_reasons", "speculated", "evicted",
                  "exact_verdicts"):
        a, b = getattr(serial, field), getattr(parallel, field)
        if a != b:
            raise OracleFailure(
                f"jobs=1 vs jobs=2 diverged on {field}: {a!r} vs {b!r}")
    if _sig(serial) != _sig(parallel):
        raise OracleFailure(
            f"jobs=1 winner {_sig(serial)} vs jobs=2 {_sig(parallel)}")


def _remote_answers(client, case: FuzzCase,
                    prep: _Prepared) -> Dict[str, object]:
    """The comparable answer set from one service/fleet client."""
    from repro.service.client import ServiceError

    answers: Dict[str, object] = {}
    try:
        parsed = client.request("parse", text=case.text)
        answers["pretty"] = parsed["pretty"]
        analyzed = client.request("analyze", text=case.text)
        answers["dep_count"] = analyzed["count"]
        if case.steps:
            legality = client.request("legality", text=case.text,
                                      steps=case.steps)
            answers["legal"] = legality["legal"]
    except ServiceError as exc:
        # The in-process pipeline accepted this case (or we would have
        # rejected before reaching this oracle) — a server refusal here
        # is a strictness divergence, not a rejection.
        raise OracleFailure(
            f"server refused a locally-accepted case: "
            f"{exc.code}: {exc}") from None
    if case.steps:
        try:
            run = client.request("run", text=case.text, steps=case.steps,
                                 symbols=case.symbols, engine="compiled")
            answers["iterations"] = run["iterations"]
        except ServiceError as exc:
            answers["iterations"] = f"error:{exc.code}"
    else:
        try:
            run = client.request("run", text=case.text,
                                 symbols=case.symbols, engine="compiled")
            answers["iterations"] = run["iterations"]
        except ServiceError as exc:
            answers["iterations"] = f"error:{exc.code}"
    return answers


def _local_answers(case: FuzzCase, prep: _Prepared) -> Dict[str, object]:
    """What the in-process pipeline says the service must answer."""
    answers: Dict[str, object] = {"pretty": prep.nest.pretty(),
                                  "dep_count": len(prep.deps)}
    if case.steps:
        answers["legal"] = bool(prep.report and prep.report.legal)
        if prep.transformed is not None:
            result = run_compiled(prep.transformed, {},
                                  symbols=case.symbols)
            answers["iterations"] = result.body_count
        else:
            answers["iterations"] = "error:illegal"
    else:
        result = run_compiled(prep.nest, {}, symbols=case.symbols)
        answers["iterations"] = result.body_count
    return answers


def _compare_answers(kind: str, local: Mapping[str, object],
                     remote: Mapping[str, object]) -> None:
    for key in sorted(set(local) | set(remote)):
        if local.get(key) != remote.get(key):
            raise OracleFailure(
                f"{kind} answer diverged on {key!r}: in-process "
                f"{local.get(key)!r} vs {kind} {remote.get(key)!r}")


def _oracle_service(case: FuzzCase, prep: _Prepared, client) -> None:
    """The service is a transport, not a reinterpretation: parse,
    analyze, legality and run answers match the in-process pipeline."""
    _compare_answers("service", _local_answers(case, prep),
                     _remote_answers(client, case, prep))


def _oracle_fleet(case: FuzzCase, prep: _Prepared, fleet) -> None:
    """An N=2 fleet answers exactly like a single in-process pipeline
    (routing and supervision must be invisible)."""
    _compare_answers("fleet", _local_answers(case, prep),
                     _remote_answers(fleet, case, prep))


# ---------------------------------------------------------------------------
# the per-case driver


def evaluate_case(case: FuzzCase,
                  oracles: Optional[Sequence[str]] = None,
                  service=None,
                  fleet=None,
                  time_limit: float = DEFAULT_TIME_LIMIT) -> CaseOutcome:
    """Run *case* through the selected *oracles* (cheap trio by default).

    Returns the first failure, a rejection, or ``ok``.  ``service`` and
    ``fleet`` clients are only used when their oracle is selected; the
    caller owns their lifecycle (one client serves the whole run).
    """
    if oracles is None:
        oracles = ("pipeline", "semantics", "engines")
    prep: Optional[_Prepared] = None
    for name in oracles:
        if name == "chaos":
            continue  # driven by repro.fuzz.chaos_matrix, not here
        if prep is None:
            try:
                prep, timed_out = call_with_timeout(
                    lambda: _oracle_pipeline(case), time_limit)
            except OracleFailure as exc:
                return CaseOutcome(case, "divergence", "pipeline", str(exc))
            except ReproError as exc:
                return CaseOutcome(case, "rejected", "pipeline",
                                   f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001
                return CaseOutcome(
                    case, "crash", "pipeline",
                    f"untyped {type(exc).__name__}: {exc}")
            if timed_out:
                return CaseOutcome(case, "hang", "pipeline",
                                   f"no answer in {time_limit}s")
        if name == "pipeline":
            continue
        try:
            fn = _ORACLE_FNS[name]
            args: Tuple = (case, prep)
            if name == "service":
                if service is None:
                    continue
                args = (case, prep, service)
            elif name == "fleet":
                if fleet is None:
                    continue
                args = (case, prep, fleet)
            elif name in ("search", "jobs") and prep.nest.depth < 2:
                continue
            _, timed_out = call_with_timeout(lambda: fn(*args), time_limit)
            if timed_out:
                return CaseOutcome(case, "hang", name,
                                   f"no answer in {time_limit}s")
        except OracleFailure as exc:
            return CaseOutcome(case, "divergence", name, str(exc))
        except ReproError as exc:
            return CaseOutcome(case, "rejected", name,
                               f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — the whole point
            return CaseOutcome(
                case, "crash", name,
                f"untyped {type(exc).__name__}: {exc}")
    return CaseOutcome(case, "ok")


_ORACLE_FNS: Dict[str, Callable] = {
    "pipeline": _oracle_pipeline,
    "semantics": _oracle_semantics,
    "engines": _oracle_engines,
    "search": _oracle_search,
    "jobs": _oracle_jobs,
    "service": _oracle_service,
    "fleet": _oracle_fleet,
}
