"""The persisted fuzz regression bank (``tests/corpus/fuzz/``).

Every bug the fuzzer ever surfaced lives on as a minimal artifact —
one JSON file holding the shrunk case, the oracle that caught it and
the pre-fix failure detail.  Tier-1 replays the whole bank on every
run (``tests/test_fuzz_corpus.py``), so a fixed bug stays fixed: the
replay asserts the banked case now passes the very oracle it used to
break.

Artifacts are byte-deterministic (sorted keys, fixed indentation,
content-hashed file names), which gives deduplication for free — the
same shrunk failure always lands in the same file — and lets the
shrinker's determinism be asserted byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracles import CaseOutcome, evaluate_case

#: Environment override for the bank location.
CORPUS_ENV = "REPRO_FUZZ_CORPUS"

#: Default bank location, relative to the working directory (the repo
#: checkout layout; tests and CI pass an absolute path instead).
DEFAULT_CORPUS = os.path.join("tests", "corpus", "fuzz")


def corpus_dir(path: Optional[Union[str, Path]] = None) -> Path:
    """The corpus directory: explicit *path*, else ``$REPRO_FUZZ_CORPUS``,
    else ``tests/corpus/fuzz`` under the working directory."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get(CORPUS_ENV, DEFAULT_CORPUS))


def artifact_name(outcome: CaseOutcome) -> str:
    """Deterministic content-hashed file name for *outcome*."""
    digest = hashlib.sha256(
        f"{outcome.case.key()}|{outcome.oracle}|{outcome.status}"
        .encode("utf-8")).hexdigest()
    return f"{outcome.oracle or 'case'}-{digest[:12]}.json"


def render_artifact(outcome: CaseOutcome,
                    chaos_spec: Optional[str] = None) -> str:
    """The exact bytes an artifact file holds (newline-terminated).

    ``chaos_spec`` is recorded for chaos-oracle artifacts so the replay
    re-arms the exact fault plan that originally broke the case.
    """
    doc = {
        "case": outcome.case.to_json(),
        "oracle": outcome.oracle,
        "status": outcome.status,
        "detail": outcome.detail,
    }
    if chaos_spec is not None:
        doc["chaos_spec"] = chaos_spec
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_artifact(outcome: CaseOutcome,
                   path: Optional[Union[str, Path]] = None,
                   chaos_spec: Optional[str] = None) -> str:
    """Persist *outcome* into the bank; returns the file path.

    Idempotent: the content-hashed name means re-banking the same
    shrunk failure rewrites the same bytes to the same file.
    """
    directory = corpus_dir(path)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / artifact_name(outcome)
    target.write_text(render_artifact(outcome, chaos_spec=chaos_spec),
                      encoding="utf-8")
    return str(target)


def load_artifact(path: Union[str, Path]) -> Dict[str, object]:
    """Parse one artifact file back into its document."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if "case" not in doc:
        raise ValueError(f"{path}: not a fuzz artifact (no 'case' field)")
    return doc


def list_artifacts(path: Optional[Union[str, Path]] = None) -> List[Path]:
    """All artifact files in the bank, sorted for stable replay order."""
    directory = corpus_dir(path)
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.iterdir()
                  if p.suffix == ".json" and p.is_file())


def replay_artifact(path: Union[str, Path], service=None,
                    fleet=None) -> CaseOutcome:
    """Re-run a banked case through the oracle that originally caught
    it.  A healthy bank replays with no failures — every entry records
    a bug that has since been fixed, so ``outcome.failed`` here means a
    regression."""
    doc = load_artifact(path)
    case = FuzzCase.from_json(doc["case"])
    oracle = doc.get("oracle") or "engines"
    if oracle == "chaos":
        from repro.fuzz.chaos_matrix import DEFAULT_CHAOS_SPEC, chaos_check
        spec = str(doc.get("chaos_spec") or DEFAULT_CHAOS_SPEC)
        return chaos_check(case, chaos_spec=spec)
    return evaluate_case(case, oracles=(str(oracle),), service=service,
                         fleet=fleet)
