"""The chaos dimension: fuzz cases under fault injection.

For a sampled case the harness already proved healthy, this module
replays a deterministic request script twice through a **supervised**
TCP server with a **retrying** client — once fault-free, once with a
:mod:`repro.resilience.chaos` plan arming crash/hang/drop/error faults
across the injection points — and asserts the two response streams are
field-identical: exactly-once answers, zero lost, zero duplicated, zero
changed.  Supervision and retry are supposed to make faults invisible
to callers; this is the generative test of that claim.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracles import CaseOutcome
from repro.obs import trace as _obs
from repro.resilience.retry import RetryPolicy, RetryingClient
from repro.service import protocol

#: The default chaos plan: every injection point the spec grammar
#: names, with the fault kind that bites hardest there.  Counts are
#: small so the bounded retry budget always wins.
DEFAULT_CHAOS_SPEC = ",".join((
    "service.dispatch:crash:1",
    "service.dispatch:hang:1:60",
    "service.dispatch:drop:1",
    "ir.parse:error:1",
    "deps.analysis:error:1",
    "legality:error:1",
    "compiled.codegen:error:1",
    "pool.worker:crash:1",
))

#: Wall-clock ceiling for one supervised replay (spawn + restarts).
REPLAY_DEADLINE = 120.0


def request_script(case: FuzzCase) -> List[Dict[str, object]]:
    """A deterministic request script for *case* — every op's answer is
    a pure function of its params, so runs compare field-for-field."""
    ops: List[Dict[str, object]] = [
        {"op": "parse", "params": {"text": case.text}},
        {"op": "analyze", "params": {"text": case.text}},
    ]
    if case.steps:
        ops.append({"op": "legality",
                    "params": {"text": case.text, "steps": case.steps}})
    ops.append({"op": "run",
                "params": {"text": case.text, "symbols": case.symbols,
                           "engine": "compiled"}})
    # Repeat the cycle so the armed fault counts are all consumed while
    # answers keep being comparable one-to-one.
    script = [dict(ops[k % len(ops)], id=k) for k in range(3 * len(ops))]
    return script


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _pythonpath_env() -> Dict[str, str]:
    """Subprocess env whose PYTHONPATH can import this very package."""
    import repro
    pkg_parent = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    parts = [pkg_parent] + [p for p in
                            env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    # A chaos plan armed in *this* process must not leak into the
    # subordinate servers; they get exactly the spec we pass via argv.
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_CHAOS_STATE", None)
    return env


def supervised_replay(script: Sequence[Dict[str, object]],
                      workdir: str,
                      tag: str,
                      chaos_spec: Optional[str] = None,
                      hang_timeout: float = 2.0) -> List[dict]:
    """Replay *script* through a supervised TCP server; returns the raw
    responses in script order.  With *chaos_spec*, the server runs with
    that plan armed (state file under *workdir* so counts survive
    supervised restarts)."""
    port = _free_port()
    argv = [sys.executable, "-m", "repro", "serve", "--tcp",
            "--port", str(port), "--supervise",
            "--hang-timeout", str(hang_timeout),
            "--heartbeat-file", os.path.join(workdir, f"{tag}.hb"),
            "--max-restarts", "10"]
    if chaos_spec:
        argv += ["--chaos", chaos_spec,
                 "--chaos-state", os.path.join(workdir, f"{tag}.chaos")]
    sup = subprocess.Popen(argv, env=_pythonpath_env(),
                           stderr=subprocess.DEVNULL)
    try:
        client = RetryingClient.tcp(
            "127.0.0.1", port,
            policy=RetryPolicy(attempts=10, backoff_initial=0.2,
                               backoff_max=2.0, budget=REPLAY_DEADLINE),
            attempt_timeout=2 * hang_timeout + 5.0)
        deadline = time.monotonic() + 30.0
        while True:
            try:
                client.request("ping")
                break
            except protocol.ServiceError:
                if time.monotonic() > deadline:
                    raise
        responses = client.replay([dict(req) for req in script])
        client.request_raw("shutdown")
        client.close()
        sup.wait(timeout=30)
        return responses
    finally:
        if sup.poll() is None:
            sup.kill()
            sup.wait()


def chaos_check(case: FuzzCase,
                chaos_spec: str = DEFAULT_CHAOS_SPEC,
                workdir: Optional[str] = None,
                time_limit: float = 10.0) -> CaseOutcome:
    """The chaos oracle for one case.

    Replays the case's script fault-free and under *chaos_spec*; any
    difference between the two response streams — an answer changed,
    lost, duplicated or reordered — is a ``divergence``.  *time_limit*
    is accepted for driver symmetry; replays run under their own
    (much larger) supervision deadline.
    """
    del time_limit  # replays use REPLAY_DEADLINE; see docstring
    import tempfile

    script = request_script(case)
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-chaos-",
                                     dir=workdir) as tmp:
        with _obs.span("fuzz.chaos", case_id=case.case_id,
                       requests=len(script)):
            try:
                baseline = supervised_replay(script, tmp, "base")
                chaotic = supervised_replay(script, tmp, "chaos",
                                            chaos_spec=chaos_spec)
            except Exception as exc:  # noqa: BLE001
                return CaseOutcome(
                    case, "crash", "chaos",
                    f"supervised replay died: "
                    f"{type(exc).__name__}: {exc}")
    if len(chaotic) != len(baseline):
        return CaseOutcome(
            case, "divergence", "chaos",
            f"{len(baseline)} fault-free answers vs {len(chaotic)} "
            f"under chaos (lost or duplicated responses)")
    for base, chaot in zip(baseline, chaotic):
        if base != chaot:
            return CaseOutcome(
                case, "divergence", "chaos",
                f"request id {base.get('id')!r} answered differently "
                f"under chaos:\n  fault-free: {base!r}\n"
                f"  chaotic:    {chaot!r}")
    return CaseOutcome(case, "ok")
