"""The fuzz driver: generate, cross-check, count, shrink, persist.

:func:`run_fuzz` is the engine behind ``python -m repro fuzz``.  It
walks a seeded case stream through the oracle matrix, aggregates
outcomes into a :class:`FuzzReport`, and for every failure runs the
auto-shrinker and (optionally) banks the minimal artifact in the
regression corpus.

The matrix is additive — ``core`` (pipeline + semantics + engines on
every case) is always on; ``search``, ``service``, ``fleet`` and
``chaos`` sample a deterministic subset of cases, because their oracles
cost 10-100x a core check and the contracts they test are
case-shape-independent enough that sampling keeps full coverage over a
long run.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.fuzz.gen import CaseGen, FuzzCase
from repro.fuzz.oracles import (
    DEFAULT_TIME_LIMIT,
    CaseOutcome,
    evaluate_case,
)
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics

#: Matrix dimensions ``--matrix`` accepts.
MATRIX_DIMS = ("core", "search", "service", "fleet", "chaos")

#: Every Nth eligible case runs the expensive dimensions.
SEARCH_SAMPLE = 7
SERVICE_SAMPLE = 19
FLEET_SAMPLE = 37
CHAOS_SAMPLE = 23


class FuzzReport:
    """Aggregated outcomes of one fuzz run."""

    def __init__(self, seed: int, matrix: Sequence[str]):
        self.seed = seed
        self.matrix = tuple(matrix)
        self.cases = 0
        self.by_status: Dict[str, int] = {
            "ok": 0, "rejected": 0, "divergence": 0, "crash": 0, "hang": 0}
        self.by_oracle: Dict[str, int] = {}
        self.failures: List[CaseOutcome] = []
        self.shrunk: List[FuzzCase] = []
        self.artifacts: List[str] = []
        self.elapsed = 0.0

    @property
    def failed(self) -> bool:
        return any(self.by_status[s] for s in ("divergence", "crash", "hang"))

    def record(self, outcome: CaseOutcome) -> None:
        self.cases += 1
        self.by_status[outcome.status] += 1
        if outcome.failed:
            self.failures.append(outcome)
            key = outcome.oracle or "unknown"
            self.by_oracle[key] = self.by_oracle.get(key, 0) + 1

    def to_json(self) -> Dict[str, object]:
        snap = get_metrics().snapshot()
        fuzz_metrics = {
            kind: {name: value for name, value in values.items()
                   if name.startswith("fuzz.")}
            for kind, values in snap.items()
        }
        return {
            "seed": self.seed,
            "matrix": list(self.matrix),
            "cases": self.cases,
            "by_status": dict(self.by_status),
            "divergences_by_oracle": dict(sorted(self.by_oracle.items())),
            "failures": [f.to_json() for f in self.failures[:50]],
            "artifacts": list(self.artifacts),
            "elapsed_seconds": round(self.elapsed, 3),
            "cases_per_second": (round(self.cases / self.elapsed, 2)
                                 if self.elapsed > 0 else None),
            "metrics": fuzz_metrics,
        }

    def summary(self) -> str:
        s = self.by_status
        line = (f"{self.cases} cases: {s['ok']} ok, "
                f"{s['rejected']} rejected, {s['divergence']} divergences, "
                f"{s['crash']} crashes, {s['hang']} hangs "
                f"[{self.elapsed:.1f}s]")
        if self.by_oracle:
            per = ", ".join(f"{k}={v}"
                            for k, v in sorted(self.by_oracle.items()))
            line += f"\n  failures by oracle: {per}"
        return line


def _oracles_for(case_id: int, matrix: Sequence[str]) -> List[str]:
    """The oracle list for one case under the active matrix (sampling
    is keyed on the case id, so a run is reproducible per seed)."""
    names = ["pipeline", "semantics", "engines"]
    if "search" in matrix and case_id % SEARCH_SAMPLE == 0:
        names += ["search", "jobs"]
    if "service" in matrix and case_id % SERVICE_SAMPLE == 0:
        names.append("service")
    if "fleet" in matrix and case_id % FLEET_SAMPLE == 0:
        names.append("fleet")
    return names


def run_fuzz(cases: int,
             seed: int,
             matrix: Sequence[str] = ("core",),
             start: int = 0,
             shrink: bool = True,
             corpus: Optional[str] = None,
             time_limit: float = DEFAULT_TIME_LIMIT,
             progress: Optional[Callable[[FuzzReport], None]] = None,
             progress_every: int = 200) -> FuzzReport:
    """Run *cases* seeded cases through the oracle *matrix*.

    ``corpus`` names a directory to bank shrunk failure artifacts in
    (``None`` disables persistence; shrinking still runs so the report
    carries minimal repros).  Returns the aggregated
    :class:`FuzzReport`; the caller decides what exit code that merits.
    """
    for dim in matrix:
        if dim not in MATRIX_DIMS:
            raise ValueError(f"unknown matrix dimension {dim!r} "
                             f"(choose from {', '.join(MATRIX_DIMS)})")
    report = FuzzReport(seed, matrix)
    gen = CaseGen(seed)
    metrics = get_metrics()
    service = fleet = None
    began = time.monotonic()
    try:
        if "service" in matrix:
            from repro.service.client import ServiceClient
            service = ServiceClient.spawn()
        if "fleet" in matrix:
            from repro.fleet.client import FleetClient
            fleet = FleetClient.local(2)
        with _obs.span("fuzz.run", seed=seed, cases=cases,
                       matrix=",".join(matrix)):
            for case in gen.cases(cases, start=start):
                oracles = _oracles_for(case.case_id, matrix)
                with _obs.span("fuzz.case", case_id=case.case_id,
                               oracles=len(oracles)):
                    outcome = evaluate_case(case, oracles=oracles,
                                            service=service, fleet=fleet,
                                            time_limit=time_limit)
                if ("chaos" in matrix and outcome.status == "ok"
                        and case.case_id % CHAOS_SAMPLE == 0):
                    from repro.fuzz.chaos_matrix import chaos_check
                    outcome = chaos_check(case, time_limit=time_limit)
                metrics.counter("fuzz.cases").inc()
                metrics.counter(f"fuzz.status.{outcome.status}").inc()
                if outcome.failed:
                    metrics.counter(
                        f"fuzz.divergence.{outcome.oracle}").inc()
                    _obs.event("fuzz.failure", case_id=case.case_id,
                               oracle=outcome.oracle or "",
                               status=outcome.status)
                    outcome = _shrink_and_bank(outcome, report, shrink,
                                               corpus, service, fleet,
                                               time_limit)
                report.record(outcome)
                if progress and report.cases % progress_every == 0:
                    report.elapsed = time.monotonic() - began
                    progress(report)
    finally:
        if service is not None:
            service.close()
        if fleet is not None:
            fleet.close()
    report.elapsed = time.monotonic() - began
    return report


def _shrink_and_bank(outcome: CaseOutcome, report: FuzzReport,
                     shrink: bool, corpus: Optional[str],
                     service, fleet, time_limit: float) -> CaseOutcome:
    """Shrink a failing case and persist the minimal artifact; the
    returned outcome carries the *shrunk* case so the report and corpus
    agree on the repro."""
    if outcome.oracle == "chaos":
        # Chaos failures are banked unshrunk: every shrink probe would
        # cost two full supervised subprocess replays, and the fault
        # spec matters more than the nest shape.  Record the spec so
        # the replay re-arms exactly what broke.
        if corpus is not None:
            from repro.fuzz.chaos_matrix import DEFAULT_CHAOS_SPEC
            from repro.fuzz.corpus import write_artifact
            report.artifacts.append(
                write_artifact(outcome, corpus,
                               chaos_spec=DEFAULT_CHAOS_SPEC))
        return outcome
    if not shrink:
        if corpus is not None:
            from repro.fuzz.corpus import write_artifact
            report.artifacts.append(write_artifact(outcome, corpus))
        return outcome
    from repro.fuzz.shrink import shrink_case
    small = shrink_case(outcome, service=service, fleet=fleet,
                        time_limit=time_limit)
    report.shrunk.append(small.case)
    if corpus is not None:
        from repro.fuzz.corpus import write_artifact
        report.artifacts.append(write_artifact(small, corpus))
    return small
