"""The stable façade: one import for the whole pipeline.

``repro.api`` is the supported entry point for programmatic users — the
service, the benchmarks and external callers alike::

    from repro.api import parse_nest, analyze, Transformation, search

    nest = parse_nest(SRC)
    deps = analyze(nest)
    result = search(nest, deps, config=SearchConfig(depth=2, beam=8))

It re-exports exactly the surface documented in ``docs/API.md`` (the
``repro.api`` section — ``tests/test_api_facade.py`` holds the two in
lockstep): the pipeline stages (:func:`parse_nest`, :func:`analyze`,
:class:`Transformation`, :func:`search` and its
:class:`SearchConfig`), the six transformation templates of the paper,
and the warm-state engines
(:class:`LegalityCache`, :class:`CompiledNest`,
:class:`VectorizedNest`).  Anything else in the package tree is
implementation detail that may move between releases; this module will
not.
"""

from repro.core.legality_cache import LegalityCache
from repro.core.sequence import Transformation
from repro.core.templates.block import Block
from repro.core.templates.coalesce import Coalesce
from repro.core.templates.interleave import Interleave
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular
from repro.deps.analysis import analyze
from repro.ir import parse_nest
from repro.optimize.search import SearchConfig, search
from repro.runtime import resolve_engine
from repro.runtime.compiled import CompiledNest
from repro.runtime.vectorized import VectorizedNest

__all__ = [
    "Block",
    "Coalesce",
    "CompiledNest",
    "Interleave",
    "LegalityCache",
    "Parallelize",
    "ReversePermute",
    "SearchConfig",
    "Transformation",
    "Unimodular",
    "VectorizedNest",
    "analyze",
    "parse_nest",
    "resolve_engine",
    "search",
]
