"""Code sinking: canonicalize an imperfect nest into a perfect one.

The framework (like the paper) operates on *perfect* loop nests, but
real code often has statements between loop headers::

    do i = 1, n
      s(i) = 0                 <- before the inner loop
      do j = 1, n
        s(i) = s(i) + a(i, j)
      enddo
      b(i) = s(i) / n          <- after the inner loop
    enddo

Sinking pushes such statements *into* the inner loop under first/last
iteration guards — the classic enabling transformation::

    do i = 1, n
      do j = 1, n
        if (j == 1) s(i) = 0
        s(i) = s(i) + a(i, j)
        if (j == n) b(i) = s(i) / n
      enddo
    enddo

after which every iteration-reordering template applies.  The guarded
form is equivalent **provided the inner loop is non-empty** (at least
one iteration for every outer iteration); :func:`sink` cannot check
that for symbolic bounds, so callers must guarantee it (for constant
bounds it is checked).

The "last iteration" guard uses the exact last iterate
``u - sgn(s) * mod(abs(u - l), abs(s))``, so non-unit and negative
steps work.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.expr.nodes import Const, Expr, abs_, call, mod, mul, sgn, sub, var
from repro.ir.loopnest import Assign, If, InitStmt, Loop, LoopNest, Statement
from repro.util.errors import ReproError
from repro.util.intmath import trip_count


class ImperfectNest:
    """Parse-tree node for a loop with mixed children (statements and at
    most one inner loop)."""

    __slots__ = ("loop", "pre", "inner", "post")

    def __init__(self, loop: Loop, pre: Sequence[Statement],
                 inner: Union["ImperfectNest", None],
                 post: Sequence[Statement],
                 body: Sequence[Statement] = ()):
        self.loop = loop
        self.pre = list(pre)
        self.inner = inner
        self.post = list(post)
        if inner is None:
            # Leaf level: `pre` holds the body, post must be empty.
            self.pre = list(pre)
            self.post = list(post)

    @property
    def is_leaf(self) -> bool:
        return self.inner is None


def first_iterate_expr(lp: Loop) -> Expr:
    """The first index value of a loop (its lower bound)."""
    return lp.lower


def last_iterate_expr(lp: Loop) -> Expr:
    """The exact last index value taken by ``do x = l, u, s``."""
    l, u, s = lp.lower, lp.upper, lp.step
    if isinstance(s, Const):
        if s.value == 1:
            return u
        sign = 1 if s.value > 0 else -1
        span = sub(u, l) if s.value > 0 else sub(l, u)
        return sub(u, mul(Const(sign), mod(abs_(span), Const(abs(s.value)))))
    return sub(u, mul(sgn(s), mod(abs_(sub(u, l)), abs_(s))))


def _guard(index: str, value: Expr, stmt: Statement) -> Statement:
    return If(call("eq", var(index), value), stmt)


def _check_nonempty_if_constant(lp: Loop) -> None:
    if (isinstance(lp.lower, Const) and isinstance(lp.upper, Const) and
            isinstance(lp.step, Const)):
        if trip_count(lp.lower.value, lp.upper.value, lp.step.value) == 0:
            raise ReproError(
                f"cannot sink into statically empty loop {lp.index}")


def sink(tree: ImperfectNest) -> LoopNest:
    """Flatten an :class:`ImperfectNest` into a guarded perfect nest."""
    return _sink_rec(tree)


def _sink_rec(node: ImperfectNest) -> LoopNest:
    if node.is_leaf:
        return LoopNest([node.loop], node.pre)
    inner_nest = _sink_rec(node.inner)
    inner_loops = inner_nest.loops
    _check_nonempty_if_constant(inner_loops[0])

    def guard_all(stmt: Statement, at_first: bool) -> Statement:
        # Guard on every inner level: the statement runs exactly once
        # per iteration of this node's loop.
        for lp in inner_loops:
            _check_nonempty_if_constant(lp)
            value = (first_iterate_expr(lp) if at_first
                     else last_iterate_expr(lp))
            stmt = _guard(lp.index, value, stmt)
        return stmt

    body: List[Statement] = []
    body.extend(guard_all(s, at_first=True) for s in node.pre)
    body.extend(inner_nest.body)
    body.extend(guard_all(s, at_first=False) for s in node.post)
    return LoopNest((node.loop,) + inner_loops, body, inner_nest.inits)


def sink_nest(tree: ImperfectNest) -> LoopNest:
    """Public entry point (alias with the documented name)."""
    return _sink_rec(tree)
