"""The perfect loop-nest intermediate representation.

The paper's framework operates on *perfect loop nests*: a stack of ``do``
or ``pardo`` loops whose innermost loop contains the (loop-free) body.
A transformed nest additionally carries *initialization statements* that
define the original index variables as functions of the new ones
(Section 2, item 4(b); Figure 1(b)).

Array references inside body expressions are represented as opaque
:class:`~repro.expr.nodes.Call` nodes (``a(i, j)`` is ``Call("a", (i, j))``);
the interpreter distinguishes arrays from true function calls by the
bindings the caller supplies.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.expr.nodes import Const, Expr, free_vars, to_str
from repro.util.errors import ReproError

DO = "do"
PARDO = "pardo"


class Loop:
    """One loop level: ``<kind> <index> = <lower>, <upper>, <step>``."""

    __slots__ = ("index", "lower", "upper", "step", "kind")

    def __init__(self, index: str, lower: Expr, upper: Expr,
                 step: Expr = Const(1), kind: str = DO):
        if kind not in (DO, PARDO):
            raise ValueError(f"loop kind must be 'do' or 'pardo', got {kind!r}")
        if not isinstance(index, str) or not index:
            raise TypeError("loop index must be a non-empty string")
        for name, e in (("lower", lower), ("upper", upper), ("step", step)):
            if not isinstance(e, Expr):
                raise TypeError(f"loop {name} bound must be an Expr")
        if isinstance(step, Const) and step.value == 0:
            raise ValueError("loop step must be nonzero")
        self.index = index
        self.lower = lower
        self.upper = upper
        self.step = step
        self.kind = kind

    def with_kind(self, kind: str) -> "Loop":
        return Loop(self.index, self.lower, self.upper, self.step, kind)

    def with_bounds(self, lower: Optional[Expr] = None,
                    upper: Optional[Expr] = None,
                    step: Optional[Expr] = None) -> "Loop":
        return Loop(self.index,
                    lower if lower is not None else self.lower,
                    upper if upper is not None else self.upper,
                    step if step is not None else self.step,
                    self.kind)

    @property
    def is_parallel(self) -> bool:
        return self.kind == PARDO

    def header(self) -> str:
        """Render the loop header line (no indentation)."""
        parts = f"{self.kind} {self.index} = {to_str(self.lower)}, {to_str(self.upper)}"
        if not (isinstance(self.step, Const) and self.step.value == 1):
            parts += f", {to_str(self.step)}"
        return parts

    def __repr__(self):
        return f"Loop({self.header()!r})"

    def __eq__(self, other):
        return (isinstance(other, Loop) and self.index == other.index and
                self.lower == other.lower and self.upper == other.upper and
                self.step == other.step and self.kind == other.kind)

    def __hash__(self):
        return hash((self.index, self.lower, self.upper, self.step, self.kind))


class ArrayRef:
    """An array element reference used as an assignment target."""

    __slots__ = ("name", "subscripts")

    def __init__(self, name: str, subscripts: Sequence[Expr]):
        self.name = name
        self.subscripts = tuple(subscripts)
        for s in self.subscripts:
            if not isinstance(s, Expr):
                raise TypeError("subscripts must be expressions")

    def __str__(self):
        if not self.subscripts:
            return self.name
        return self.name + "(" + ", ".join(to_str(s) for s in self.subscripts) + ")"

    def __repr__(self):
        return f"ArrayRef({self})"

    def __eq__(self, other):
        return (isinstance(other, ArrayRef) and self.name == other.name and
                self.subscripts == other.subscripts)

    def __hash__(self):
        return hash((self.name, self.subscripts))

    def free_vars(self) -> frozenset:
        if not self.subscripts:
            return frozenset()
        return frozenset().union(*(free_vars(s) for s in self.subscripts))


class Statement:
    """Base class for body statements."""

    __slots__ = ()


class Assign(Statement):
    """``target = expr`` or ``target += expr`` (accumulate)."""

    __slots__ = ("target", "expr", "accumulate")

    def __init__(self, target: ArrayRef, expr: Expr, accumulate: bool = False):
        if not isinstance(target, ArrayRef):
            raise TypeError("assignment target must be an ArrayRef")
        if not isinstance(expr, Expr):
            raise TypeError("assignment value must be an Expr")
        self.target = target
        self.expr = expr
        self.accumulate = accumulate

    def __str__(self):
        op = "+=" if self.accumulate else "="
        return f"{self.target} {op} {to_str(self.expr)}"

    def __repr__(self):
        return f"Assign({self})"

    def __eq__(self, other):
        return (isinstance(other, Assign) and self.target == other.target and
                self.expr == other.expr and self.accumulate == other.accumulate)

    def __hash__(self):
        return hash((self.target, self.expr, self.accumulate))


class If(Statement):
    """``if (cond) <stmt>`` — a guarded single statement (Figure 2)."""

    __slots__ = ("cond", "then")

    def __init__(self, cond: Expr, then: Statement):
        self.cond = cond
        self.then = then

    def __str__(self):
        return f"if ({to_str(self.cond)}) {self.then}"

    def __repr__(self):
        return f"If({self})"

    def __eq__(self, other):
        return (isinstance(other, If) and self.cond == other.cond and
                self.then == other.then)

    def __hash__(self):
        return hash((self.cond, self.then))


class InitStmt(Statement):
    """``var = expr`` — defines an original index variable in terms of the
    new index variables at the top of a transformed loop body."""

    __slots__ = ("var", "expr")

    def __init__(self, var: str, expr: Expr):
        self.var = var
        self.expr = expr

    def __str__(self):
        return f"{self.var} = {to_str(self.expr)}"

    def __repr__(self):
        return f"InitStmt({self})"

    def __eq__(self, other):
        return (isinstance(other, InitStmt) and self.var == other.var and
                self.expr == other.expr)

    def __hash__(self):
        return hash((self.var, self.expr))


class LoopNest:
    """A perfect loop nest: loops (outer to inner), init statements, body.

    ``inits`` are the initialization statements emitted by code generation
    (empty for a source nest).  ``body`` is the original loop body and is
    never changed by an iteration-reordering transformation.
    """

    __slots__ = ("loops", "inits", "body")

    def __init__(self, loops: Sequence[Loop], body: Sequence[Statement],
                 inits: Sequence[InitStmt] = ()):
        self.loops = tuple(loops)
        self.body = tuple(body)
        self.inits = tuple(inits)
        if not self.loops:
            raise ValueError("a loop nest needs at least one loop")
        names = [lp.index for lp in self.loops]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate loop index names: {names}")
        for stmt in self.body:
            if not isinstance(stmt, Statement):
                raise TypeError(f"body entries must be Statements, got {stmt!r}")
        for init in self.inits:
            if not isinstance(init, InitStmt):
                raise TypeError("inits entries must be InitStmt")

    # -- structure --------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def indices(self) -> Tuple[str, ...]:
        return tuple(lp.index for lp in self.loops)

    def loop(self, k: int) -> Loop:
        """1-based accessor matching the paper's loop numbering."""
        if not 1 <= k <= self.depth:
            raise IndexError(f"loop number {k} out of range 1..{self.depth}")
        return self.loops[k - 1]

    def with_loops(self, loops: Sequence[Loop],
                   extra_inits: Sequence[InitStmt] = ()) -> "LoopNest":
        """A copy with replaced loops; *extra_inits* are prepended (they
        come from a later template instantiation so must execute first)."""
        return LoopNest(loops, self.body, tuple(extra_inits) + self.inits)

    def bound_free_vars(self) -> frozenset:
        result = frozenset()
        for lp in self.loops:
            result |= free_vars(lp.lower) | free_vars(lp.upper) | free_vars(lp.step)
        return result

    def invariants(self) -> frozenset:
        """Names used by bounds that are not loop indices (e.g. ``n``)."""
        return self.bound_free_vars() - set(self.indices)

    # -- rendering ---------------------------------------------------------

    def pretty(self, indent: str = "  ") -> str:
        """Render in the paper's surface syntax."""
        lines: List[str] = []
        for depth, lp in enumerate(self.loops):
            lines.append(indent * depth + lp.header())
        inner = indent * self.depth
        for init in self.inits:
            lines.append(inner + str(init))
        for stmt in self.body:
            lines.append(inner + str(stmt))
        for depth in range(self.depth - 1, -1, -1):
            lines.append(indent * depth + "enddo")
        return "\n".join(lines)

    def __str__(self):
        return self.pretty()

    def __repr__(self):
        return f"LoopNest(depth={self.depth}, indices={self.indices})"

    def __eq__(self, other):
        return (isinstance(other, LoopNest) and self.loops == other.loops and
                self.body == other.body and self.inits == other.inits)

    def __hash__(self):
        return hash((self.loops, self.body, self.inits))


def validate_nest(nest: LoopNest) -> None:
    """Check the structural invariants the framework relies on.

    * loop bound expressions may reference only outer loop indices and
      nest invariants (no self- or inner-index references);
    * constant steps are nonzero (already enforced by :class:`Loop`);
    * init statements reference only loop indices, invariants and earlier
      init-defined variables.

    Raises :class:`ReproError` on violation.
    """
    indices = nest.indices
    for k, lp in enumerate(nest.loops):
        allowed_outer = set(indices[:k])
        banned = (set(indices[k:]) )
        for which, e in (("lower", lp.lower), ("upper", lp.upper),
                         ("step", lp.step)):
            used = free_vars(e)
            illegal = used & banned
            if illegal:
                raise ReproError(
                    f"loop {lp.index}: {which} bound references "
                    f"{sorted(illegal)} which are not enclosing indices")
    later_init_vars = {init.var for init in nest.inits}
    defined = set(indices)
    for init in nest.inits:
        later_init_vars.discard(init.var)
        used = free_vars(init.expr)
        # Unknown names are treated as nest invariants; only referencing
        # an init variable before its own definition is an error.
        forward = used & later_init_vars
        if forward:
            raise ReproError(
                f"init statement {init}: references later-defined "
                f"{sorted(forward)}")
        defined.add(init.var)
