"""Loop-nest IR: loops, statements, perfect nests, parser and printer."""

from repro.ir.loopnest import (
    ArrayRef,
    Assign,
    DO,
    If,
    InitStmt,
    Loop,
    LoopNest,
    PARDO,
    Statement,
    validate_nest,
)
from repro.ir.parser import parse_imperfect, parse_nest
from repro.ir.pretty_temps import pretty_with_temps
from repro.ir.sinking import ImperfectNest, sink

__all__ = [
    "ArrayRef", "Assign", "DO", "If", "InitStmt", "Loop", "LoopNest",
    "PARDO", "Statement", "validate_nest", "parse_nest",
    "parse_imperfect", "sink", "ImperfectNest", "pretty_with_temps",
]
