"""Figure-7-style pretty printing with extracted temporaries.

The paper presents the coalesced matrix-multiply with named scalars::

    tmpj = 1 + [jic/|(n-1+bi)/bi|] ... * bj
    do j = tmpj, min(n, tmpj + bj - 1)

while the framework's actual output inlines those reconstruction
expressions into the bounds (they must be evaluated before the loop
header runs, and a perfect nest has nowhere to put a scalar statement).
This module provides the *display-side* equivalent: it finds large
subexpressions that occur repeatedly in bounds/init statements, names
them ``tmp<loop>`` and prints them at the deepest loop level where all
their inputs are available — pseudo-code for humans, not IR.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.expr.nodes import (
    Add,
    Call,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    children,
    free_vars,
    to_str,
    var,
)
from repro.ir.loopnest import Loop, LoopNest


def _size(e: Expr) -> int:
    return 1 + sum(_size(c) for c in children(e))


def _subexprs(e: Expr, min_size: int, out: Dict[Expr, int]) -> None:
    if _size(e) >= min_size and not isinstance(e, (Const, Var)):
        out[e] = out.get(e, 0) + 1
    for c in children(e):
        _subexprs(c, min_size, out)


def _replace(e: Expr, target: Expr, replacement: Expr) -> Expr:
    """Replace occurrences of *target* inside *e* — exact matches, and
    sums differing from *target* by an invariant offset (so the paper's
    ``min(tmpj + bj - 1, n)`` shape appears)."""
    if e == target:
        return replacement
    if isinstance(e, (Const, Var)):
        return e
    if isinstance(e, Add) and isinstance(target, Add):
        from repro.expr.nodes import add, mul, sub
        diff = sub(e, target)
        # A small leftover (constant or one product term) means e is
        # target plus an offset; rewriting is semantically exact.
        if _size(diff) <= 4 and _size(diff) < _size(target):
            return add(replacement, diff)
    new_children = [_replace(c, target, replacement) for c in children(e)]
    if isinstance(e, Add):
        from repro.expr.nodes import add
        return add(*new_children)
    if isinstance(e, Mul):
        from repro.expr.nodes import mul
        return mul(*new_children)
    if isinstance(e, FloorDiv):
        from repro.expr.nodes import floordiv
        return floordiv(*new_children)
    if isinstance(e, CeilDiv):
        from repro.expr.nodes import ceildiv
        return ceildiv(*new_children)
    if isinstance(e, Mod):
        from repro.expr.nodes import mod
        return mod(*new_children)
    if isinstance(e, Min):
        from repro.expr.nodes import vmin
        return vmin(*new_children)
    if isinstance(e, Max):
        from repro.expr.nodes import vmax
        return vmax(*new_children)
    if isinstance(e, Call):
        from repro.expr.nodes import call
        return call(e.func, *new_children)
    raise TypeError(f"unknown node {e!r}")


def pretty_with_temps(nest: LoopNest, min_size: int = 7,
                      min_occurrences: int = 2, indent: str = "  ") -> str:
    """Render *nest* with repeated large bound subexpressions hoisted
    into ``tmp*`` pseudo-scalars, the way the paper's Figure 7 reads."""
    # 1. Count candidate subexpressions across bounds and inits.
    counts: Dict[Expr, int] = {}
    for lp in nest.loops:
        for e in (lp.lower, lp.upper, lp.step):
            _subexprs(e, min_size, counts)
    for init in nest.inits:
        _subexprs(init.expr, min_size, counts)

    # 2. Keep maximal repeated candidates (drop one nested in another
    # kept candidate with the same count — prefer the bigger).
    kept = [e for e, c in counts.items() if c >= min_occurrences]
    kept.sort(key=_size, reverse=True)
    chosen: List[Expr] = []
    for e in kept:
        if not any(_contains(big, e) for big in chosen):
            chosen.append(e)

    # 3. Name them after the innermost loop whose bounds use them.
    names: Dict[Expr, str] = {}
    used = set(nest.indices) | {s.var for s in nest.inits}
    for e in chosen:
        hint = None
        for lp in nest.loops:
            if any(_contains(b, e) for b in (lp.lower, lp.upper, lp.step)):
                hint = lp.index
                break
        base = f"tmp{hint or ''}" or "tmp"
        name = base
        counter = 2
        while name in used:
            name = f"{base}{counter}"
            counter += 1
        used.add(name)
        names[e] = name

    # 4. Placement level: after the last loop any of its variables needs.
    position = {lp.index: k for k, lp in enumerate(nest.loops)}
    temp_at: Dict[int, List[Tuple[str, Expr]]] = {}
    for e, name in names.items():
        level = max((position[v] + 1 for v in free_vars(e) if v in position),
                    default=0)
        temp_at.setdefault(level, []).append((name, e))

    # 5. Rewrite bounds/inits and render.
    def rewrite(e: Expr) -> Expr:
        for target, name in names.items():
            e = _replace(e, target, var(name))
        return e

    lines: List[str] = []
    for depth, lp in enumerate(nest.loops):
        for name, e in temp_at.get(depth, []):
            lines.append(indent * depth + f"{name} = {to_str(e)}")
        header = Loop(lp.index, rewrite(lp.lower), rewrite(lp.upper),
                      rewrite(lp.step), lp.kind).header()
        lines.append(indent * depth + header)
    inner = indent * nest.depth
    for name, e in temp_at.get(nest.depth, []):
        lines.append(inner + f"{name} = {to_str(e)}")
    for init in nest.inits:
        lines.append(inner + f"{init.var} = {to_str(rewrite(init.expr))}")
    for stmt in nest.body:
        lines.append(inner + str(stmt))
    for depth in range(nest.depth - 1, -1, -1):
        lines.append(indent * depth + "enddo")
    return "\n".join(lines)


def _contains(e: Expr, target: Expr) -> bool:
    if e == target:
        return True
    return any(_contains(c, target) for c in children(e))
