"""Parser for the paper's ``do``/``enddo`` loop-nest surface syntax.

Example (Figure 1(a) of the paper)::

    do i = 2, n-1
      do j = 2, n-1
        a(i, j) = (a(i, j) + a(i-1, j) + a(i, j-1) + a(i+1, j) + a(i, j+1)) / 5
      enddo
    enddo

Grammar (newline-separated statements, ``!``/``#`` comments)::

    nest      := loop
    loop      := ("do" | "pardo") IDENT "=" expr "," expr ["," expr]
                 body "enddo"
    body      := (loop | stmt)*          -- but the result must be perfect
    stmt      := IDENT "(" expr,* ")" ("=" | "+=") expr
               | IDENT "=" expr                       -- init statement
               | "if" "(" cond ")" stmt
    cond      := expr [("<=" | ">=" | "==" | "<" | ">") expr]

Conditions become ``Call`` nodes (``le``, ``ge``, ``eq``, ``lt``, ``gt``)
which the interpreter evaluates to 0/1.

Scalar assignments are only accepted at the top of the innermost body and
become :class:`~repro.ir.loopnest.InitStmt` entries, mirroring how the
framework's code generator emits initialization statements.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.expr.nodes import Expr, call
from repro.expr.parser import Token, TokenStream, parse_expression, tokenize
from repro.resilience import chaos as _chaos
from repro.resilience import guards as _guards
from repro.ir.loopnest import (
    Assign,
    ArrayRef,
    DO,
    If,
    InitStmt,
    Loop,
    LoopNest,
    PARDO,
    Statement,
    validate_nest,
)
from repro.util.errors import ParseError, ReproError

_RELOPS = {"<=": "le", ">=": "ge", "==": "eq", "=": "eq",
           "<": "lt", ">": "gt"}


def _make_loop(index: str, lower: Expr, upper: Expr, step: Expr,
               kind: str, kw: Token) -> Loop:
    """Construct a :class:`Loop` at the parse boundary: IR-level domain
    rejections (zero constant step) become positioned parse errors
    instead of leaking ``ValueError`` to parser callers."""
    try:
        return Loop(index, lower, upper, step, kind)
    except ValueError as exc:
        raise ParseError(str(exc), line=kw.line, column=kw.column) from None


def _parse_condition(stream: TokenStream) -> Expr:
    left = parse_expression(stream)
    tok = stream.peek()
    if tok.kind == "op" and tok.text in _RELOPS:
        stream.next()
        right = parse_expression(stream)
        return call(_RELOPS[tok.text], left, right)
    return left


def _parse_statement(stream: TokenStream) -> Statement:
    tok = stream.peek()
    if tok.kind == "ident" and tok.text == "if":
        stream.next()
        stream.expect("op", "(")
        cond = _parse_condition(stream)
        stream.expect("op", ")")
        then = _parse_statement(stream)
        return If(cond, then)
    if tok.kind != "ident":
        raise ParseError(f"expected statement, found {tok.text or tok.kind!r}",
                         line=tok.line, column=tok.column)
    name = stream.next().text
    if stream.accept("op", "("):
        subscripts = [parse_expression(stream)]
        while stream.accept("op", ","):
            subscripts.append(parse_expression(stream))
        stream.expect("op", ")")
        target = ArrayRef(name, subscripts)
        if stream.accept("op", "+="):
            return Assign(target, parse_expression(stream), accumulate=True)
        stream.expect("op", "=")
        return Assign(target, parse_expression(stream))
    stream.expect("op", "=")
    return InitStmt(name, parse_expression(stream))


def _nest_guard(stream: TokenStream, kw: Token) -> None:
    """Loop-nesting depth guard: reject hostile "do do do ..." input
    with a typed error before Python's recursion limit is at risk."""
    cap = _guards.limits().max_nest_depth
    if stream.depth > cap:
        raise ParseError(
            f"loop nesting exceeds {cap} levels (REPRO_MAX_NEST_DEPTH)",
            line=kw.line, column=kw.column)


def _parse_loop(stream: TokenStream):
    kw = stream.expect("ident")
    if kw.text not in (DO, PARDO):
        raise ParseError(f"expected 'do' or 'pardo', found {kw.text!r}",
                         line=kw.line, column=kw.column)
    stream.depth += 1
    _nest_guard(stream, kw)
    index = stream.expect("ident").text
    stream.expect("op", "=")
    lower = parse_expression(stream)
    stream.expect("op", ",")
    upper = parse_expression(stream)
    from repro.expr.nodes import Const
    step: Expr = Const(1)
    if stream.accept("op", ","):
        step = parse_expression(stream)
    stream.skip_newlines()

    inner_loops: List[Loop] = []
    stmts: List[Statement] = []
    while True:
        tok = stream.peek()
        if tok.kind == "eof":
            raise ParseError("missing 'enddo'", line=tok.line, column=tok.column)
        if tok.kind == "ident" and tok.text == "enddo":
            stream.next()
            break
        if tok.kind == "ident" and tok.text in (DO, PARDO):
            if stmts:
                raise ParseError(
                    "imperfect nest: statement before an inner loop",
                    line=tok.line, column=tok.column)
            sub_loops, sub_stmts = _parse_loop(stream)
            inner_loops.extend(sub_loops)
            stmts.extend(sub_stmts)
            stream.skip_newlines()
            tok2 = stream.peek()
            if not (tok2.kind == "ident" and tok2.text == "enddo"):
                raise ParseError(
                    "imperfect nest: content after inner loop",
                    line=tok2.line, column=tok2.column)
            stream.next()
            break
        stmts.append(_parse_statement(stream))
        stream.skip_newlines()
    stream.depth -= 1
    return [_make_loop(index, lower, upper, step, kw.text, kw)] \
        + inner_loops, stmts


def parse_nest(text: str) -> LoopNest:
    """Parse a perfect loop nest from *text* and validate it."""
    _chaos.inject("ir.parse")
    _guards.check_source_size(text, "loop nest source")
    stream = TokenStream(tokenize(text))
    stream.skip_newlines()
    loops, stmts = _parse_loop(stream)
    stream.skip_newlines()
    tok = stream.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}",
                         line=tok.line, column=tok.column)

    inits: List[InitStmt] = []
    body: List[Statement] = []
    for stmt in stmts:
        if isinstance(stmt, InitStmt) and not body:
            inits.append(stmt)
        elif isinstance(stmt, InitStmt):
            raise ParseError(
                f"scalar assignment {stmt} must precede the loop body")
        else:
            body.append(stmt)
    try:
        nest = LoopNest(loops, body, inits)
        validate_nest(nest)
    except ParseError:
        raise
    except (ValueError, ReproError) as exc:
        # Structural rejections (duplicate loop index names, a bound
        # referencing an inner index) are bad *input* here, not API
        # misuse: the parser's contract is "ParseError or success".
        raise ParseError(str(exc)) from None
    return nest


def _parse_imperfect_loop(stream: TokenStream):
    """Recursive descent for :func:`parse_imperfect`."""
    from repro.ir.sinking import ImperfectNest

    kw = stream.expect("ident")
    if kw.text not in (DO, PARDO):
        raise ParseError(f"expected 'do' or 'pardo', found {kw.text!r}",
                         line=kw.line, column=kw.column)
    stream.depth += 1
    _nest_guard(stream, kw)
    index = stream.expect("ident").text
    stream.expect("op", "=")
    lower = parse_expression(stream)
    stream.expect("op", ",")
    upper = parse_expression(stream)
    from repro.expr.nodes import Const as _Const
    step: Expr = _Const(1)
    if stream.accept("op", ","):
        step = parse_expression(stream)
    stream.skip_newlines()

    pre: List[Statement] = []
    post: List[Statement] = []
    inner = None
    while True:
        tok = stream.peek()
        if tok.kind == "eof":
            raise ParseError("missing 'enddo'", line=tok.line,
                             column=tok.column)
        if tok.kind == "ident" and tok.text == "enddo":
            stream.next()
            break
        if tok.kind == "ident" and tok.text in (DO, PARDO):
            if inner is not None:
                raise ParseError(
                    "multiple inner loops at one level; distribute the "
                    "loop first (not supported)",
                    line=tok.line, column=tok.column)
            inner = _parse_imperfect_loop(stream)
            stream.skip_newlines()
            continue
        stmt = _parse_statement(stream)
        if isinstance(stmt, InitStmt) and inner is not None:
            raise ParseError(
                f"scalar assignment {stmt} after an inner loop cannot be "
                "sunk soundly; use an array element",
                line=tok.line, column=tok.column)
        (post if inner is not None else pre).append(stmt)
        stream.skip_newlines()
    loop = _make_loop(index, lower, upper, step, kw.text, kw)
    if inner is not None and any(isinstance(s, InitStmt) for s in pre):
        raise ParseError("scalar assignments before an inner loop cannot "
                         "be sunk soundly; use an array element")
    stream.depth -= 1
    return ImperfectNest(loop, pre, inner, post)


def parse_imperfect(text: str):
    """Parse a (possibly imperfect) loop nest into an
    :class:`~repro.ir.sinking.ImperfectNest` tree, ready for
    :func:`~repro.ir.sinking.sink`.

    Each level may have statements before and after at most one inner
    loop; scalar assignments in those positions are rejected (sinking
    them under guards would not be modeled by the dependence analyzer).
    """
    _chaos.inject("ir.parse")
    _guards.check_source_size(text, "loop nest source")
    stream = TokenStream(tokenize(text))
    stream.skip_newlines()
    tree = _parse_imperfect_loop(stream)
    stream.skip_newlines()
    tok = stream.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}",
                         line=tok.line, column=tok.column)
    return tree
