"""The step mini-language: the wire form of transformation sequences.

A *spec* is a semicolon-separated list of step builders, evaluated left
to right against the current nest depth::

    interchange(1,2); block(1,3,16); parallelize(1)
    skew(2,1); interchange(1,2)
    permute(3,1,2); coalesce(1,2)
    unimodular([[1,1],[1,0]])
    reverse(2); interleave(1,2,4,4); wavefront()

Loop numbers are 1-based, outermost first, as in the paper.

This module owns both directions of the serialization that everything
else builds on — ``Template.to_spec()`` renders a step, and the parsers
here rebuild it — so the CLI (``--steps``), the parallel-search wire
forms (:mod:`repro.parallel.worker`) and the transformation service
protocol (:mod:`repro.service`) all speak exactly the same language:

* :func:`parse_steps` — spec string -> :class:`Transformation`
  (the inverse of :meth:`Transformation.to_spec`);
* :func:`step_from_spec` — one step's spec -> :class:`Template`
  (the inverse of :meth:`Template.to_spec`); ``names`` restores the
  loop renaming a Unimodular spec omits.

Historically this lived in :mod:`repro.cli`, which still re-exports
every public name for compatibility.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.core.derived import wavefront as _wavefront
from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.core.templates.block import Block
from repro.core.templates.coalesce import Coalesce
from repro.core.templates.interleave import Interleave
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular
from repro.expr.parser import parse_expr
from repro.util.errors import ReproError
from repro.util.matrices import IntMatrix

__all__ = [
    "SpecError", "build_step", "parse_call", "parse_steps", "split_calls",
    "step_from_spec",
]


class SpecError(ReproError):
    """A malformed --steps specification."""


def split_calls(spec: str) -> List[str]:
    calls = [part.strip() for part in spec.split(";")]
    return [c for c in calls if c]


def parse_call(text: str) -> Tuple[str, List]:
    """``name(arg, ...)`` -> (name, [args]); args via literal_eval with
    bare identifiers allowed (block sizes may be symbolic)."""
    open_paren = text.find("(")
    if open_paren < 0 or not text.endswith(")"):
        raise SpecError(f"malformed step {text!r}; expected name(args)")
    name = text[:open_paren].strip().lower()
    body = text[open_paren + 1:-1].strip()
    if not body:
        return name, []
    args = []
    depth = 0
    current = ""
    for ch in body + ",":
        if ch == "," and depth == 0:
            args.append(current.strip())
            current = ""
            continue
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        current += ch
    parsed = []
    for a in args:
        try:
            parsed.append(ast.literal_eval(a))
        except (ValueError, SyntaxError):
            parsed.append(a)  # symbolic size / identifier
    return name, parsed


def _ints(args, count: Optional[int] = None, what: str = "argument"):
    for a in args:
        if not isinstance(a, int):
            raise SpecError(f"expected integer {what}s, got {a!r}")
    if count is not None and len(args) != count:
        raise SpecError(f"expected {count} {what}(s), got {len(args)}")
    return list(args)


def build_step(name: str, args: List, n: int) -> Template:
    """Instantiate one kernel template for a nest of current depth *n*."""
    if name == "interchange":
        a, b = _ints(args, 2, "loop number")
        perm = list(range(1, n + 1))
        perm[a - 1], perm[b - 1] = perm[b - 1], perm[a - 1]
        return ReversePermute(n, [False] * n, perm)
    if name == "permute":
        order = _ints(args, n, "loop number")
        perm = [0] * n
        for position, loop in enumerate(order, start=1):
            perm[loop - 1] = position
        return ReversePermute(n, [False] * n, perm)
    if name == "reverse":
        which = _ints(args, None, "loop number")
        rev = [k + 1 in which for k in range(n)]
        return ReversePermute(n, rev, list(range(1, n + 1)))
    if name == "revpermute":
        if (len(args) != 2 or not isinstance(args[0], list) or
                not isinstance(args[1], list)):
            raise SpecError("revpermute takes ([rev 0/1 flags], [perm]), "
                            "e.g. revpermute([0,1], [2,1])")
        rev = [bool(r) for r in args[0]]
        return ReversePermute(n, rev, args[1])
    if name == "skew":
        if len(args) == 2:
            target, source, factor = args[0], args[1], 1
        else:
            target, source, factor = _ints(args, 3, "skew parameter")
        return Unimodular(n, IntMatrix.skew(n, target - 1, source - 1,
                                            factor))
    if name == "unimodular":
        if len(args) != 1 or not isinstance(args[0], list):
            raise SpecError("unimodular takes one matrix, e.g. "
                            "unimodular([[1,1],[1,0]])")
        return Unimodular(n, args[0])
    if name == "wavefront":
        factors = _ints(args, None, "factor") if args else None
        return _wavefront(n, factors).steps[0]
    if name == "parallelize":
        which = _ints(args, None, "loop number")
        return Parallelize(n, [k + 1 in which for k in range(n)])
    if name in ("block", "tile"):
        if len(args) < 3:
            raise SpecError(f"{name} needs (i, j, size...)")
        i, j = _ints(args[:2], 2, "range bound")
        sizes = args[2:]
        precise = False
        if sizes and sizes[-1] == "precise":
            precise = True
            sizes = sizes[:-1]
        width = j - i + 1
        if len(sizes) == 1:
            sizes = sizes * width
        return Block(n, i, j, [_coerce_size(s) for s in sizes],
                     precise=precise)
    if name in ("stripmine", "strip_mine"):
        if len(args) != 2:
            raise SpecError("stripmine needs (loop, size)")
        k = _ints(args[:1], 1, "loop number")[0]
        return Block(n, k, k, [_coerce_size(args[1])])
    if name == "coalesce":
        i, j = _ints(args, 2, "range bound")
        return Coalesce(n, i, j)
    if name == "interleave":
        if len(args) < 3:
            raise SpecError("interleave needs (i, j, size...)")
        i, j = _ints(args[:2], 2, "range bound")
        sizes = args[2:]
        precise = False
        if sizes and sizes[-1] == "precise":
            precise = True
            sizes = sizes[:-1]
        width = j - i + 1
        if len(sizes) == 1:
            sizes = sizes * width
        return Interleave(n, i, j, [_coerce_size(s) for s in sizes],
                          precise=precise)
    raise SpecError(f"unknown step {name!r}")


def _coerce_size(s):
    if isinstance(s, int):
        return s
    if isinstance(s, str):
        return parse_expr(s)
    raise SpecError(f"bad size {s!r}")


def step_from_spec(spec: str, n: int,
                   names: Optional[Sequence[str]] = None) -> Template:
    """Rebuild one template from its :meth:`Template.to_spec` rendering.

    *n* is the nest depth the step expects (specs omit it for some
    templates); *names* restores the loop renaming of a Unimodular,
    which its spec also omits.  The rebuilt step has the same
    legality-cache content key as the original — that equivalence is
    what :func:`repro.parallel.worker.step_roundtrips` verifies.
    """
    name, args = parse_call(spec)
    step = build_step(name, args, n)
    if names is not None and isinstance(step, Unimodular):
        step = Unimodular(step.n, step.matrix, names=list(names))
    return step


def parse_steps(spec: str, depth: int, reduce: bool = True) -> Transformation:
    """Build a Transformation from a SPEC string for a *depth*-deep nest.

    By default the sequence is peephole-reduced, so
    ``skew(2,1); interchange(1,2)`` becomes the single fused Unimodular
    step of Figure 1; ``reduce=False`` keeps the steps verbatim (the
    form the parallel-search wire protocol needs).
    """
    steps = []
    n = depth
    for call in split_calls(spec):
        name, args = parse_call(call)
        step = build_step(name, args, n)
        steps.append(step)
        n = step.output_depth
    T = Transformation(steps, n=depth)
    return T.reduced() if reduce else T
