"""The sequence representation of iteration-reordering transformations.

Section 2: an iteration-reordering transformation is ``T = <t_1, ..., t_k>``
where each ``t_i`` instantiates a kernel template.  Composition is
sequence concatenation (``T . U = <t_1..t_k, u_1..u_l>``), optionally
reduced in length by fusing adjacent instantiations that compose into a
single instantiation — e.g. two adjacent Unimodular steps fuse by
multiplying their matrices.

The class provides the paper's two uniform operations:

* :meth:`Transformation.legality` — the single legality test for any
  sequence: (a) map the dependence set through all steps and look for a
  possible lexicographically negative tuple (only the *final* set
  matters — intermediate stages may be individually illegal); (b) check
  every step's loop-bounds preconditions against the loops it receives.
* :meth:`Transformation.apply` — uniform code generation: fold the loop
  headers through every step's bounds mapping and emit initialization
  statements in the order ``INIT_k, ..., INIT_1``.

Transformations are independent of loop nests: building, composing and
testing them never mutates a nest (Section 5).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.codegen import assemble_nest, collect_taken
from repro.core.template import Template
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular
from repro.deps.vector import DepSet
from repro.ir.loopnest import Loop, LoopNest
from repro.obs import trace as _obs
from repro.util.errors import (
    CodegenError,
    IllegalTransformationError,
    PreconditionViolation,
)


class LegalityReport:
    """Outcome of the unified legality test, with an explanation."""

    __slots__ = ("legal", "reason", "failed_step", "final_deps", "violation")

    def __init__(self, legal: bool, reason: str = "",
                 failed_step: Optional[int] = None,
                 final_deps: Optional[DepSet] = None,
                 violation: Optional[PreconditionViolation] = None):
        self.legal = legal
        self.reason = reason
        self.failed_step = failed_step
        self.final_deps = final_deps
        self.violation = violation

    def __bool__(self):
        return self.legal

    def __repr__(self):
        if self.legal:
            return "LegalityReport(legal)"
        return f"LegalityReport(illegal: {self.reason})"


class Transformation:
    """An immutable sequence of kernel template instantiations."""

    __slots__ = ("steps", "_n")

    def __init__(self, steps: Sequence[Template], n: Optional[int] = None):
        """*steps* may be empty only when *n* (the nest size) is given."""
        steps = tuple(steps)
        if not steps and n is None:
            raise ValueError("an empty transformation needs an explicit n")
        for prev, nxt in zip(steps, steps[1:]):
            if prev.output_depth != nxt.n:
                raise ValueError(
                    f"cannot chain {prev.signature()} (outputs "
                    f"{prev.output_depth} loops) with {nxt.signature()} "
                    f"(expects {nxt.n})")
        if steps and n is not None and steps[0].n != n:
            raise ValueError(
                f"first step expects {steps[0].n} loops, not n={n}")
        object.__setattr__(self, "steps", steps)
        object.__setattr__(self, "_n", n if n is not None else steps[0].n)

    def __setattr__(self, name, value):
        raise AttributeError("Transformation is immutable")

    # The guarded __setattr__ breaks pickle's default slot-state
    # restoration (sequences cross process boundaries in parallel search).
    def __getstate__(self):
        return (self.steps, self._n)

    def __setstate__(self, state):
        object.__setattr__(self, "steps", state[0])
        object.__setattr__(self, "_n", state[1])

    # -- construction -----------------------------------------------------

    @staticmethod
    def identity(n: int) -> "Transformation":
        return Transformation((), n=n)

    @staticmethod
    def of(*steps: Template) -> "Transformation":
        return Transformation(steps)

    @staticmethod
    def from_spec(spec: str, n: int,
                  reduce: bool = True) -> "Transformation":
        """Rebuild a transformation from its :meth:`to_spec` rendering
        for an *n*-deep nest — the inverse wire form used by the CLI,
        the parallel-search workers and the transformation service.
        ``reduce=False`` skips the peephole reduction and keeps the
        spelled steps verbatim."""
        # Deferred: repro.core.spec imports this module.
        from repro.core.spec import parse_steps
        return parse_steps(spec, n, reduce=reduce)

    def then(self, other: Union[Template, "Transformation"],
             reduce: bool = True) -> "Transformation":
        """Compose: apply *self* first, then *other* (sequence
        concatenation, Section 2 item 2), peephole-reducing by default."""
        other_steps = (other.steps if isinstance(other, Transformation)
                       else (other,))
        combined = Transformation(self.steps + tuple(other_steps),
                                  n=self._n)
        return combined.reduced() if reduce else combined

    def reduced(self) -> "Transformation":
        """Peephole reduction: drop identity steps and fuse adjacent
        instantiations of the same fusable template (Section 2 item 2:
        "the concatenated sequence can be reduced in length")."""
        out: List[Template] = []
        for step in self.steps:
            if _is_identity(step):
                continue
            if out:
                fused = _fuse(out[-1], step)
                if fused is not None:
                    out.pop()
                    if not _is_identity(fused):
                        out.append(fused)
                    continue
            out.append(step)
        return Transformation(out, n=self._n)

    # -- structure ------------------------------------------------------------

    @property
    def input_depth(self) -> int:
        return self._n

    @property
    def output_depth(self) -> int:
        return self.steps[-1].output_depth if self.steps else self._n

    def __len__(self):
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def signature(self) -> str:
        if not self.steps:
            return f"<identity(n={self._n})>"
        return "<" + ", ".join(s.signature() for s in self.steps) + ">"

    def to_spec(self) -> str:
        """Serialize to the CLI step mini-language.

        ``repro.cli.parse_steps(T.to_spec(), T.input_depth)`` rebuilds an
        equivalent transformation (modulo peephole reduction), so
        sequences can be saved, replayed and shipped as plain strings.
        """
        return "; ".join(step.to_spec() for step in self.steps)

    def __repr__(self):
        return self.signature()

    # -- dependence vectors ------------------------------------------------------

    def map_dep_set(self, deps: DepSet,
                    nest: Optional[LoopNest] = None) -> DepSet:
        """``T(D)``: fold every step's Table 2 rule over the set.

        When *nest* is given, each context-sensitive step (Block,
        Interleave) receives its :meth:`~Template.dep_context` for the
        loops it would see, so anchored decompositions widen soundly
        (DESIGN.md, soundness tightening 4); without a nest the fold is
        the paper's loop-independent — possibly under-approximate —
        mapping.
        """
        current = deps
        for step, ctx in zip(self.steps, self._dep_contexts(nest)):
            current = step.map_dep_set(current, ctx)
        return current

    def dep_set_trace(self, deps: DepSet,
                      nest: Optional[LoopNest] = None) -> List[DepSet]:
        """The dependence set after each stage, ``[D_0, D_1, ..., D_k]``
        (used to regenerate the paper's Figure 7 table)."""
        trace = [deps]
        for step, ctx in zip(self.steps, self._dep_contexts(nest)):
            trace.append(step.map_dep_set(trace[-1], ctx))
        return trace

    def _dep_contexts(self, nest: Optional[LoopNest]) -> List:
        """Per-step dependence-mapping contexts (input loops folded
        through the sequence); all None when no nest is given or no step
        is context-sensitive."""
        if nest is None or not any(s.dep_context_sensitive
                                   for s in self.steps):
            return [None] * len(self.steps)
        loops: Optional[Tuple[Loop, ...]] = nest.loops
        taken = collect_taken(nest)
        ctxs: List = []
        for step in self.steps:
            ctx = None
            if loops is not None and step.dep_context_sensitive:
                ctx = step.dep_context(loops)
            ctxs.append(ctx)
            if loops is not None:
                try:
                    step.check_preconditions(loops)
                    loops, _ = step.map_loops(loops, taken)
                except (PreconditionViolation, CodegenError):
                    # The bounds half of legality will reject this
                    # sequence; later steps fall back to the
                    # context-free mapping.
                    loops = None
        return ctxs

    # -- the unified legality test (Section 2, item 3) -----------------------------

    def legality(self, nest: LoopNest, deps: DepSet) -> LegalityReport:
        """Run both halves of the legality test; never mutates *nest*."""
        if nest.depth != self._n:
            return LegalityReport(
                False, f"nest has {nest.depth} loops, transformation "
                       f"expects {self._n}")
        # (a) dependence vector test: only the final set matters.
        with _obs.span("legality.map_deps", steps=len(self.steps)):
            final = self.map_dep_set(deps, nest=nest)
        if final.can_be_lex_negative():
            bad = [str(v) for v in final if v.can_be_lex_negative()]
            return LegalityReport(
                False,
                "transformed dependence set admits a lexicographically "
                f"negative tuple: {', '.join(bad)}",
                final_deps=final)
        # (b) loop bounds test: every step's preconditions must hold on
        # the loops it receives.
        with _obs.span("legality.bounds", steps=len(self.steps)):
            loops: Tuple[Loop, ...] = nest.loops
            taken = collect_taken(nest)
            for idx, step in enumerate(self.steps):
                try:
                    step.check_preconditions(loops)
                    loops, _ = step.map_loops(loops, taken)
                except PreconditionViolation as exc:
                    return LegalityReport(
                        False, str(exc), failed_step=idx, final_deps=final,
                        violation=exc)
                except CodegenError as exc:
                    # A mapping the preconditions admit but codegen cannot
                    # realize (e.g. Fourier-Motzkin blowup) is still a
                    # rejection, not a crash.
                    return LegalityReport(
                        False, f"{step.signature()}: {exc}", failed_step=idx,
                        final_deps=final)
        return LegalityReport(True, final_deps=final)

    def is_legal(self, nest: LoopNest, deps: DepSet) -> bool:
        """Boolean form of :meth:`legality`."""
        return self.legality(nest, deps).legal

    # -- code generation --------------------------------------------------------------

    def apply(self, nest: LoopNest, deps: Optional[DepSet] = None,
              check: bool = True) -> LoopNest:
        """Generate the transformed loop nest.

        With ``check=True`` (default) a *deps* set must be supplied and
        the unified legality test runs first, raising
        :class:`IllegalTransformationError` on failure.  ``check=False``
        skips the dependence half (callers doing their own analysis).
        """
        if check:
            if deps is None:
                raise ValueError("apply(check=True) requires a dependence set")
            report = self.legality(nest, deps)
            if not report.legal:
                raise IllegalTransformationError(
                    f"{self.signature()} is illegal for this nest: "
                    f"{report.reason}")
        loops = nest.loops
        taken = collect_taken(nest)
        per_step_inits = []
        for step in self.steps:
            if not check:
                step.check_preconditions(loops)
            loops, inits = step.map_loops(loops, taken)
            per_step_inits.append(inits)
        return assemble_nest(nest, loops, per_step_inits)

    def loop_trace(self, nest: LoopNest) -> List[Tuple[Loop, ...]]:
        """Loop headers after each stage (used for Figure 7)."""
        loops = nest.loops
        taken = collect_taken(nest)
        trace = [loops]
        for step in self.steps:
            step.check_preconditions(loops)
            loops, _ = step.map_loops(loops, taken)
            trace.append(loops)
        return trace


def _is_identity(step: Template) -> bool:
    if isinstance(step, ReversePermute):
        return (not any(step.rev) and
                step.perm == tuple(range(1, step.n + 1)))
    if isinstance(step, Parallelize):
        return not any(step.parflag)
    if isinstance(step, Unimodular):
        return all(step.matrix[i, j] == (1 if i == j else 0)
                   for i in range(step.n) for j in range(step.n))
    return False


def _rp_matrix(step: ReversePermute):
    """The unimodular matrix equivalent of a ReversePermute step."""
    from repro.util.matrices import IntMatrix

    n = step.n
    rows = [[0] * n for _ in range(n)]
    for k in range(n):
        rows[step.perm[k] - 1][k] = -1 if step.rev[k] else 1
    return IntMatrix(rows)


def _fuse(a: Template, b: Template) -> Optional[Template]:
    """Compose two adjacent instantiations into one when possible
    (Section 2: "whenever it is possible to do so")."""
    if isinstance(a, Unimodular) and isinstance(b, Unimodular):
        # y = Mb (Ma x)  =>  combined matrix Mb @ Ma.
        return Unimodular(a.n, b.matrix @ a.matrix, names=b.names)
    if isinstance(a, ReversePermute) and isinstance(b, ReversePermute):
        n = a.n
        perm = [b.perm[a.perm[k] - 1] for k in range(n)]
        rev = [a.rev[k] != b.rev[a.perm[k] - 1] for k in range(n)]
        return ReversePermute(n, rev, perm)
    # A ReversePermute adjacent to a Unimodular folds into the matrix
    # (this is what makes "skew then interchange" one fused step, as in
    # Figure 1, even when the interchange was written the cheap way).
    if isinstance(a, Unimodular) and isinstance(b, ReversePermute):
        return Unimodular(a.n, _rp_matrix(b) @ a.matrix)
    if isinstance(a, ReversePermute) and isinstance(b, Unimodular):
        return Unimodular(a.n, b.matrix @ _rp_matrix(a), names=b.names)
    if isinstance(a, Parallelize) and isinstance(b, Parallelize):
        return Parallelize(a.n, [x or y
                                 for x, y in zip(a.parflag, b.parflag)])
    return None
