"""The paper's primary contribution: templates, sequences, legality, codegen."""

from repro.core.bounds_matrix import BoundsMatrix
from repro.core.legality_cache import LegalityCache
from repro.core.sequence import LegalityReport, Transformation
from repro.core.template import Template, TransformedLoops, fresh_name
from repro.core.templates import (
    KERNEL_SET,
    Block,
    Coalesce,
    Interleave,
    Parallelize,
    ReversePermute,
    Unimodular,
)
from repro.core import derived

__all__ = [
    "BoundsMatrix", "LegalityCache", "LegalityReport", "Transformation",
    "Template",
    "TransformedLoops", "fresh_name", "KERNEL_SET",
    "Block", "Coalesce", "Interleave", "Parallelize", "ReversePermute",
    "Unimodular", "derived",
]
