"""Code-generation helpers shared by the sequence driver.

The actual bounds mapping lives in each template's ``map_loops``; this
module handles the bookkeeping around it: collecting the identifier
names a transformed nest must not collide with, and assembling the final
:class:`~repro.ir.loopnest.LoopNest` with its initialization statements
in the order the paper prescribes (``INIT_k, ..., INIT_1``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.expr.nodes import Call, Expr, children, free_vars
from repro.ir.loopnest import Assign, If, InitStmt, LoopNest, Statement


def _call_names(e: Expr, out: Set[str]) -> None:
    if isinstance(e, Call):
        out.add(e.func)
    for c in children(e):
        _call_names(c, out)


def collect_taken(nest: LoopNest) -> Set[str]:
    """Every identifier in use in *nest*: loop indices, bound invariants,
    array/function names and body variables.  Fresh names generated during
    code generation must avoid all of them."""
    taken: Set[str] = set(nest.indices)
    taken |= nest.invariants()
    for lp in nest.loops:
        for e in (lp.lower, lp.upper, lp.step):
            _call_names(e, taken)

    def visit(stmt: Statement) -> None:
        if isinstance(stmt, Assign):
            taken.add(stmt.target.name)
            for s in stmt.target.subscripts:
                taken.update(free_vars(s))
                _call_names(s, taken)
            taken.update(free_vars(stmt.expr))
            _call_names(stmt.expr, taken)
        elif isinstance(stmt, If):
            taken.update(free_vars(stmt.cond))
            _call_names(stmt.cond, taken)
            visit(stmt.then)
        elif isinstance(stmt, InitStmt):
            taken.add(stmt.var)
            taken.update(free_vars(stmt.expr))
            _call_names(stmt.expr, taken)

    for stmt in nest.body:
        visit(stmt)
    for init in nest.inits:
        visit(init)
    return taken


def assemble_nest(nest: LoopNest, final_loops: Sequence,
                  per_step_inits: Sequence[Tuple[InitStmt, ...]]) -> LoopNest:
    """Build the output nest: init statements of later template
    instantiations execute first (paper Section 2, item 4(b))."""
    inits: List[InitStmt] = []
    for step_inits in reversed(list(per_step_inits)):
        inits.extend(step_inits)
    return LoopNest(final_loops, nest.body, tuple(inits) + nest.inits)
