"""The transformation-template protocol (Section 2).

A *transformation template* has parameters; supplying values creates a
*template instantiation* (here: an instance of a :class:`Template`
subclass).  Every template defines:

* ``map_dep_vector`` — the Table 2 dependence-vector mapping rule (one
  input vector may map to several output vectors, e.g. for Block);
* ``check_preconditions`` — the Table 3/4 loop-bounds preconditions,
  evaluated on the :class:`~repro.core.bounds_matrix.BoundsMatrix` of the
  *current* loops (never on generated code);
* ``map_loops`` — the Table 3/4 loop-bounds mapping rules plus the
  initialization-statement rules; returns the new loop headers and the
  ``INIT`` statements that define this template's input index variables
  as functions of its output index variables.

Templates are value objects, independent of any loop nest: they can be
created, composed into sequences, tested for legality against many nests
and discarded, without ever mutating a nest (Section 5's
"search and undo" property).
"""

from __future__ import annotations

import abc
from typing import Iterable, List, NamedTuple, Sequence, Set, Tuple

from repro.core.bounds_matrix import BoundsMatrix
from repro.deps.vector import DepSet, DepVector
from repro.ir.loopnest import InitStmt, Loop


class TransformedLoops(NamedTuple):
    """Result of one template's loop mapping."""

    loops: Tuple[Loop, ...]
    inits: Tuple[InitStmt, ...]


class Template(abc.ABC):
    """Base class for kernel transformation templates.

    Instances are immutable once constructed.  ``n`` is the input loop
    nest size; ``output_depth`` the output nest size (they differ for
    Block, Coalesce and Interleave).
    """

    #: Template name as it appears in the paper's kernel set (Table 1).
    kernel_name: str = "?"

    def __init__(self, n: int):
        if not isinstance(n, int) or n < 1:
            raise ValueError(f"loop nest size must be a positive int, got {n!r}")
        self.n = n

    # -- structure ---------------------------------------------------------

    @property
    def output_depth(self) -> int:
        """Size of the output loop nest (defaults to ``n``)."""
        return self.n

    @abc.abstractmethod
    def params(self) -> str:
        """Human-readable parameter rendering, e.g. ``perm=[3 1 2]``."""

    def signature(self) -> str:
        return f"{self.kernel_name}({self.params()})"

    def to_spec(self) -> str:
        """Rendering in the CLI step mini-language; kernel templates all
        implement this so sequences serialize via
        :meth:`Transformation.to_spec`."""
        raise NotImplementedError(
            f"{type(self).__name__} has no step-language spelling")

    def __repr__(self):
        return self.signature()

    # -- dependence vectors (Table 2) -----------------------------------------

    @abc.abstractmethod
    def map_dep_vector(self, vec: DepVector) -> List[DepVector]:
        """Apply this template's Table 2 rule to one dependence vector."""

    def map_dep_set(self, deps: DepSet) -> DepSet:
        """Apply the rule to a whole dependence set."""
        if deps.is_empty():
            return deps
        if deps.depth != self.n:
            raise ValueError(
                f"{self.signature()}: dependence vectors have "
                f"{deps.depth} entries, expected {self.n}")
        out: List[DepVector] = []
        for vec in deps:
            out.extend(self.map_dep_vector(vec))
        return DepSet(out)

    # -- loop bounds (Tables 3 and 4) -------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        """Raise :class:`PreconditionViolation` when the loop-bounds
        preconditions are not met.  Default: no preconditions."""
        self._require_depth(loops)

    @abc.abstractmethod
    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        """Produce the transformed loop headers and INIT statements.

        *taken* is the set of identifier names already in use (loop
        indices, invariants, array names); fresh names must avoid it.
        Implementations must not mutate *taken* except through
        :func:`fresh_name`, which records the names it hands out.
        """

    # -- helpers -------------------------------------------------------------

    def _require_depth(self, loops: Sequence[Loop]) -> None:
        if len(loops) != self.n:
            raise ValueError(
                f"{self.signature()}: expected a nest of {self.n} loops, "
                f"got {len(loops)}")

    def _bounds_matrix(self, loops: Sequence[Loop]) -> BoundsMatrix:
        return BoundsMatrix(loops)


def fresh_name(base: str, taken: Set[str]) -> str:
    """A deterministic fresh identifier: the doubled base name (``i`` ->
    ``ii``, matching the paper's examples), then numbered fallbacks.

    The chosen name is added to *taken*.
    """
    candidates = [base, base * 2 if len(base) == 1 else base + base[-1]]
    candidates += [f"{base}{k}" for k in range(2, 100)]
    for cand in candidates:
        if cand not in taken:
            taken.add(cand)
            return cand
    raise RuntimeError(f"could not find a fresh name for {base!r}")


def check_contiguous_range(name: str, n: int, i: int, j: int) -> None:
    """Validate a template's 1-based contiguous loop range ``i..j``."""
    if not (1 <= i <= j <= n):
        raise ValueError(
            f"{name}: range i..j must satisfy 1 <= i <= j <= n, "
            f"got i={i}, j={j}, n={n}")
