"""The transformation-template protocol (Section 2).

A *transformation template* has parameters; supplying values creates a
*template instantiation* (here: an instance of a :class:`Template`
subclass).  Every template defines:

* ``map_dep_vector`` — the Table 2 dependence-vector mapping rule (one
  input vector may map to several output vectors, e.g. for Block);
* ``check_preconditions`` — the Table 3/4 loop-bounds preconditions,
  evaluated on the :class:`~repro.core.bounds_matrix.BoundsMatrix` of the
  *current* loops (never on generated code);
* ``map_loops`` — the Table 3/4 loop-bounds mapping rules plus the
  initialization-statement rules; returns the new loop headers and the
  ``INIT`` statements that define this template's input index variables
  as functions of its output index variables.

Templates are value objects, independent of any loop nest: they can be
created, composed into sequences, tested for legality against many nests
and discarded, without ever mutating a nest (Section 5's
"search and undo" property).
"""

from __future__ import annotations

import abc
from typing import Iterable, List, NamedTuple, Sequence, Set, Tuple

from repro.core.bounds_matrix import BoundsMatrix
from repro.deps.vector import DepSet, DepVector
from repro.ir.loopnest import InitStmt, Loop


class TransformedLoops(NamedTuple):
    """Result of one template's loop mapping."""

    loops: Tuple[Loop, ...]
    inits: Tuple[InitStmt, ...]


class Template(abc.ABC):
    """Base class for kernel transformation templates.

    Instances are immutable once constructed.  ``n`` is the input loop
    nest size; ``output_depth`` the output nest size (they differ for
    Block, Coalesce and Interleave).
    """

    #: Template name as it appears in the paper's kernel set (Table 1).
    kernel_name: str = "?"

    def __init__(self, n: int):
        if not isinstance(n, int) or n < 1:
            raise ValueError(f"loop nest size must be a positive int, got {n!r}")
        self.n = n

    # -- structure ---------------------------------------------------------

    @property
    def output_depth(self) -> int:
        """Size of the output loop nest (defaults to ``n``)."""
        return self.n

    @abc.abstractmethod
    def params(self) -> str:
        """Human-readable parameter rendering, e.g. ``perm=[3 1 2]``."""

    def signature(self) -> str:
        return f"{self.kernel_name}({self.params()})"

    def to_spec(self) -> str:
        """Rendering in the CLI step mini-language; kernel templates all
        implement this so sequences serialize via
        :meth:`Transformation.to_spec`."""
        raise NotImplementedError(
            f"{type(self).__name__} has no step-language spelling")

    def __repr__(self):
        return self.signature()

    # -- dependence vectors (Table 2) -----------------------------------------

    #: True for templates whose Table 2 rule is only exact when the
    #: decomposition anchor (a range loop's lower bound) is invariant in
    #: the other loop variables; legality passes them a
    #: :meth:`dep_context` so the mapping can widen (see DESIGN.md,
    #: soundness tightening 4).
    dep_context_sensitive: bool = False

    @abc.abstractmethod
    def map_dep_vector(self, vec: DepVector) -> List[DepVector]:
        """Apply this template's Table 2 rule to one dependence vector."""

    def dep_context(self, loops: Sequence[Loop]):
        """A hashable summary of whatever the Table 2 rule's exactness
        depends on in the loop headers this step receives, or None when
        the rule is exact unconditionally (the default)."""
        return None

    def map_dep_set(self, deps: DepSet, ctx=None) -> DepSet:
        """Apply the rule to a whole dependence set.

        *ctx* is this step's :meth:`dep_context` for the loops it
        receives (None when unknown or not needed); context-sensitive
        templates use it to widen entries whose rule would otherwise be
        unsound.  The base implementation ignores it.
        """
        if deps.is_empty():
            return deps
        if deps.depth != self.n:
            raise ValueError(
                f"{self.signature()}: dependence vectors have "
                f"{deps.depth} entries, expected {self.n}")
        out: List[DepVector] = []
        for vec in deps:
            out.extend(self.map_dep_vector(vec))
        return DepSet(out)

    # -- loop bounds (Tables 3 and 4) -------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        """Raise :class:`PreconditionViolation` when the loop-bounds
        preconditions are not met.  Default: no preconditions."""
        self._require_depth(loops)

    @abc.abstractmethod
    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        """Produce the transformed loop headers and INIT statements.

        *taken* is the set of identifier names already in use (loop
        indices, invariants, array names); fresh names must avoid it.
        Implementations must not mutate *taken* except through
        :func:`fresh_name`, which records the names it hands out.
        """

    # -- helpers -------------------------------------------------------------

    def _require_depth(self, loops: Sequence[Loop]) -> None:
        if len(loops) != self.n:
            raise ValueError(
                f"{self.signature()}: expected a nest of {self.n} loops, "
                f"got {len(loops)}")

    def _bounds_matrix(self, loops: Sequence[Loop]) -> BoundsMatrix:
        return BoundsMatrix(loops)


def fresh_name(base: str, taken: Set[str]) -> str:
    """A deterministic fresh identifier: the doubled base name (``i`` ->
    ``ii``, matching the paper's examples), then numbered fallbacks.

    The chosen name is added to *taken*.
    """
    candidates = [base, base * 2 if len(base) == 1 else base + base[-1]]
    candidates += [f"{base}{k}" for k in range(2, 100)]
    for cand in candidates:
        if cand not in taken:
            taken.add(cand)
            return cand
    raise RuntimeError(f"could not find a fresh name for {base!r}")


def check_contiguous_range(name: str, n: int, i: int, j: int) -> None:
    """Validate a template's 1-based contiguous loop range ``i..j``."""
    if not (1 <= i <= j <= n):
        raise ValueError(
            f"{name}: range i..j must satisfy 1 <= i <= j <= n, "
            f"got i={i}, j={j}, n={n}")


def anchor_dep_context(tmpl, loops: Sequence[Loop]):
    """Shared :meth:`Template.dep_context` for Block and Interleave.

    Both decompose each range loop ``k`` against an *anchor* — the
    residue class (Interleave) or tile origin (Block) is measured from
    ``l_k`` on the lattice ``{l_k + m*s_k}``.  When ``l_k`` (or ``s_k``)
    references another loop variable ``x_h``, source and target of a
    dependence with a nonzero distance in ``x_h`` see *different*
    anchors, and the loop-invariant Table 2 rule under-approximates the
    mapped set (DESIGN.md, soundness tightening 4).

    Returns ``((k, (h, ...)), ...)`` listing, per range loop with a
    variant anchor, the 1-based loops its anchor references — or None
    when every anchor is invariant (the common rectangular case).
    """
    from repro.expr.linear import BoundType

    bm = tmpl._bounds_matrix(loops)
    ctx = []
    for k in range(tmpl.i, tmpl.j + 1):
        refs = tuple(
            h for h in range(1, tmpl.n + 1)
            if h != k and not (bm.type_of("LB", k, h).leq(BoundType.INVAR)
                               and bm.type_of("STEP", k, h).leq(
                                   BoundType.INVAR)))
        if refs:
            ctx.append((k, refs))
    return tuple(ctx) if ctx else None


def map_anchored_dep_set(tmpl, deps: DepSet, ctx) -> DepSet:
    """Shared context-aware :meth:`Template.map_dep_set` body for Block
    and Interleave.

    For each vector, range entries whose anchor references a loop with a
    possibly-nonzero distance are widened to the unconstrained pair
    ``{(*, *)}`` (the anchors may differ, so neither the offset/tile nor
    the element relation is known); all other entries keep the exact
    rule.
    """
    if deps.is_empty():
        return deps
    if deps.depth != tmpl.n:
        raise ValueError(
            f"{tmpl.signature()}: dependence vectors have "
            f"{deps.depth} entries, expected {tmpl.n}")
    refs_by_k = dict(ctx)
    out: List[DepVector] = []
    for vec in deps:
        widen = frozenset(
            k for k, hs in refs_by_k.items()
            if not all(vec.entry(h).is_zero() for h in hs))
        out.extend(tmpl.map_dep_vector(vec, widen=widen))
    return DepSet(out)
