"""Derived transformations: the classic loop transformations of the
paper's introduction (interchange, reversal, permutation, skewing,
strip-mining, blocking, coalescing, interleaving, parallelization,
wavefront) expressed as sequences of kernel template instantiations.

These are conveniences only — everything here returns a plain
:class:`~repro.core.sequence.Transformation` built from the kernel set,
demonstrating the framework's extensibility claim: new transformations
are defined by *composing templates*, not by adding bespoke legality
tests or code generators.

All loop numbers are 1-based, outermost first, as in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.sequence import Transformation
from repro.core.templates.block import Block, SizeLike
from repro.core.templates.coalesce import Coalesce
from repro.core.templates.interleave import Interleave
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular
from repro.util.matrices import IntMatrix


def interchange(n: int, a: int, b: int) -> Transformation:
    """Swap loops *a* and *b* via ReversePermute (the cheap path that
    reuses index names and avoids matrix arithmetic; Section 4.2)."""
    perm = list(range(1, n + 1))
    perm[a - 1], perm[b - 1] = perm[b - 1], perm[a - 1]
    return Transformation.of(ReversePermute(n, [False] * n, perm))


def permutation(n: int, order: Sequence[int]) -> Transformation:
    """Reorder loops so that output position *p* holds input loop
    ``order[p-1]`` — e.g. ``order=[2, 3, 1]`` makes old loop 2 outermost."""
    if sorted(order) != list(range(1, n + 1)):
        raise ValueError(f"order must be a permutation of 1..{n}")
    perm = [0] * n
    for position, loop_number in enumerate(order, start=1):
        perm[loop_number - 1] = position
    return Transformation.of(ReversePermute(n, [False] * n, perm))


def reversal(n: int, which: Sequence[int]) -> Transformation:
    """Reverse the listed loops in place."""
    rev = [False] * n
    for k in which:
        rev[k - 1] = True
    return Transformation.of(
        ReversePermute(n, rev, list(range(1, n + 1))))


def skew(n: int, target: int, source: int, factor: int = 1,
         names: Optional[Sequence[str]] = None) -> Transformation:
    """Skew loop *target* by *factor* times loop *source* (Unimodular)."""
    matrix = IntMatrix.skew(n, target - 1, source - 1, factor)
    return Transformation.of(Unimodular(n, matrix, names=names))


def unimodular(n: int, matrix, names: Optional[Sequence[str]] = None
               ) -> Transformation:
    """An arbitrary unimodular transformation as a one-step sequence."""
    return Transformation.of(Unimodular(n, matrix, names=names))


def parallelize(n: int, which: Sequence[int]) -> Transformation:
    """Turn the listed loops into ``pardo`` loops."""
    flags = [False] * n
    for k in which:
        flags[k - 1] = True
    return Transformation.of(Parallelize(n, flags))


def strip_mine(n: int, k: int, size: SizeLike) -> Transformation:
    """Split loop *k* into a block loop and an element loop (Block over a
    single-loop range — strip-mining is the degenerate tiling)."""
    return Transformation.of(Block(n, k, k, [size]))


def tile(n: int, i: int, j: int, sizes: Sequence[SizeLike],
         precise: bool = False) -> Transformation:
    """Tile the contiguous loops ``i..j`` (Block)."""
    return Transformation.of(Block(n, i, j, sizes, precise=precise))


def coalesce(n: int, i: int, j: int) -> Transformation:
    """Collapse the contiguous loops ``i..j`` into one loop."""
    return Transformation.of(Coalesce(n, i, j))


def interleave(n: int, i: int, j: int, sizes: Sequence[SizeLike],
               precise: bool = False) -> Transformation:
    """Cyclically distribute the contiguous loops ``i..j``."""
    return Transformation.of(Interleave(n, i, j, sizes, precise=precise))


def wavefront(n: int, factors: Optional[Sequence[int]] = None,
              names: Optional[Sequence[str]] = None) -> Transformation:
    """Lamport's hyperplane schedule as a unimodular step.

    The outer output loop enumerates hyperplanes
    ``sum(factors[k] * x_k)`` (all factors 1 by default — the classic
    ``i + j + ...`` wavefront); the remaining output loops copy input
    loops 2..n, so the matrix is unimodular whenever ``factors[0] == 1``.
    Follow with :func:`parallelize` of the inner loops once legality of
    their parallel execution is established.
    """
    factors = list(factors) if factors is not None else [1] * n
    if len(factors) != n:
        raise ValueError(f"need {n} wavefront factors")
    if factors[0] != 1:
        raise ValueError("wavefront requires factors[0] == 1 to stay "
                         "unimodular with this row layout")
    rows: List[List[int]] = [list(factors)]
    for k in range(1, n):
        rows.append([1 if m == k else 0 for m in range(n)])
    return Transformation.of(Unimodular(n, IntMatrix(rows), names=names))


def skew_and_interchange(n: int = 2,
                         names: Optional[Sequence[str]] = None
                         ) -> Transformation:
    """Figure 1's transformation: skew loop 2 by loop 1, then interchange
    — as a single fused Unimodular step."""
    if n != 2:
        raise ValueError("the Figure 1 transformation is 2-deep")
    skew_m = IntMatrix.skew(2, 1, 0, 1)
    swap_m = IntMatrix.interchange(2, 0, 1)
    return Transformation.of(Unimodular(2, swap_m @ skew_m, names=names))
