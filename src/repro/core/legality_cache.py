"""Memoized legality testing for transformation sequences.

Beam search (:func:`repro.optimize.search.search`) asks
:meth:`Transformation.legality` about thousands of sequences that share
long prefixes and always the same nest and dependence set.  Both halves
of the unified legality test decompose over the sequence:

* the dependence half is a fold of ``step.map_dep_set`` — memoizing on
  ``(dependence-set content, step content)`` means a sequence extension
  maps only its new step;
* the bounds half is a fold of ``check_preconditions``/``map_loops``
  over the loop headers — memoizing per ``(nest, step prefix)`` means an
  extension re-checks only its new step, and a prefix that already
  failed rejects every extension immediately without re-running any
  template code (legality of ``T`` never improves by appending to it,
  because the bounds fold fails at the same step with the same error).

The cache replicates :meth:`Transformation.legality` exactly: identical
``LegalityReport`` fields (reason strings, failed step index, final
dependence set with identical vector order, violation object) for every
input, which the property tests in ``tests/test_legality_cache.py``
enforce against the uncached implementation.

Keys are *content* keys: dependence sets key by their ordered entry
tuples (``DepSet.__hash__`` is order-insensitive, but the failure reason
string enumerates vectors in order, so the cache must not conflate
reorderings); template steps key by type, depth and ``to_spec()`` (plus
``names`` for Unimodular, which its spec omits).  All keys are interned
to small integers so hot lookups never re-hash deep structures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.codegen import collect_taken
from repro.core.sequence import LegalityReport, Transformation
from repro.core.template import Template
from repro.deps.vector import DepSet
from repro.ir.loopnest import Loop, LoopNest
from repro.obs import trace as _obs
from repro.resilience import chaos as _chaos
from repro.util.errors import CodegenError, PreconditionViolation


def depset_key(deps: DepSet) -> Tuple:
    """Order-preserving content key for a dependence set."""
    return tuple(v.entries for v in deps.vectors)


def template_key(step: Template) -> Tuple:
    """Content key for a template instantiation.

    ``to_spec()`` is the canonical serialization, but it omits ``n`` for
    some templates (``block(i, j, sizes)``) and ``names`` for Unimodular,
    so both are folded in explicitly.  A template with no step-language
    spelling falls back to identity keying — always correct, never
    shared: the instantiation object itself is the identity token, so the
    key compares by object identity *and* holds a strong reference.
    Keying by ``id(step)`` instead would go stale: once the step is
    garbage-collected, CPython happily hands the same address to a new
    same-signature template, and a cache still holding the old key would
    serve the dead step's legality report for the new one.
    """
    try:
        spec = step.to_spec()
    except NotImplementedError:
        return (type(step).__name__, step.n, step.signature(), step)
    return (type(step).__name__, step.n, spec, getattr(step, "names", None))


class LegalityCache:
    """Memoizes :meth:`Transformation.legality` across a search session.

    Use one instance per (nest, dependence set) workload — typically one
    per :func:`~repro.optimize.search.search` call.  Sharing an instance
    across nests and dependence sets is safe (keys include both); it
    just grows the tables.

    Long-lived sharing — the transformation service keeps *one* cache
    warm across every request it ever serves — needs bounded memory:
    pass ``max_entries`` to turn on LRU eviction.  The bound applies to
    each memo table (verdicts, dependence maps, bounds prefixes, and
    the object-identity shortcut tables, which pin their key objects),
    so total retained state is ``O(max_entries)`` entries per table.
    The content-interning tables cannot be evicted piecemeal (their
    small-int ids are embedded in other tables' keys), so when they
    alone outgrow ``8 * max_entries`` distinct contents the cache takes
    a generation flush: every table is dropped at once — counted in
    ``stats["flushes"]`` — and the cache rebuilds warm state from the
    traffic that follows.  Eviction only ever forces recomputation,
    never a wrong answer; the bounded-cap property tests re-verify
    report identity under a tiny cap.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive int or None, "
                f"got {max_entries!r}")
        self.max_entries = max_entries
        self.evictions = 0
        self.flushes = 0
        # When a list, the memoized test appends a content-keyed record
        # of every entry it creates (see legality_with_delta).
        self._delta_log: Optional[List[Tuple]] = None
        # content-key -> small int, so hot paths hash ints not trees
        self._step_ids: Dict[Tuple, int] = {}
        self._deps_ids: Dict[Tuple, int] = {}
        self._nest_ids: Dict[LoopNest, int] = {}
        # Object-identity shortcuts over the content keys: the search
        # loop passes the same template/nest/DepSet objects thousands of
        # times, so compute each deep content key once per object and
        # pin the object (the strong reference keeps its id() valid).
        self._step_by_obj: Dict[int, Tuple[Template, int]] = {}
        self._nest_by_obj: Dict[int, Tuple[LoopNest, int]] = {}
        self._deps_by_obj: Dict[int, Tuple[DepSet, int]] = {}
        # (id(transformation), id(nest), id(deps)) -> (pins, report):
        # repeat queries with the very same objects skip keying entirely.
        self._verdict_by_obj: Dict[Tuple[int, int, int],
                                   Tuple[Tuple, LegalityReport]] = {}
        # (deps_id, step_id) -> (mapped DepSet, its deps_id)
        self._map_cache: Dict[Tuple[int, int], Tuple[DepSet, int]] = {}
        # (nest_id, step_id prefix) -> ("ok", loops, frozen taken)
        #                            | ("pre"|"cg", step index, exception)
        self._bounds_cache: Dict[Tuple[int, Tuple[int, ...]], Tuple] = {}
        # (nest_id, deps_id, step ids) -> LegalityReport
        self._verdicts: Dict[Tuple[int, int, Tuple[int, ...]],
                             LegalityReport] = {}
        # (nest_id, deps_id, step ids) -> dependence-half-only report
        # (the speculative search tier; see dep_legality).
        self._dep_verdicts: Dict[Tuple[int, int, Tuple[int, ...]],
                                 LegalityReport] = {}
        self.hits = 0
        self.misses = 0
        self.dep_hits = 0
        self.dep_misses = 0
        self.dep_map_evals = 0
        self.bounds_step_evals = 0

    # -- interning ---------------------------------------------------------

    def _intern_step(self, step: Template) -> int:
        pinned = self._step_by_obj.get(id(step))
        if pinned is not None:
            return pinned[1]
        key = template_key(step)
        sid = self._step_ids.get(key)
        if sid is None:
            sid = len(self._step_ids)
            self._step_ids[key] = sid
        self._step_by_obj[id(step)] = (step, sid)
        self._bound(self._step_by_obj)
        return sid

    def _intern_deps(self, deps: DepSet) -> int:
        pinned = self._deps_by_obj.get(id(deps))
        if pinned is not None:
            return pinned[1]
        key = depset_key(deps)
        did = self._deps_ids.get(key)
        if did is None:
            did = len(self._deps_ids)
            self._deps_ids[key] = did
        self._deps_by_obj[id(deps)] = (deps, did)
        self._bound(self._deps_by_obj)
        return did

    def _intern_nest(self, nest: LoopNest) -> int:
        pinned = self._nest_by_obj.get(id(nest))
        if pinned is not None:
            return pinned[1]
        nid = self._nest_ids.get(nest)
        if nid is None:
            nid = len(self._nest_ids)
            self._nest_ids[nest] = nid
        self._nest_by_obj[id(nest)] = (nest, nid)
        self._bound(self._nest_by_obj)
        return nid

    # -- bounded-memory LRU ------------------------------------------------
    #
    # Tables are plain dicts in insertion order; with a cap set, a hit
    # re-inserts its entry (LRU touch) and every insert evicts from the
    # front until the table fits.  With no cap (the default) both hooks
    # are a single attribute check, so search workloads pay nothing.

    def _touch(self, table: Dict, key) -> None:
        if self.max_entries is not None:
            table[key] = table.pop(key)

    def _bound(self, table: Dict) -> None:
        cap = self.max_entries
        if cap is None:
            return
        while len(table) > cap:
            del table[next(iter(table))]
            self.evictions += 1

    def _maybe_flush(self) -> None:
        """Generation flush when the un-evictable interning tables have
        outgrown the cap (see the class docstring)."""
        cap = self.max_entries
        if cap is None:
            return
        interned = (len(self._step_ids) + len(self._deps_ids) +
                    len(self._nest_ids))
        if interned > 8 * cap:
            self._drop_tables()
            self.flushes += 1

    def _drop_tables(self) -> None:
        for table in (self._step_ids, self._deps_ids, self._nest_ids,
                      self._step_by_obj, self._nest_by_obj,
                      self._deps_by_obj, self._verdict_by_obj,
                      self._map_cache, self._bounds_cache, self._verdicts,
                      self._dep_verdicts):
            table.clear()

    def entry_count(self) -> int:
        """Entries across the three content-keyed memo tables (the size
        ``max_entries`` bounds per table)."""
        return (len(self._verdicts) + len(self._map_cache) +
                len(self._bounds_cache))

    def sizes(self) -> Dict[str, int]:
        """Per-table entry counts, for service stats and debugging."""
        return {
            "verdicts": len(self._verdicts),
            "dep_verdicts": len(self._dep_verdicts),
            "map_cache": len(self._map_cache),
            "bounds_cache": len(self._bounds_cache),
            "verdict_by_obj": len(self._verdict_by_obj),
            "interned_steps": len(self._step_ids),
            "interned_deps": len(self._deps_ids),
            "interned_nests": len(self._nest_ids),
        }

    # -- the memoized test -------------------------------------------------

    def legality(self, transformation: Transformation, nest: LoopNest,
                 deps: DepSet) -> LegalityReport:
        """Drop-in for ``transformation.legality(nest, deps)``."""
        _chaos.inject("legality")
        self._maybe_flush()
        okey = (id(transformation), id(nest), id(deps))
        pinned = self._verdict_by_obj.get(okey)
        if pinned is not None:
            self.hits += 1
            self._touch(self._verdict_by_obj, okey)
            return pinned[1]
        if nest.depth != transformation.input_depth:
            report = LegalityReport(
                False, f"nest has {nest.depth} loops, transformation "
                       f"expects {transformation.input_depth}")
            self._verdict_by_obj[okey] = ((transformation, nest, deps),
                                          report)
            self._bound(self._verdict_by_obj)
            return report
        steps = transformation.steps
        step_ids = tuple(self._intern_step(s) for s in steps)
        deps_id = self._intern_deps(deps)
        nest_id = self._intern_nest(nest)
        vkey = (nest_id, deps_id, step_ids)
        report = self._verdicts.get(vkey)
        if report is not None:
            self.hits += 1
            self._touch(self._verdicts, vkey)
        else:
            self.misses += 1
            report = self._compute(steps, step_ids, nest, nest_id,
                                   deps, deps_id)
            self._verdicts[vkey] = report
            self._bound(self._verdicts)
        self._verdict_by_obj[okey] = ((transformation, nest, deps), report)
        self._bound(self._verdict_by_obj)
        return report

    def _compute(self, steps: Sequence[Template], step_ids: Tuple[int, ...],
                 nest: LoopNest, nest_id: int,
                 deps: DepSet, deps_id: int) -> LegalityReport:
        # Spans only on the miss path: verdict-cache hits in `legality`
        # stay span-free so the memoized fast path pays nothing.
        # (a) dependence vector test, mapped one memoized step at a time.
        with _obs.span("legality.map_deps", steps=len(steps)):
            final = self._map_deps(steps, step_ids, deps, deps_id,
                                   nest, nest_id)
        if final.can_be_lex_negative():
            bad = [str(v) for v in final if v.can_be_lex_negative()]
            return LegalityReport(
                False,
                "transformed dependence set admits a lexicographically "
                f"negative tuple: {', '.join(bad)}",
                final_deps=final)
        # (b) loop bounds test over the longest novel suffix.
        with _obs.span("legality.bounds", steps=len(steps)):
            state = self._bounds(steps, step_ids, nest, nest_id)
        if state[0] == "pre":
            _, idx, exc = state
            return LegalityReport(False, str(exc), failed_step=idx,
                                  final_deps=final, violation=exc)
        if state[0] == "cg":
            _, idx, exc = state
            return LegalityReport(
                False, f"{steps[idx].signature()}: {exc}", failed_step=idx,
                final_deps=final)
        return LegalityReport(True, final_deps=final)

    def _map_deps(self, steps: Sequence[Template], step_ids: Tuple[int, ...],
                  deps: DepSet, deps_id: int,
                  nest: LoopNest, nest_id: int) -> DepSet:
        current, current_id = deps, deps_id
        # Context-sensitive steps (Block, Interleave) need the loop
        # headers they receive to widen anchored decompositions; fold
        # them through the memoized per-prefix bounds cache, exactly as
        # Transformation._dep_contexts folds them directly.
        sensitive = any(s.dep_context_sensitive for s in steps)
        loops: Optional[Tuple[Loop, ...]] = nest.loops if sensitive else None
        for idx, (step, sid) in enumerate(zip(steps, step_ids)):
            ctx = None
            if loops is not None and step.dep_context_sensitive:
                ctx = step.dep_context(loops)
            mkey = ((current_id, sid) if ctx is None
                    else (current_id, sid, ctx))
            hit = self._map_cache.get(mkey)
            if hit is not None:
                self._touch(self._map_cache, mkey)
            else:
                self.dep_map_evals += 1
                mapped = step.map_dep_set(current, ctx)
                key = depset_key(mapped)
                mapped_id = self._deps_ids.get(key)
                if mapped_id is None:
                    mapped_id = len(self._deps_ids)
                    self._deps_ids[key] = mapped_id
                hit = (mapped, mapped_id)
                self._map_cache[mkey] = hit
                self._bound(self._map_cache)
                if self._delta_log is not None:
                    self._delta_log.append(
                        ("map", depset_key(current), template_key(step),
                         ctx, mapped))
            current, current_id = hit
            if loops is not None and idx + 1 < len(steps):
                state = self._bounds(steps[:idx + 1], step_ids[:idx + 1],
                                     nest, nest_id)
                loops = state[1] if state[0] == "ok" else None
        return current

    def _bounds(self, steps: Sequence[Template], step_ids: Tuple[int, ...],
                nest: LoopNest, nest_id: int) -> Tuple:
        n = len(steps)
        start = 0
        loops: Optional[Tuple[Loop, ...]] = None
        taken_frozen: Optional[frozenset] = None
        for k in range(n, 0, -1):
            state = self._bounds_cache.get((nest_id, step_ids[:k]))
            if state is not None:
                self._touch(self._bounds_cache, (nest_id, step_ids[:k]))
                if state[0] != "ok":
                    return state
                _, loops, taken_frozen = state
                start = k
                break
        if loops is None:
            loops = nest.loops
            taken_frozen = frozenset(collect_taken(nest))
        taken = set(taken_frozen)
        for idx in range(start, n):
            step = steps[idx]
            prefix = (nest_id, step_ids[:idx + 1])
            try:
                self.bounds_step_evals += 1
                step.check_preconditions(loops)
                loops, _ = step.map_loops(loops, taken)
            except PreconditionViolation as exc:
                state = ("pre", idx, exc)
                self._bounds_cache[prefix] = state
                self._bound(self._bounds_cache)
                self._log_bounds(steps, idx, state)
                return state
            except CodegenError as exc:
                state = ("cg", idx, exc)
                self._bounds_cache[prefix] = state
                self._bound(self._bounds_cache)
                self._log_bounds(steps, idx, state)
                return state
            taken_frozen = frozenset(taken)
            state = ("ok", loops, taken_frozen)
            self._bounds_cache[prefix] = state
            self._bound(self._bounds_cache)
            self._log_bounds(steps, idx, state)
        return ("ok", loops, taken_frozen)

    def _log_bounds(self, steps: Sequence[Template], idx: int,
                    state: Tuple) -> None:
        if self._delta_log is not None:
            self._delta_log.append(
                ("bounds", tuple(template_key(s) for s in steps[:idx + 1]),
                 state))

    # -- speculative tier: the dependence half alone -----------------------
    #
    # The dependence half of the unified test never needs the *last*
    # step's bounds fold: context-sensitive steps take their loop
    # headers from the prefix before them.  So a dep-only verdict costs
    # one memoized map_dep_set per novel step — the "cheap dep-mapping"
    # the speculative search tier admits candidates on, deferring the
    # FM/bounds half until a candidate reaches the beam frontier.

    def dep_legality(self, transformation: Transformation, nest: LoopNest,
                     deps: DepSet) -> LegalityReport:
        """The dependence half of :meth:`legality` only.

        ``legal=True`` here means *dep-legal*: the transformed
        dependence set admits no lexicographically negative tuple.  The
        bounds half has not run — a dep-legal sequence can still fail
        its preconditions, so speculative callers must re-verify with
        :meth:`legality` before trusting a winner.  A dep-illegal
        verdict is final: the full test would reject with the same
        reason.  Reports carry ``final_deps`` exactly as the full test
        does.
        """
        self._maybe_flush()
        if nest.depth != transformation.input_depth:
            return LegalityReport(
                False, f"nest has {nest.depth} loops, transformation "
                       f"expects {transformation.input_depth}")
        steps = transformation.steps
        step_ids = tuple(self._intern_step(s) for s in steps)
        deps_id = self._intern_deps(deps)
        nest_id = self._intern_nest(nest)
        vkey = (nest_id, deps_id, step_ids)
        report = self._dep_verdicts.get(vkey)
        if report is not None:
            self.dep_hits += 1
            self._touch(self._dep_verdicts, vkey)
            return report
        self.dep_misses += 1
        with _obs.span("legality.map_deps", steps=len(steps)):
            final = self._map_deps(steps, step_ids, deps, deps_id,
                                   nest, nest_id)
        if final.can_be_lex_negative():
            bad = [str(v) for v in final if v.can_be_lex_negative()]
            report = LegalityReport(
                False,
                "transformed dependence set admits a lexicographically "
                f"negative tuple: {', '.join(bad)}",
                final_deps=final)
        else:
            report = LegalityReport(True, final_deps=final)
        self._dep_verdicts[vkey] = report
        self._bound(self._dep_verdicts)
        return report

    def prefix_loops(self, transformation: Transformation,
                     nest: LoopNest) -> Optional[Tuple[Loop, ...]]:
        """Loop headers after folding *transformation*'s bounds mapping
        over *nest*, memoized per prefix — or None when the fold fails
        (every extension of the sequence is then bounds-illegal too).
        The model-guided search uses this to hand pruning rules the
        headers a candidate step would actually receive."""
        steps = transformation.steps
        if not steps:
            return nest.loops
        step_ids = tuple(self._intern_step(s) for s in steps)
        nest_id = self._intern_nest(nest)
        state = self._bounds(steps, step_ids, nest, nest_id)
        return state[1] if state[0] == "ok" else None

    # -- parallel-search delta protocol ------------------------------------
    #
    # A forked worker evaluates candidates on its *copy* of this cache and
    # ships back, per candidate, the content-keyed entries the evaluation
    # created.  The parent replays deltas with merge_delta in serial
    # candidate order; because every key is a content key, entries another
    # candidate already contributed (in this process or another worker's
    # delta) deduplicate exactly where the serial evaluation would have
    # taken a cache hit, so hits/misses/eval counters — and therefore
    # ``SearchResult.cache_stats`` — come out identical to a serial run.

    def legality_with_delta(
            self, transformation: Transformation, nest: LoopNest,
            deps: DepSet) -> Tuple[LegalityReport, List[Tuple]]:
        """Like :meth:`legality`, additionally returning the delta: the
        content-keyed record of every cache entry this call created, plus
        a trailing ``("verdict", ...)`` entry (always present, even when
        the verdict itself was a local hit, so the replaying cache can
        attribute one hit or miss per candidate)."""
        if nest.depth != transformation.input_depth:
            # Mirrors the depth-mismatch early return in `legality`:
            # no stats, no shared-table entries, nothing to replay.
            return self.legality(transformation, nest, deps), []
        log: List[Tuple] = []
        previous = self._delta_log
        self._delta_log = log
        try:
            report = self.legality(transformation, nest, deps)
        finally:
            self._delta_log = previous
        log.append(
            ("verdict",
             tuple(template_key(s) for s in transformation.steps), report))
        return report, log

    def dep_legality_with_delta(
            self, transformation: Transformation, nest: LoopNest,
            deps: DepSet) -> Tuple[LegalityReport, List[Tuple]]:
        """Like :meth:`dep_legality`, with the same delta contract as
        :meth:`legality_with_delta`; the trailing entry is
        ``("dep_verdict", ...)`` so replay attributes it to the
        dep-verdict table and counters."""
        if nest.depth != transformation.input_depth:
            return self.dep_legality(transformation, nest, deps), []
        log: List[Tuple] = []
        previous = self._delta_log
        self._delta_log = log
        try:
            report = self.dep_legality(transformation, nest, deps)
        finally:
            self._delta_log = previous
        log.append(
            ("dep_verdict",
             tuple(template_key(s) for s in transformation.steps), report))
        return report, log

    def merge_delta(self, nest: LoopNest, deps: DepSet,
                    delta: Sequence[Tuple]) -> Optional[LegalityReport]:
        """Replay a worker delta into this cache.

        Returns the canonical :class:`LegalityReport` for the delta's
        verdict entry — the already-cached report when one exists (the
        serial evaluation would have hit it), else the worker's.  Stats
        attribution matches serial evaluation: an existing verdict is a
        hit, a new one a miss, and only *new* map/bounds entries count as
        evaluations.
        """
        nest_id = self._intern_nest(nest)
        deps_id = self._intern_deps(deps)
        report: Optional[LegalityReport] = None
        step_ids = self._step_ids
        for entry in delta:
            kind = entry[0]
            if kind == "map":
                _, src_key, step_key, ctx, mapped = entry
                src_id = self._deps_ids.setdefault(src_key,
                                                   len(self._deps_ids))
                sid = step_ids.setdefault(step_key, len(step_ids))
                mkey = (src_id, sid) if ctx is None else (src_id, sid, ctx)
                if mkey not in self._map_cache:
                    self.dep_map_evals += 1
                    mapped_id = self._deps_ids.setdefault(
                        depset_key(mapped), len(self._deps_ids))
                    self._map_cache[mkey] = (mapped, mapped_id)
                    self._bound(self._map_cache)
            elif kind == "bounds":
                _, prefix_keys, state = entry
                sids = tuple(step_ids.setdefault(k, len(step_ids))
                             for k in prefix_keys)
                bkey = (nest_id, sids)
                if bkey not in self._bounds_cache:
                    self.bounds_step_evals += 1
                    self._bounds_cache[bkey] = state
                    self._bound(self._bounds_cache)
            elif kind == "verdict":
                _, step_keys, worker_report = entry
                sids = tuple(step_ids.setdefault(k, len(step_ids))
                             for k in step_keys)
                vkey = (nest_id, deps_id, sids)
                cached = self._verdicts.get(vkey)
                if cached is not None:
                    self.hits += 1
                    report = cached
                else:
                    self.misses += 1
                    self._verdicts[vkey] = worker_report
                    self._bound(self._verdicts)
                    report = worker_report
            elif kind == "dep_verdict":
                _, step_keys, worker_report = entry
                sids = tuple(step_ids.setdefault(k, len(step_ids))
                             for k in step_keys)
                vkey = (nest_id, deps_id, sids)
                cached = self._dep_verdicts.get(vkey)
                if cached is not None:
                    self.dep_hits += 1
                    report = cached
                else:
                    self.dep_misses += 1
                    self._dep_verdicts[vkey] = worker_report
                    self._bound(self._dep_verdicts)
                    report = worker_report
            else:
                raise ValueError(f"unknown delta entry kind: {kind!r}")
        return report

    # -- bookkeeping -------------------------------------------------------

    def __getstate__(self):
        """Checkpoint support (:meth:`repro.service.state.WarmState.
        checkpoint`): the content-keyed tables are the warm state worth
        persisting; the object-identity shortcut tables key by ``id()``,
        which is meaningless in another process, and the delta log is
        per-call scratch — all are rebuilt lazily from traffic."""
        state = self.__dict__.copy()
        state["_delta_log"] = None
        state["_step_by_obj"] = {}
        state["_nest_by_obj"] = {}
        state["_deps_by_obj"] = {}
        state["_verdict_by_obj"] = {}
        return state

    @property
    def stats(self) -> Dict[str, int]:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "dep_map_evals": self.dep_map_evals,
            "bounds_step_evals": self.bounds_step_evals,
            "verdicts": len(self._verdicts),
        }
        # Dep-only keys appear only once the speculative tier has been
        # used, so brute workloads keep the historical dict shape.
        if self.dep_hits or self.dep_misses:
            out["dep_hits"] = self.dep_hits
            out["dep_misses"] = self.dep_misses
            out["dep_verdicts"] = len(self._dep_verdicts)
        # The eviction keys appear only in bounded mode, so unbounded
        # callers (every search workload) see the historical dict shape.
        if self.max_entries is not None:
            out["max_entries"] = self.max_entries
            out["entries"] = self.entry_count()
            out["evictions"] = self.evictions
            out["flushes"] = self.flushes
        return out

    def clear(self) -> None:
        self._drop_tables()
        self.hits = self.misses = 0
        self.dep_hits = self.dep_misses = 0
        self.dep_map_evals = self.bounds_step_evals = 0
        self.evictions = self.flushes = 0
