"""Symbolic Fourier–Motzkin elimination for unimodular code generation.

The Unimodular template's loop-bounds mapping ("studied in detail in
[Irigoin 88; Wolf & Lam 91]") is polyhedron scanning: the input bounds
``l_k <= x_k <= u_k`` (affine, steps normalized to 1) form a system
``A x + r >= 0``; substituting ``x = M^-1 y`` gives a system over the new
indices, and eliminating ``y_n, y_{n-1}, ...`` with Fourier–Motzkin
yields, for every ``y_k``, lower bounds ``y_k >= ceil(e / a)`` and upper
bounds ``y_k <= floor(e / a)`` whose ``max``/``min`` become the new loop
bounds — exactly the `max(2, jj-n+1) .. min(n-1, jj-2)` shape of
Figure 1(b).

Constraints carry exact integer coefficients over the index variables
plus a symbolic invariant part (so ``n`` stays symbolic).  Constraints
whose index coefficients are all zero relate invariants only; they are
implied by the emptiness behaviour of the generated ``max``/``min``
bounds and are dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.expr.linear import affine_form
from repro.expr.nodes import (
    Const,
    Expr,
    Max,
    Min,
    add,
    ceildiv,
    floordiv,
    mul,
    neg,
    var,
    vmax,
    vmin,
)
from repro.resilience import guards as _guards
from repro.util.errors import CodegenError
from repro.util.intmath import gcd_many
from repro.util.matrices import IntMatrix

#: Historical default for the safety valve against FM's worst-case
#: blowup; the live cap is ``guards.limits().max_fme_constraints``
#: (same default, REPRO_MAX_FME_CONSTRAINTS-overridable).
MAX_CONSTRAINTS = 2000


class Constraint:
    """``sum(coeffs[m] * v_m) + rest >= 0`` with integer coefficients."""

    __slots__ = ("coeffs", "rest")

    def __init__(self, coeffs: Sequence[int], rest: Expr):
        self.coeffs = tuple(int(c) for c in coeffs)
        self.rest = rest

    def normalized(self) -> "Constraint":
        """Divide through by the gcd when the invariant part is constant
        (tightening the constant with floor is sound for ``>= 0``)."""
        if not isinstance(self.rest, Const):
            return self
        g = gcd_many(list(self.coeffs))
        if g <= 1:
            return self
        new_rest = Const(self.rest.value // g)  # floor tightens >= 0
        return Constraint([c // g for c in self.coeffs], new_rest)

    def key(self) -> Tuple:
        return (self.coeffs, self.rest)

    def is_trivial(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def __repr__(self):
        parts = [f"{c}*v{m}" for m, c in enumerate(self.coeffs) if c != 0]
        parts.append(str(self.rest))
        return "Constraint(" + " + ".join(parts) + " >= 0)"


def constraint_from_bound(expr: Expr, names: Sequence[str],
                          own_index: int, is_lower: bool) -> List[Constraint]:
    """Constraints for ``x_k >= expr`` (lower) or ``x_k <= expr`` (upper).

    A ``max`` lower bound / ``min`` upper bound contributes one constraint
    per term.
    """
    if is_lower and isinstance(expr, Max):
        terms = expr.args
    elif not is_lower and isinstance(expr, Min):
        terms = expr.args
    else:
        terms = (expr,)
    out = []
    for term in terms:
        form = affine_form(term, names)
        if form is None:
            raise CodegenError(
                f"bound {term} is not affine in {list(names)}; "
                "unimodular codegen requires linear bounds")
        coeffs = [form.coefficient(nm) for nm in names]
        if is_lower:
            # x_k - term >= 0
            coeffs = [-c for c in coeffs]
            coeffs[own_index] += 1
            rest = neg(form.rest)
        else:
            # term - x_k >= 0
            coeffs = list(coeffs)
            coeffs[own_index] -= 1
            rest = form.rest
        out.append(Constraint(coeffs, rest).normalized())
    return out


def transform_constraints(constraints: Sequence[Constraint],
                          m_inverse: IntMatrix) -> List[Constraint]:
    """Rewrite constraints over ``x`` into constraints over ``y = M x``
    using ``x = M^-1 y`` — coefficient rows multiply by ``M^-1``."""
    out = []
    n = m_inverse.nrows
    for c in constraints:
        if len(c.coeffs) != n:
            raise ValueError("constraint arity mismatch")
        new = [sum(c.coeffs[k] * m_inverse[k, j] for k in range(n))
               for j in range(n)]
        out.append(Constraint(new, c.rest).normalized())
    return out


def _dedupe_and_prune(constraints: List[Constraint]) -> List[Constraint]:
    """Drop duplicates and constraints dominated by a same-coefficients
    constraint with a provably smaller invariant part."""
    by_coeffs: Dict[Tuple[int, ...], List[Constraint]] = {}
    order: List[Tuple[int, ...]] = []
    for c in constraints:
        if c.coeffs not in by_coeffs:
            by_coeffs[c.coeffs] = []
            order.append(c.coeffs)
        bucket = by_coeffs[c.coeffs]
        replaced = False
        for idx, other in enumerate(bucket):
            diff = add(c.rest, neg(other.rest))
            if isinstance(diff, Const):
                # Same coefficients; smaller rest is tighter for ">= 0".
                if diff.value < 0:
                    bucket[idx] = c
                replaced = True
                break
        if not replaced:
            bucket.append(c)
    out = []
    for key in order:
        out.extend(by_coeffs[key])
    return out


def _bound_exprs(constraints: Sequence[Constraint], level: int,
                 names: Sequence[str]) -> Tuple[List[Expr], List[Expr]]:
    """Lower/upper bound expressions for variable *level* (0-based) from
    the constraints that mention it."""
    lowers, uppers = [], []
    for c in constraints:
        a = c.coeffs[level]
        if a == 0:
            continue
        inner_terms = [mul(Const(c.coeffs[m]), var(names[m]))
                       for m in range(level) if c.coeffs[m] != 0]
        inner = add(*(inner_terms + [c.rest])) if inner_terms else c.rest
        if a > 0:
            lowers.append(ceildiv(neg(inner), Const(a)))
        else:
            uppers.append(floordiv(inner, Const(-a)))
    return lowers, uppers


def _eliminate(constraints: Sequence[Constraint],
               level: int) -> List[Constraint]:
    """Project out variable *level* (Fourier–Motzkin step)."""
    kept, pos, neg_ = [], [], []
    for c in constraints:
        a = c.coeffs[level]
        if a == 0:
            kept.append(c)
        elif a > 0:
            pos.append(c)
        else:
            neg_.append(c)
    for p in pos:
        a = p.coeffs[level]
        for q in neg_:
            b = -q.coeffs[level]
            coeffs = [b * cp + a * cq for cp, cq in zip(p.coeffs, q.coeffs)]
            assert coeffs[level] == 0
            rest = add(mul(Const(b), p.rest), mul(Const(a), q.rest))
            combined = Constraint(coeffs, rest).normalized()
            if not combined.is_trivial():
                kept.append(combined)
    kept = _dedupe_and_prune(kept)
    cap = _guards.limits().max_fme_constraints
    if len(kept) > cap:
        raise CodegenError(
            f"Fourier-Motzkin blowup: {len(kept)} constraints at level "
            f"{level} (limit {cap}, REPRO_MAX_FME_CONSTRAINTS); the "
            f"transformed polyhedron is too complex")
    return kept


def _rest_to_coeffs(rest: Expr, symtab: Dict[Expr, str]):
    """Model a constraint's invariant part for the rational feasibility
    checker: affine over invariant symbols when possible, otherwise a
    single opaque symbol per distinct expression (sound relaxation)."""
    from fractions import Fraction

    from repro.expr.linear import affine_form
    from repro.expr.nodes import Const, free_vars

    form = affine_form(rest, sorted(free_vars(rest)))
    if form is not None and isinstance(form.rest, Const):
        coeffs = {f"inv${v}": Fraction(c) for v, c in form.coeffs.items()}
        return coeffs, Fraction(form.rest.value)
    key = symtab.setdefault(rest, f"opq${len(symtab)}")
    return {key: Fraction(1)}, Fraction(0)


def remove_redundant(constraints: List[Constraint]) -> List[Constraint]:
    """Drop constraints implied by the rest of the system.

    Exact over the rationals: *c* is redundant iff the system with *c*
    replaced by its strict negation (``-(lhs) - 1 >= 0`` over integers)
    is infeasible.  Symbolic invariants are modeled as free variables, a
    sound relaxation (it can only miss redundancies, never create them).
    """
    from fractions import Fraction

    from repro.deps.analysis.linear_system import LinearSystem

    if len(constraints) > 60:
        return constraints
    symtab: Dict[Expr, str] = {}

    def lin(c: Constraint, negate: bool):
        coeffs, const = _rest_to_coeffs(c.rest, symtab)
        out = dict(coeffs)
        for m, a in enumerate(c.coeffs):
            if a != 0:
                out[f"y${m}"] = out.get(f"y${m}", Fraction(0)) + a
        if negate:
            out = {v: -x for v, x in out.items()}
            const = -const - 1
        return out, const

    kept = list(constraints)
    changed = True
    while changed:
        changed = False
        for idx in range(len(kept) - 1, -1, -1):
            candidate = kept[idx]
            system = LinearSystem()
            for pos, other in enumerate(kept):
                if pos == idx:
                    continue
                coeffs, const = lin(other, negate=False)
                system.add_ge(coeffs, const)
            coeffs, const = lin(candidate, negate=True)
            system.add_ge(coeffs, const)
            if not system.is_feasible():
                kept.pop(idx)
                changed = True
    return kept


def scan_bounds(constraints: Sequence[Constraint],
                names: Sequence[str],
                prune_redundant: bool = True) -> List[Tuple[Expr, Expr]]:
    """Compute ``(lower, upper)`` bound expressions for every variable.

    *names* lists the output index variables outermost first; the bound
    of variable *k* may reference variables ``0..k-1``.
    ``prune_redundant`` removes implied constraints before each level's
    bound extraction (so Figure 4(b) reads ``ii <= jj``, not
    ``min(jj, n)``).
    """
    n = len(names)
    bounds: List[Optional[Tuple[Expr, Expr]]] = [None] * n
    # Variable-free input constraints: a constant falsehood makes the
    # whole polyhedron empty (emit a statically empty nest); a constant
    # truth is dropped; a symbolic one cannot be attached to any loop
    # bound and is rejected.  (FM-*generated* variable-free constraints
    # are different — their emptiness is reflected in some variable's
    # max-lower/min-upper pair — and are dropped inside _eliminate.)
    kept_input = []
    for c in constraints:
        if not c.is_trivial():
            kept_input.append(c)
            continue
        if isinstance(c.rest, Const):
            if c.rest.value < 0:
                empty = [(Const(0), Const(-1))] + \
                    [(Const(0), Const(0))] * (n - 1)
                return empty[:n]
            continue
        raise CodegenError(
            f"variable-free symbolic constraint {c.rest} >= 0 cannot be "
            "expressed as a loop bound")
    current = _dedupe_and_prune(kept_input)
    for level in range(n - 1, -1, -1):
        if prune_redundant:
            current = remove_redundant(current)
        lowers, uppers = _bound_exprs(current, level, names)
        if not lowers or not uppers:
            raise CodegenError(
                f"variable {names[level]} is unbounded "
                f"{'below' if not lowers else 'above'}; the input nest's "
                "bounds do not define a scannable polyhedron")
        bounds[level] = (vmax(*lowers), vmin(*uppers))
        current = _eliminate(current, level)
    return bounds  # type: ignore[return-value]
