"""The ReversePermute kernel template.

``ReversePermute(n, rev, perm)``: ``rev[k] = True`` means loop *k* is
reversed; ``perm`` is a permutation map indicating that loop *k* moves to
position ``perm[k]`` *after* all reversals have been done (Table 1).

The template partially overlaps with Unimodular but is preferable when
both apply (Section 4.2): (a) step expressions are not normalized to +1
— strides may even be unknown at compile time, (b) index variable names
are reused so no initialization statements are created, and (c) no matrix
computations are performed on dependence vectors.

Dependence rule (Table 2)::

    d'_{perm[k]} = reverse(d_k)  if rev[k]  else  d_k

Bounds precondition (Table 3): for every pair ``i < j`` whose relative
order changes (``perm[i] > perm[j]``), loop *j*'s lower/upper/step must be
invariant in ``x_i``.

Bounds mapping (Table 3): the loop at output position ``perm[k]`` is loop
*k*; when reversed, its header becomes ``u_r, l_k, -s_k`` with::

    u_r = u_k - sgn(s_k) * mod(abs(u_k - l_k), abs(s_k))

(the last iterate of the forward loop), so the reversed loop visits the
exact same index values backwards even for non-unit, non-dividing steps.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.template import Template, TransformedLoops
from repro.deps.rules import reverse
from repro.deps.vector import DepVector
from repro.expr.linear import BoundType
from repro.expr.nodes import Const, abs_, mod, mul, sgn, sub
from repro.ir.loopnest import Loop
from repro.util.errors import PreconditionViolation


class ReversePermute(Template):
    """Instantiation of the ReversePermute template."""

    kernel_name = "ReversePermute"

    def __init__(self, n: int, rev: Sequence[bool], perm: Sequence[int]):
        """*rev* has ``n`` booleans; *perm* is 1-based: loop ``k`` (1-based)
        moves to position ``perm[k-1]``."""
        super().__init__(n)
        self.rev = tuple(bool(r) for r in rev)
        self.perm = tuple(int(p) for p in perm)
        if len(self.rev) != n:
            raise ValueError(f"rev must have {n} entries, got {len(self.rev)}")
        if sorted(self.perm) != list(range(1, n + 1)):
            raise ValueError(
                f"perm must be a permutation of 1..{n}, got {self.perm}")

    def params(self) -> str:
        rev = "[" + " ".join("T" if r else "F" for r in self.rev) + "]"
        perm = "[" + " ".join(str(p) for p in self.perm) + "]"
        return f"n={self.n}, rev={rev}, perm={perm}"

    def to_spec(self) -> str:
        """CLI step-language rendering (parse_steps round-trips it)."""
        rev = "[" + ",".join("1" if r else "0" for r in self.rev) + "]"
        perm = "[" + ",".join(str(p) for p in self.perm) + "]"
        return f"revpermute({rev}, {perm})"

    # -- dependence vectors -------------------------------------------------

    def map_dep_vector(self, vec: DepVector) -> List[DepVector]:
        out = [None] * self.n
        for k in range(self.n):
            entry = vec[k]
            if self.rev[k]:
                entry = reverse(entry)
            out[self.perm[k] - 1] = entry
        return [DepVector(out)]

    # -- loop bounds ------------------------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        self._require_depth(loops)
        bm = self._bounds_matrix(loops)
        for i in range(1, self.n + 1):
            for j in range(i + 1, self.n + 1):
                if self.perm[i - 1] <= self.perm[j - 1]:
                    continue  # relative order preserved; no requirement
                for which, tag in (("LB", "lower"), ("UB", "upper"),
                                   ("STEP", "step")):
                    t = bm.type_of(which, j, i)
                    if not t.leq(BoundType.INVAR):
                        raise PreconditionViolation(
                            self.signature(),
                            f"{tag} bound of loop {loops[j - 1].index} must "
                            f"be invariant in {loops[i - 1].index} to move "
                            f"it past (type is {t})",
                            loop=j, var=loops[i - 1].index,
                            required=BoundType.INVAR, actual=t)

    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        self._require_depth(loops)
        out: List[Loop] = [None] * self.n
        for k in range(self.n):
            lp = loops[k]
            if self.rev[k]:
                lp = _reverse_loop(lp)
            out[self.perm[k] - 1] = lp
        return TransformedLoops(tuple(out), ())


def _reverse_loop(lp: Loop) -> Loop:
    """Reverse one loop's traversal, visiting the same index values."""
    l, u, s = lp.lower, lp.upper, lp.step
    if isinstance(s, Const):
        # Constant step: fold sgn/abs at construction time.
        sv = s.value
        span = sub(u, l) if sv > 0 else sub(l, u)
        u_r = sub(u, mul(Const(1 if sv > 0 else -1),
                         mod(abs_(span) if not _nonneg(span) else span,
                             Const(abs(sv)))))
        return Loop(lp.index, u_r, l, Const(-sv), lp.kind)
    u_r = sub(u, mul(sgn(s), mod(abs_(sub(u, l)), abs_(s))))
    return Loop(lp.index, u_r, l, mul(Const(-1), s), lp.kind)


def _nonneg(e) -> bool:
    return isinstance(e, Const) and e.value >= 0


def interchange(n: int, a: int, b: int) -> ReversePermute:
    """Convenience: swap loops *a* and *b* (1-based)."""
    perm = list(range(1, n + 1))
    perm[a - 1], perm[b - 1] = perm[b - 1], perm[a - 1]
    return ReversePermute(n, [False] * n, perm)


def reversal(n: int, which: Sequence[int]) -> ReversePermute:
    """Convenience: reverse the listed loops (1-based), keep the order."""
    rev = [False] * n
    for k in which:
        rev[k - 1] = True
    return ReversePermute(n, rev, list(range(1, n + 1)))
