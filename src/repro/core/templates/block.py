"""The Block (tiling) kernel template.

``Block(n, i, j, bsize)`` tiles the contiguous loops ``i..j``: for each
loop *k* in the range a *block loop* (index ``x'_k``, stepping
``s_k * bsize[k]``) iterates between tiles, and an *element loop* (the
original index ``x_k``, original step, bounds clamped to the tile)
iterates inside the tile.  Output loop order::

    1 .. i-1,  x'_i .. x'_j,  x_i .. x_j,  j+1 .. n

Blocking is strip-mining plus interchange [Wolfe]; it cannot be a matrix
transformation because one dependence vector maps to up to
``2^(j-i+1)`` vectors (Table 2)::

    blockmap(0)      = {(0, 0)}
    blockmap(*)      = {(*, *)}
    blockmap(+-1)    = {(0, d), (d, *)}
    blockmap(other)  = {(0, d), (dir(d), *)}

Bounds mapping (Table 4): the block loop bounds substitute each inner
range variable ``x_h`` (``i <= h < k``) in ``l_k``/``u_k`` by the tile
endpoint that extremizes the bound — ``x'_h`` or
``x'_h + s_h*(bsize[h]-1)`` depending on the sign of the coefficient and
of ``s_h`` — *per max/min term*, so that (for monotone bounds) only tiles
containing work are visited.  This is the paper's improvement over the
rectangular bounding box of Wolf & Lam, which can create many empty
tiles; the ablation bench ``bench_table4_block`` counts the difference.

Element loop bounds (for ``s_k > 0``)::

    max(x'_k, l_k)  <=  x_k  <=  min(x'_k + s_k*(bsize[k]-1), u_k)

(with max/min swapped for ``s_k < 0``).  Element loops reuse the original
index names, so Block emits no initialization statements.

Preconditions (Table 4): for ``i <= k < m <= j`` the bounds of loop *m*
must be at most linear in ``x_k`` and steps in the range must be
compile-time constants (we require this of every loop in the range, a
slight strengthening documented in DESIGN.md — the endpoint choice needs
every ``sgn(s_k)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.bounds_matrix import BoundsMatrix
from repro.core.template import (
    Template,
    TransformedLoops,
    anchor_dep_context,
    check_contiguous_range,
    fresh_name,
)
from repro.deps.entry import D_ANY, DepEntry
from repro.deps.rules import blockmap, blockmap_precise
from repro.deps.vector import DepSet, DepVector
from repro.expr.linear import BoundType, affine_form
from repro.expr.nodes import (
    Const,
    Expr,
    Max,
    Min,
    add,
    mul,
    substitute,
    var,
    vmax,
    vmin,
)
from repro.expr.parser import parse_expr
from repro.ir.loopnest import InitStmt, Loop
from repro.util.errors import PreconditionViolation

SizeLike = Union[int, str, Expr]


def _coerce_size(s: SizeLike) -> Expr:
    if isinstance(s, Expr):
        return s
    if isinstance(s, int) and not isinstance(s, bool):
        if s < 1:
            raise ValueError(f"block size must be >= 1, got {s}")
        return Const(s)
    if isinstance(s, str):
        return parse_expr(s)
    raise TypeError(f"cannot use {s!r} as a block size")


class Block(Template):
    """Instantiation of the Block (tiling) template."""

    kernel_name = "Block"

    def __init__(self, n: int, i: int, j: int, bsize: Sequence[SizeLike],
                 precise: bool = False):
        """*bsize* gives the block size of each loop in ``i..j`` (length
        ``j - i + 1``), as ints, expression strings or Exprs.

        ``precise=True`` enables the exact dependence mapping for constant
        distances and constant block sizes (DESIGN.md ablation 2).
        """
        super().__init__(n)
        check_contiguous_range("Block", n, i, j)
        self.i = i
        self.j = j
        self.bsize = tuple(_coerce_size(s) for s in bsize)
        if len(self.bsize) != j - i + 1:
            raise ValueError(
                f"bsize must have {j - i + 1} entries for loops {i}..{j}, "
                f"got {len(self.bsize)}")
        self.precise = bool(precise)

    @property
    def output_depth(self) -> int:
        return self.n + (self.j - self.i + 1)

    def params(self) -> str:
        sizes = "[" + " ".join(str(b) for b in self.bsize) + "]"
        return f"n={self.n}, i={self.i}, j={self.j}, bsize={sizes}"

    def to_spec(self) -> str:
        """CLI step-language rendering (parse_steps round-trips it)."""
        sizes = ", ".join(str(b) for b in self.bsize)
        suffix = ", precise" if self.precise else ""
        return f"block({self.i}, {self.j}, {sizes}{suffix})"

    def _bsize_of(self, k: int) -> Expr:
        """Block size of 1-based loop *k* in the range."""
        return self.bsize[k - self.i]

    # -- dependence vectors -----------------------------------------------------

    #: Tile origins are anchored at (the substituted) ``l_k``; when that
    #: anchor varies with another loop the rule needs widening — see
    #: ``anchor_dep_context`` and DESIGN.md soundness tightening 4.
    dep_context_sensitive = True

    def dep_context(self, loops: Sequence[Loop]):
        return anchor_dep_context(self, loops)

    def map_dep_set(self, deps, ctx=None):
        if ctx is None:
            return super().map_dep_set(deps)
        if deps.is_empty():
            return deps
        if deps.depth != self.n:
            raise ValueError(
                f"{self.signature()}: dependence vectors have "
                f"{deps.depth} entries, expected {self.n}")
        refs_by_k = dict(ctx)
        out: List[DepVector] = []
        for vec in deps:
            # Out-of-range anchor references compare original loop
            # values: the anchor agrees only when the referenced
            # distance is exactly zero, decided once per vector.  An
            # in-range reference h was substituted by h's *tile
            # endpoint* (Table 4), so the anchor agrees exactly when
            # the combo's block entry for h is zero — decided per combo
            # in _map_vec_refined.
            widen = frozenset(
                k for k, hs in refs_by_k.items()
                if not all(vec.entry(h).is_zero()
                           for h in hs if h < self.i or h > self.j))
            in_refs = {k: tuple(h for h in hs if self.i <= h <= self.j)
                       for k, hs in refs_by_k.items()}
            out.extend(self._map_vec_refined(vec, widen, in_refs))
        return DepSet(out)

    def _pair_options(self, vec: DepVector,
                      k: int) -> List[Tuple[DepEntry, DepEntry]]:
        entry = vec.entry(k)
        size = self._bsize_of(k)
        if (self.precise and entry.is_distance and
                isinstance(size, Const)):
            return blockmap_precise(entry, size.value)
        return blockmap(entry)

    def _map_vec_refined(self, vec: DepVector, widen: frozenset,
                         in_refs) -> List[DepVector]:
        """Enumerate (block, element) combos left to right so loop k's
        widening can consult the block entries already chosen for the
        in-range loops its anchor references."""
        rng = list(range(self.i, self.j + 1))
        combos: List[List[Tuple[DepEntry, DepEntry]]] = [[]]
        for pos, k in enumerate(rng):
            nxt: List[List[Tuple[DepEntry, DepEntry]]] = []
            for prefix in combos:
                exact = k not in widen and all(
                    h < k and prefix[h - self.i][0].is_zero()
                    for h in in_refs.get(k, ()))
                options = (self._pair_options(vec, k) if exact
                           else [(D_ANY, D_ANY)])
                for pair in options:
                    nxt.append(prefix + [pair])
            combos = nxt
        out: List[DepVector] = []
        for combo in combos:
            blocks = [p[0] for p in combo]
            elems = [p[1] for p in combo]
            out.append(DepVector(
                list(vec.entries[:self.i - 1]) + blocks + elems +
                list(vec.entries[self.j:])))
        return out

    def map_dep_vector(self, vec: DepVector,
                       widen: frozenset = frozenset()) -> List[DepVector]:
        pair_options: List[List[Tuple[DepEntry, DepEntry]]] = []
        for k in range(self.i, self.j + 1):
            if k in widen:
                # The anchor of loop k differs between the dependence's
                # source and target: both the tile and element relations
                # are unknown.
                pair_options.append([(D_ANY, D_ANY)])
            else:
                pair_options.append(self._pair_options(vec, k))
        out: List[DepVector] = []
        for combo in _product(pair_options):
            blocks = [p[0] for p in combo]
            elems = [p[1] for p in combo]
            out.append(DepVector(
                list(vec.entries[:self.i - 1]) + blocks + elems +
                list(vec.entries[self.j:])))
        return out

    # -- loop bounds -----------------------------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        self._require_depth(loops)
        bm = self._bounds_matrix(loops)
        for k in range(self.i, self.j + 1):
            step = bm.step_value(k)
            if step is None:
                raise PreconditionViolation(
                    self.signature(),
                    f"step of loop {loops[k - 1].index} must be a "
                    f"compile-time constant to block the range",
                    loop=k, required=BoundType.CONST)
            if abs(step) != 1:
                # Alignment soundness: a strided loop's iteration values
                # sit on the lattice {l_k + m*s_k}; if l_k varies with a
                # loop inside the tiled range, that lattice's phase
                # drifts against the fixed tile origins and boundary
                # iterations fall between tiles.  Require invariance.
                for h in range(self.i, k):
                    t = bm.type_of("LB", k, h)
                    if not t.leq(BoundType.INVAR):
                        raise PreconditionViolation(
                            self.signature(),
                            f"lower bound of strided loop "
                            f"{loops[k - 1].index} (step {step}) must be "
                            f"invariant in {loops[h - 1].index} inside the "
                            f"tiled range (type is {t})",
                            loop=k, var=loops[h - 1].index,
                            required=BoundType.INVAR, actual=t)
            for m in range(k + 1, self.j + 1):
                for which, tag, bound in (("LB", "lower", BoundType.LINEAR),
                                          ("UB", "upper", BoundType.LINEAR)):
                    t = bm.type_of(which, m, k)
                    if not t.leq(bound):
                        raise PreconditionViolation(
                            self.signature(),
                            f"{tag} bound of loop {loops[m - 1].index} must "
                            f"be at most linear in {loops[k - 1].index} "
                            f"(type is {t})",
                            loop=m, var=loops[k - 1].index,
                            required=bound, actual=t)

    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        self._require_depth(loops)
        rng = list(range(self.i, self.j + 1))
        steps: Dict[int, int] = {}
        for k in rng:
            step = loops[k - 1].step
            assert isinstance(step, Const), "precondition guarantees const step"
            steps[k] = step.value

        block_names = {k: fresh_name(loops[k - 1].index, taken) for k in rng}
        index_of = {k: loops[k - 1].index for k in rng}

        block_loops: List[Loop] = []
        for k in rng:
            lp = loops[k - 1]
            size = self._bsize_of(k)
            lo = self._tile_bound(lp.lower, "start", k, block_names, steps,
                                  index_of)
            hi = self._tile_bound(lp.upper, "end", k, block_names, steps,
                                  index_of)
            block_loops.append(Loop(block_names[k], lo, hi,
                                    mul(lp.step, size), lp.kind))

        elem_loops: List[Loop] = []
        for k in rng:
            lp = loops[k - 1]
            origin = var(block_names[k])
            far = add(origin, mul(lp.step, add(self._bsize_of(k), Const(-1))))
            if steps[k] > 0:
                lo, hi = vmax(origin, lp.lower), vmin(far, lp.upper)
            else:
                lo, hi = vmin(origin, lp.lower), vmax(far, lp.upper)
            elem_loops.append(Loop(lp.index, lo, hi, lp.step, lp.kind))

        out = (tuple(loops[:self.i - 1]) + tuple(block_loops) +
               tuple(elem_loops) + tuple(loops[self.j:]))
        return TransformedLoops(out, ())

    def _tile_bound(self, expr: Expr, side: str, k: int,
                    block_names: Dict[int, str],
                    steps: Dict[int, int],
                    index_of: Dict[int, str]) -> Expr:
        """Rewrite a bound of loop *k* for its block loop: substitute each
        range variable ``x_h`` (``i <= h < k``) by the tile endpoint that
        extremizes the bound, per max/min term (Table 4's
        ``x_min``/``x_max``)."""
        s_k = steps[k]
        # Which way do we extremize?  The loop *starts* at the lower bound
        # for s>0 (minimize it) and the "lower" slot still holds the start
        # for s<0 (maximize it); dually for the end side.
        minimizing = (side == "start") == (s_k > 0)

        if isinstance(expr, (Max, Min)):
            rebuilt = [self._tile_term(a, minimizing, k, block_names, steps,
                                       index_of)
                       for a in expr.args]
            return (vmax if isinstance(expr, Max) else vmin)(*rebuilt)
        return self._tile_term(expr, minimizing, k, block_names, steps,
                               index_of)

    def _tile_term(self, term: Expr, minimizing: bool, k: int,
                   block_names: Dict[int, str],
                   steps: Dict[int, int],
                   index_of: Dict[int, str]) -> Expr:
        inner = [h for h in range(self.i, k)]
        # Bound expressions mention the *original* element index names.
        names = [index_of[h] for h in inner]
        form = affine_form(term, names)
        assert form is not None, "precondition guarantees linearity"
        mapping: Dict[str, Expr] = {}
        for h, name in zip(inner, names):
            c = form.coefficient(name)
            if c == 0:
                continue
            origin = var(block_names[h])
            far = add(origin,
                      mul(Const(steps[h]),
                          add(self._bsize_of(h), Const(-1))))
            # The tile's minimum x_h value is `origin` when s_h > 0, else
            # `far`; pick the endpoint that extremizes c * x_h as needed.
            if steps[h] > 0:
                tile_min, tile_max = origin, far
            else:
                tile_min, tile_max = far, origin
            want_min_of_term = minimizing
            if (c > 0) == want_min_of_term:
                mapping[name] = tile_min
            else:
                mapping[name] = tile_max
        return substitute(term, mapping) if mapping else term


def _product(options: List[List]) -> List[Tuple]:
    result: List[Tuple] = [()]
    for opts in options:
        result = [prev + (o,) for prev in result for o in opts]
    return result
