"""The Interleave kernel template.

``Interleave(n, i, j, isize)`` is Block's cyclic cousin: the contiguous
loops ``i..j`` are split so that the outer loop iterates between blocks
and the inner loop between a block's elements — but here a "block" is the
set of *non-contiguous* iterations sharing a residue modulo the
interleave factor (Table 1).  Output loop order::

    1 .. i-1,  offset_i .. offset_j,  x_i .. x_j,  j+1 .. n

Bounds mapping (Table 3)::

    offset_k :  0, isize[k] - 1, 1
    x_k      :  l_k + offset_k * s_k,  u_k,  isize[k] * s_k

The element loops reuse the original index names, so no initialization
statements are created.

Dependence rule (Table 2)'s ``imap`` produces (offset, stride) pairs::

    imap(0)   = {(0, 0)}
    imap(*)   = {(*, *)}
    imap(+)   = {(+, 0+), (0-, +)}
    imap(-)   = {(-, 0-), (0+, -)}

(a positive distance either stays within the residue class — offset 0,
strided-loop distance positive — or crosses residue classes in either
direction).  Summary directions take the union of their cases, so like
Block, Interleave can map one vector to up to ``2^(j-i+1)`` vectors.

Preconditions (Table 3): for ``i <= k < m <= j`` the bounds of loop *m*
are at most linear in ``x_k`` and its step is a compile-time constant.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.template import (
    Template,
    TransformedLoops,
    anchor_dep_context,
    check_contiguous_range,
    fresh_name,
    map_anchored_dep_set,
)
from repro.core.templates.block import SizeLike, _coerce_size, _product
from repro.deps.entry import D_ANY, DepEntry
from repro.deps.rules import imap, imap_precise
from repro.deps.vector import DepVector
from repro.expr.linear import BoundType
from repro.expr.nodes import Const, add, mul, var
from repro.ir.loopnest import Loop
from repro.util.errors import PreconditionViolation


class Interleave(Template):
    """Instantiation of the Interleave template."""

    kernel_name = "Interleave"

    def __init__(self, n: int, i: int, j: int, isize: Sequence[SizeLike],
                 precise: bool = False):
        super().__init__(n)
        check_contiguous_range("Interleave", n, i, j)
        self.i = i
        self.j = j
        self.isize = tuple(_coerce_size(s) for s in isize)
        if len(self.isize) != j - i + 1:
            raise ValueError(
                f"isize must have {j - i + 1} entries for loops {i}..{j}, "
                f"got {len(self.isize)}")
        self.precise = bool(precise)

    @property
    def output_depth(self) -> int:
        return self.n + (self.j - self.i + 1)

    def params(self) -> str:
        sizes = "[" + " ".join(str(b) for b in self.isize) + "]"
        return f"n={self.n}, i={self.i}, j={self.j}, isize={sizes}"

    def to_spec(self) -> str:
        """CLI step-language rendering (parse_steps round-trips it)."""
        sizes = ", ".join(str(b) for b in self.isize)
        suffix = ", precise" if self.precise else ""
        return f"interleave({self.i}, {self.j}, {sizes}{suffix})"

    def _isize_of(self, k: int):
        return self.isize[k - self.i]

    # -- dependence vectors ------------------------------------------------------

    #: Residue classes are anchored at ``l_k`` on the lattice
    #: ``{l_k + m*s_k}``; when that anchor varies with another loop the
    #: rule needs widening — see ``anchor_dep_context`` and DESIGN.md
    #: soundness tightening 4.
    dep_context_sensitive = True

    def dep_context(self, loops: Sequence[Loop]):
        return anchor_dep_context(self, loops)

    def map_dep_set(self, deps, ctx=None):
        if ctx is None:
            return super().map_dep_set(deps)
        return map_anchored_dep_set(self, deps, ctx)

    def map_dep_vector(self, vec: DepVector,
                       widen: frozenset = frozenset()) -> List[DepVector]:
        pair_options: List[List[Tuple[DepEntry, DepEntry]]] = []
        for k in range(self.i, self.j + 1):
            entry = vec.entry(k)
            size = self._isize_of(k)
            if k in widen:
                # The anchor of loop k differs between the dependence's
                # source and target: both the residue-class and
                # strided-loop relations are unknown.
                pair_options.append([(D_ANY, D_ANY)])
            elif (self.precise and entry.is_distance and
                    isinstance(size, Const)):
                pair_options.append(imap_precise(entry, size.value))
            else:
                pair_options.append(imap(entry))
        out: List[DepVector] = []
        for combo in _product(pair_options):
            offsets = [p[0] for p in combo]
            strided = [p[1] for p in combo]
            out.append(DepVector(
                list(vec.entries[:self.i - 1]) + offsets + strided +
                list(vec.entries[self.j:])))
        return out

    # -- loop bounds --------------------------------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        self._require_depth(loops)
        bm = self._bounds_matrix(loops)
        for k in range(self.i, self.j):
            for m in range(k + 1, self.j + 1):
                for which, tag, bound in (("LB", "lower", BoundType.LINEAR),
                                          ("UB", "upper", BoundType.LINEAR),
                                          ("STEP", "step", BoundType.CONST)):
                    t = bm.type_of(which, m, k)
                    if not t.leq(bound):
                        raise PreconditionViolation(
                            self.signature(),
                            f"{tag} bound of loop {loops[m - 1].index} must "
                            f"be at most {bound} in {loops[k - 1].index} "
                            f"(type is {t})",
                            loop=m, var=loops[k - 1].index,
                            required=bound, actual=t)

    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        self._require_depth(loops)
        rng = list(range(self.i, self.j + 1))
        offset_names = {k: fresh_name(loops[k - 1].index, taken) for k in rng}

        offset_loops = [
            Loop(offset_names[k], Const(0),
                 add(self._isize_of(k), Const(-1)), Const(1),
                 loops[k - 1].kind)
            for k in rng
        ]
        elem_loops = [
            Loop(lp.index,
                 add(lp.lower, mul(var(offset_names[k]), lp.step)),
                 lp.upper,
                 mul(self._isize_of(k), lp.step),
                 lp.kind)
            for k, lp in ((k, loops[k - 1]) for k in rng)
        ]
        out = (tuple(loops[:self.i - 1]) + tuple(offset_loops) +
               tuple(elem_loops) + tuple(loops[self.j:]))
        return TransformedLoops(out, ())
