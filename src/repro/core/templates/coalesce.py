"""The Coalesce kernel template.

``Coalesce(n, i, j)`` collapses the contiguous loops ``i..j`` into a
single loop [Polychronopoulos & Kuck], e.g. to create one long parallel
loop for guided self-scheduling.  The transformation normalizes the
coalesced loop to ``1 .. N_i * ... * N_j`` step 1, where ``N_k`` is loop
*k*'s trip count.

Dependence rule (Table 2)::

    d' = (d_1, ..., d_{i-1}, mergedirs(dir(d_i), ..., dir(d_j)),
          d_{j+1}, ..., d_n)

``mergedirs`` folds pairwise: the coalesced loop enumerates the
sub-iteration space lexicographically, so the merged sign is the outer
entry's nonzero signs, plus the merge of the rest when the outer entry
can be zero (e.g. ``mergedirs(+, -) = +``).

Bounds precondition (Table 3): for ``i <= k < m <= j``, loop *m*'s
lower/upper/step must be invariant in ``x_k`` (the coalesced range must
be rectangular *within itself*; bounds may still use loops outside the
range).

Bounds mapping & INIT statements (Table 3)::

    x_c  = 1, N_i*...*N_j, 1        with N_k = 1 + div(u_k - l_k, s_k)
    x_k  = l_k + s_k * mod(div(x_c - 1, N_{k+1}*...*N_j), N_k)

The output loop is ``pardo`` only when *every* coalesced loop is
``pardo``.  Deviation from the paper (documented in DESIGN.md): trip
counts are clamped as ``max(0, .)`` so that coalescing a nest containing
an empty loop yields an empty loop instead of executing garbage
iterations (two negative "trip counts" would multiply into a positive
one); the clamp folds away for constant bounds.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.template import (
    Template,
    TransformedLoops,
    anchor_dep_context,
    check_contiguous_range,
    fresh_name,
    map_anchored_dep_set,
)
from repro.deps.entry import D_ANY
from repro.deps.rules import mergedirs
from repro.deps.vector import DepVector
from repro.expr.linear import BoundType
from repro.expr.nodes import (
    Const,
    Expr,
    add,
    floordiv,
    mod,
    mul,
    sub,
    substitute,
    var,
    vmax,
)
from repro.ir.loopnest import DO, InitStmt, Loop, PARDO
from repro.util.errors import PreconditionViolation


def trip_count_expr(lp: Loop, clamp: bool = True) -> Expr:
    """Symbolic trip count ``1 + div(u - l, s)`` of a loop, optionally
    clamped at zero."""
    count = add(Const(1), floordiv(sub(lp.upper, lp.lower), lp.step))
    if clamp and not (isinstance(count, Const) and count.value >= 0):
        return vmax(Const(0), count)
    if isinstance(count, Const) and count.value < 0:
        return Const(0)
    return count


class Coalesce(Template):
    """Instantiation of the Coalesce template."""

    kernel_name = "Coalesce"

    def __init__(self, n: int, i: int, j: int):
        super().__init__(n)
        check_contiguous_range("Coalesce", n, i, j)
        if i == j:
            raise ValueError("Coalesce of a single loop is the identity; "
                             "use a range of at least two loops")
        self.i = i
        self.j = j

    @property
    def output_depth(self) -> int:
        return self.n - (self.j - self.i)

    def params(self) -> str:
        return f"n={self.n}, i={self.i}, j={self.j}"

    def to_spec(self) -> str:
        """CLI step-language rendering (parse_steps round-trips it)."""
        return f"coalesce({self.i}, {self.j})"

    # -- dependence vectors ---------------------------------------------------

    #: The linearization digit of range loop *k* is measured from its
    #: lower bound, ``(x_k - l_k) / s_k``.  When ``l_k`` (or ``s_k``)
    #: references a loop variable the dependence crosses — e.g. a loop
    #: skewed by an outer index before coalescing — source and target
    #: see *different* anchors, the digit distance is not ``d_k``, and
    #: the plain ``mergedirs`` fold is unsound; see
    #: ``anchor_dep_context`` and DESIGN.md soundness tightening 4.
    dep_context_sensitive = True

    def dep_context(self, loops: Sequence[Loop]):
        return anchor_dep_context(self, loops)

    def map_dep_set(self, deps, ctx=None):
        if ctx is None:
            return super().map_dep_set(deps)
        return map_anchored_dep_set(self, deps, ctx)

    def map_dep_vector(self, vec: DepVector,
                       widen: frozenset = frozenset()) -> List[DepVector]:
        merged = mergedirs([
            D_ANY if k + 1 in widen else vec[k]
            for k in range(self.i - 1, self.j)])
        out = (list(vec.entries[:self.i - 1]) + [merged] +
               list(vec.entries[self.j:]))
        return [DepVector(out)]

    # -- loop bounds ---------------------------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        self._require_depth(loops)
        bm = self._bounds_matrix(loops)
        for k in range(self.i, self.j):
            for m in range(k + 1, self.j + 1):
                for which, tag in (("LB", "lower"), ("UB", "upper"),
                                   ("STEP", "step")):
                    t = bm.type_of(which, m, k)
                    if not t.leq(BoundType.INVAR):
                        raise PreconditionViolation(
                            self.signature(),
                            f"{tag} bound of loop {loops[m - 1].index} must "
                            f"be invariant in {loops[k - 1].index} "
                            f"(type is {t})",
                            loop=m, var=loops[k - 1].index,
                            required=BoundType.INVAR, actual=t)

    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        self._require_depth(loops)
        rng = loops[self.i - 1:self.j]
        trips = [trip_count_expr(lp) for lp in rng]

        total = mul(*trips) if len(trips) > 1 else trips[0]
        base = "".join(lp.index[0] for lp in rng) + "c"
        name = base if base not in taken else fresh_name(base, taken)
        taken.add(name)
        kind = PARDO if all(lp.kind == PARDO for lp in rng) else DO
        coalesced = Loop(name, Const(1), total, Const(1), kind)

        # INIT statements: reconstruct each original index from x_c.
        inits: List[InitStmt] = []
        reconstruct = {}
        xc = var(name)
        zero_based = sub(xc, Const(1))
        for offset, lp in enumerate(rng):
            inner = trips[offset + 1:]
            stride = mul(*inner) if len(inner) > 1 else (
                inner[0] if inner else Const(1))
            if (isinstance(stride, Const) and stride.value == 0) or (
                    isinstance(trips[offset], Const) and
                    trips[offset].value == 0):
                # Some loop in the range is statically empty: the
                # coalesced loop never runs, so the reconstruction value
                # is arbitrary (avoid folding a division by zero).
                digit = Const(0)
            else:
                digit = mod(floordiv(zero_based, stride), trips[offset])
            value = add(lp.lower, mul(lp.step, digit))
            inits.append(InitStmt(lp.index, value))
            reconstruct[lp.index] = value

        # Loops inside the coalesced range may reference the eliminated
        # index variables in their bounds; inline the reconstruction
        # expressions there (the paper's Figure 7 does the same via its
        # `tmpj`/`tmpi` scalars) — the INIT statements only cover uses in
        # the loop *body*.
        tail = []
        for lp in loops[self.j:]:
            tail.append(Loop(lp.index,
                             substitute(lp.lower, reconstruct),
                             substitute(lp.upper, reconstruct),
                             substitute(lp.step, reconstruct),
                             lp.kind))

        out = (tuple(loops[:self.i - 1]) + (coalesced,) + tuple(tail))
        return TransformedLoops(out, tuple(inits))
