"""The kernel set K of transformation templates (Table 1)."""

from repro.core.templates.block import Block
from repro.core.templates.coalesce import Coalesce
from repro.core.templates.interleave import Interleave
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular

#: The kernel set as shipped; the framework is extensible — any
#: :class:`~repro.core.template.Template` subclass slots in.
KERNEL_SET = (Unimodular, ReversePermute, Parallelize, Block, Coalesce,
              Interleave)

__all__ = ["Block", "Coalesce", "Interleave", "Parallelize",
           "ReversePermute", "Unimodular", "KERNEL_SET"]
