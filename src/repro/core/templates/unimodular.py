"""The Unimodular kernel template.

``Unimodular(n, M)`` applies an ``n x n`` unimodular matrix (square,
integer, determinant ±1) to the iteration space: the classic framework of
Banerjee and Wolf & Lam covering interchange, reversal, permutation and
skewing, and any composition of them.

Dependence rule (Table 2): ``d' = M x d``, extended to direction values
via interval arithmetic (:func:`repro.deps.rules.unimodular_map`).

Preconditions (Table 3): for all ``1 <= i < j <= n``, ``type(l_j, x_i)``
and ``type(u_j, x_i)`` at most ``linear`` and every step a compile-time
constant.  Non-unit steps are normalized to step 1 first (emitting the
normalization as initialization statements); bounds are then scanned with
Fourier–Motzkin elimination under the change of basis ``y = M x``
(:mod:`repro.core.fme`), and the initialization statements
``x = M^-1 y`` are generated.

Output index naming follows the paper's example (Figure 1(b)): the new
index for row *k* doubles the name of the input index with the largest
absolute coefficient in that row (later index on ties), so skewing ``j``
by ``i`` then interchanging yields loops ``jj`` and ``ii`` with inits
``j = jj - ii`` and ``i = ii``.

Parallel input loops are demoted to ``do`` (a general change of basis
invalidates per-loop parallelism; re-establish it with a subsequent
Parallelize instantiation — the sequence framework makes that cheap).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.fme import (
    Constraint,
    constraint_from_bound,
    scan_bounds,
    transform_constraints,
)
from repro.core.template import Template, TransformedLoops, fresh_name
from repro.deps.rules import unimodular_map
from repro.deps.vector import DepVector
from repro.expr.linear import BoundType, affine_form
from repro.expr.nodes import Const, Expr, add, mul, substitute, var
from repro.ir.loopnest import DO, InitStmt, Loop
from repro.util.errors import CodegenError, PreconditionViolation
from repro.util.matrices import IntMatrix

MatrixLike = Union[IntMatrix, Sequence[Sequence[int]]]


class Unimodular(Template):
    """Instantiation of the Unimodular template."""

    kernel_name = "Unimodular"

    def __init__(self, n: int, matrix: MatrixLike,
                 names: Optional[Sequence[str]] = None):
        """*matrix* must be an ``n x n`` unimodular matrix mapping input
        iteration vectors to output iteration vectors (``y = M x``).
        *names* optionally fixes the output index names."""
        super().__init__(n)
        self.matrix = (matrix if isinstance(matrix, IntMatrix)
                       else IntMatrix(matrix))
        if self.matrix.shape != (n, n):
            raise ValueError(
                f"matrix must be {n}x{n}, got {self.matrix.shape}")
        if not self.matrix.is_unimodular():
            raise ValueError(
                f"matrix is not unimodular (determinant "
                f"{self.matrix.determinant()})")
        self.names = tuple(names) if names is not None else None
        if self.names is not None and len(self.names) != n:
            raise ValueError(f"names must have {n} entries")
        self._inverse = self.matrix.inverse_unimodular()

    def params(self) -> str:
        rows = "; ".join(" ".join(str(v) for v in r)
                         for r in self.matrix.rows())
        return f"n={self.n}, M=[{rows}]"

    def to_spec(self) -> str:
        """CLI step-language rendering (parse_steps round-trips it)."""
        rows = ",".join("[" + ",".join(str(v) for v in r) + "]"
                        for r in self.matrix.rows())
        return f"unimodular([{rows}])"

    # -- dependence vectors ---------------------------------------------------

    def map_dep_vector(self, vec: DepVector) -> List[DepVector]:
        return [unimodular_map(self.matrix, vec)]

    # -- loop bounds ------------------------------------------------------------

    def check_preconditions(self, loops: Sequence[Loop]) -> None:
        self._require_depth(loops)
        bm = self._bounds_matrix(loops)
        for j in range(1, self.n + 1):
            step = bm.step_value(j)
            if step is None:
                raise PreconditionViolation(
                    self.signature(),
                    f"step of loop {loops[j - 1].index} must be a "
                    f"compile-time constant",
                    loop=j, required=BoundType.CONST)
            if step != 1:
                # Step normalization substitutes x = l + s*t into inner
                # bounds, which stays affine only when l and u are plain
                # affine terms (a max/min lower bound cannot appear on
                # the right of an equality).
                from repro.expr.linear import affine_form as _aff

                names = [lp.index for lp in loops]
                for which, e in (("lower", loops[j - 1].lower),
                                 ("upper", loops[j - 1].upper)):
                    if _aff(e, names) is None:
                        raise PreconditionViolation(
                            self.signature(),
                            f"{which} bound of non-unit-step loop "
                            f"{loops[j - 1].index} must be a single affine "
                            f"term for step normalization",
                            loop=j, required=BoundType.LINEAR,
                            actual=BoundType.NONLINEAR)
            for i in range(1, j):
                for which, tag in (("LB", "lower"), ("UB", "upper")):
                    t = bm.type_of(which, j, i)
                    if not t.leq(BoundType.LINEAR):
                        raise PreconditionViolation(
                            self.signature(),
                            f"{tag} bound of loop {loops[j - 1].index} must "
                            f"be at most linear in {loops[i - 1].index} "
                            f"(type is {t})",
                            loop=j, var=loops[i - 1].index,
                            required=BoundType.LINEAR, actual=t)

    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        self._require_depth(loops)
        norm_names, norm_inits, constraints = _normalize(loops, taken)

        y_names = self._output_names(loops, taken)
        transformed = transform_constraints(constraints, self._inverse)
        bounds = scan_bounds(transformed, y_names)

        out_loops = tuple(
            Loop(y_names[k], lo, hi, Const(1), DO)
            for k, (lo, hi) in enumerate(bounds))

        # INIT statements: x_hat = M^-1 y, emitted before this template's
        # normalization inits (which consume the x_hat values).
        inv_inits: List[InitStmt] = []
        for k in range(self.n):
            terms = [mul(Const(self._inverse[k, m]), var(y_names[m]))
                     for m in range(self.n) if self._inverse[k, m] != 0]
            expr = add(*terms) if terms else Const(0)
            inv_inits.append(InitStmt(norm_names[k], expr))
        return TransformedLoops(out_loops, tuple(inv_inits + norm_inits))

    def _output_names(self, loops: Sequence[Loop],
                      taken: Set[str]) -> List[str]:
        if self.names is not None:
            for nm in self.names:
                if nm in taken:
                    raise ValueError(f"output index name {nm!r} is in use")
                taken.add(nm)
            return list(self.names)
        out = []
        for k in range(self.n):
            row = self.matrix.row(k)
            best = max(range(self.n), key=lambda m: (abs(row[m]), m))
            out.append(fresh_name(loops[best].index, taken))
        return out


def _normalize(loops: Sequence[Loop], taken: Set[str]
               ) -> Tuple[List[str], List[InitStmt], List[Constraint]]:
    """Normalize steps to 1 and extract the affine constraint system.

    Returns the normalized index names (one per loop; the original name
    when the step was already 1), the denormalizing INIT statements, and
    the constraints over the normalized variables.  Avoiding an explicit
    trip count keeps the system affine: a loop ``x = l, u, s`` becomes
    ``t >= 0`` together with ``l + s*t`` within ``[min(l,u*), max(..)]``
    in the direction of travel.
    """
    n = len(loops)
    # First pass: pick every normalized index name up front so constraint
    # coefficient vectors can have full arity n from the start.
    norm_names: List[str] = []
    for lp in loops:
        step = lp.step
        assert isinstance(step, Const), "preconditions guarantee const steps"
        if step.value == 1:
            norm_names.append(lp.index)
        else:
            norm_names.append(fresh_name(lp.index + "t", taken))

    inits: List[InitStmt] = []
    # Maps original index names to their expression over normalized vars.
    rewrite: Dict[str, Expr] = {}
    constraints: List[Constraint] = []

    for k, lp in enumerate(loops):
        step_value = lp.step.value  # type: ignore[union-attr]
        lower = substitute(lp.lower, rewrite)
        upper = substitute(lp.upper, rewrite)
        if step_value == 1:
            constraints.extend(constraint_from_bound(
                lower, norm_names, k, is_lower=True))
            constraints.extend(constraint_from_bound(
                upper, norm_names, k, is_lower=False))
            continue
        t_name = norm_names[k]
        value = add(lower, mul(Const(step_value), var(t_name)))
        rewrite[lp.index] = value
        inits.append(InitStmt(lp.index, value))
        # t >= 0
        constraints.extend(constraint_from_bound(
            Const(0), norm_names, k, is_lower=True))
        # End-of-range: the last in-range index value gives, for s > 0,
        # (u - l) - s*t >= 0 and, for s < 0, (l - u) + s*t... both reduce
        # to span - |s|*t >= 0 with span on the travel side.
        if step_value > 0:
            span = add(upper, mul(Const(-1), lower))
        else:
            span = add(lower, mul(Const(-1), upper))
        form = affine_form(span, norm_names)
        if form is None:
            raise CodegenError(
                f"bounds of loop {lp.index} are not affine after step "
                "normalization")
        coeffs = [form.coefficient(nm) for nm in norm_names]
        coeffs[k] -= abs(step_value)
        constraints.append(Constraint(coeffs, form.rest).normalized())
    return norm_names, inits, constraints
