"""The Parallelize kernel template.

``Parallelize(n, parflag)``: ``parflag[k] = True`` turns loop *k* into a
``pardo`` loop (Table 1).  Parallelization is "just another
iteration-reordering transformation" in this framework: its dependence
rule feeds the same uniform lexicographic legality test as every other
template, instead of needing a bespoke "no carried dependence" check.

Dependence rule (Table 2)::

    d'_k = parmap(d_k)   if parflag[k]   else   d_k

where ``parmap`` maps 0 to 0 and anything that can be nonzero to ``*``:
iterations of a parallel loop may execute in any relative order, so a
carried dependence can flow backwards — which surfaces as a
lexicographically negative tuple exactly when loop *k* is the outermost
position at which the dependence can be carried.

Bounds preconditions: none.  The mapping leaves every bound unchanged and
creates no initialization statements; only the loop kinds change.

Note the framework also *transforms* parallel loops (a ``pardo`` input
loop keeps its kind through ReversePermute, Block, ...), which the
unimodular frameworks cannot express (Section 5).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.template import Template, TransformedLoops
from repro.deps.rules import parmap
from repro.deps.vector import DepVector
from repro.ir.loopnest import DO, Loop, PARDO


class Parallelize(Template):
    """Instantiation of the Parallelize template."""

    kernel_name = "Parallelize"

    def __init__(self, n: int, parflag: Sequence[bool]):
        super().__init__(n)
        self.parflag = tuple(bool(p) for p in parflag)
        if len(self.parflag) != n:
            raise ValueError(
                f"parflag must have {n} entries, got {len(self.parflag)}")

    def params(self) -> str:
        flags = "[" + " ".join("1" if p else "0" for p in self.parflag) + "]"
        return f"n={self.n}, parflag={flags}"

    def to_spec(self) -> str:
        """CLI step-language rendering (parse_steps round-trips it)."""
        which = [str(k + 1) for k, p in enumerate(self.parflag) if p]
        return f"parallelize({', '.join(which)})"

    def map_dep_vector(self, vec: DepVector) -> List[DepVector]:
        out = [parmap(e) if self.parflag[k] else e
               for k, e in enumerate(vec)]
        return [DepVector(out)]

    def map_loops(self, loops: Sequence[Loop],
                  taken: Set[str]) -> TransformedLoops:
        self._require_depth(loops)
        out = tuple(
            lp.with_kind(PARDO) if self.parflag[k] else lp
            for k, lp in enumerate(loops))
        return TransformedLoops(out, ())


def parallelize_loop(n: int, k: int) -> Parallelize:
    """Convenience: parallelize just loop *k* (1-based)."""
    flags = [False] * n
    flags[k - 1] = True
    return Parallelize(n, flags)
