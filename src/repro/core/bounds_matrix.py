"""The LB/UB/STEP matrix representation of loop bounds (Section 4.3).

For a nest of ``n`` loops, each of the three matrices has shape
``(1..n) x (0..n)`` where entry ``(i, 0)`` holds the loop-invariant part
of loop *i*'s bound expression (an arbitrary expression evaluated at run
time) and entry ``(i, j)`` for ``j >= 1`` holds the constant integer
coefficient of index variable ``j`` — defined only for ``i > j`` since a
bound may only reference enclosing indices.  Nonlinear terms involving an
index variable are folded into the ``(i, 0)`` entry and the variable is
tagged nonlinear.  A ``max`` lower bound / ``min`` upper bound stores one
coefficient row *per term* (Figure 5's ``max<n, 3>`` entry).

The matrices exist so the legality test can evaluate the ``type``
predicates of every template's preconditions *without* generating code
(Section 4.1).  :class:`BoundsMatrix` is that queryable artifact;
:meth:`BoundsMatrix.pretty` reproduces Figure 5.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.linear import AffineForm, BoundType, affine_form
from repro.expr.nodes import (
    Const,
    Expr,
    Max,
    Min,
    add,
    free_vars,
    mul,
    to_str,
    var,
)
from repro.ir.loopnest import Loop, LoopNest

LB = "LB"
UB = "UB"
STEP = "STEP"


class BoundTermInfo:
    """One linear-inequality term of a bound cell.

    ``expr == sum(coeffs[name] * name) + rest`` where *rest* is invariant
    in every index variable except those in *nonlinear_vars*, whose
    occurrences live (nonlinearly) inside *rest*.
    """

    __slots__ = ("coeffs", "rest", "nonlinear_vars")

    def __init__(self, coeffs: Dict[str, int], rest: Expr,
                 nonlinear_vars: FrozenSet[str]):
        self.coeffs = {k: v for k, v in coeffs.items() if v != 0}
        self.rest = rest
        self.nonlinear_vars = frozenset(nonlinear_vars)

    def type_wrt(self, name: str) -> BoundType:
        if name in self.nonlinear_vars:
            return BoundType.NONLINEAR
        if self.coeffs.get(name, 0) != 0:
            return BoundType.LINEAR
        if self.is_const():
            return BoundType.CONST
        return BoundType.INVAR

    def is_const(self) -> bool:
        return (not self.coeffs and not self.nonlinear_vars and
                isinstance(self.rest, Const))

    def to_expr(self) -> Expr:
        parts = [mul(Const(c), var(v)) for v, c in sorted(self.coeffs.items())]
        parts.append(self.rest)
        return add(*parts)

    def __repr__(self):
        return f"BoundTermInfo({to_str(self.to_expr())})"


class BoundCell:
    """One loop's lower, upper or step bound as a list of terms.

    *combiner* records how multiple terms combine: ``"max"``/``"min"`` for
    the special-cased bounds, ``None`` for a single term, and
    ``"opaque"`` when a max/min appeared in a position where the special
    case does not apply (the whole expression is then one nonlinear term).
    """

    __slots__ = ("expr", "terms", "combiner")

    def __init__(self, expr: Expr, terms: List[BoundTermInfo],
                 combiner: Optional[str]):
        self.expr = expr
        self.terms = terms
        self.combiner = combiner

    def type_wrt(self, name: str) -> BoundType:
        return BoundType.lub(*[t.type_wrt(name) for t in self.terms])

    def is_const(self) -> bool:
        return len(self.terms) == 1 and self.terms[0].is_const()

    def const_value(self) -> Optional[int]:
        if self.is_const():
            rest = self.terms[0].rest
            assert isinstance(rest, Const)
            return rest.value
        return None

    def __repr__(self):
        return f"BoundCell({to_str(self.expr)})"


def _decompose(expr: Expr, index_names: Sequence[str]) -> BoundTermInfo:
    """Split one (non-max/min) expression into the matrix-entry form."""
    form = affine_form(expr, index_names)
    if form is not None:
        return BoundTermInfo(dict(form.coeffs), form.rest, frozenset())
    # Not affine: pull out whatever affine part exists by decomposing the
    # top-level sum; non-affine addends fold into rest with their index
    # variables tagged nonlinear.
    from repro.expr.nodes import Add

    addends = expr.terms if isinstance(expr, Add) else (expr,)
    coeffs: Dict[str, int] = {}
    rest_parts: List[Expr] = []
    nonlinear: set = set()
    wanted = set(index_names)
    for term in addends:
        sub = affine_form(term, index_names)
        if sub is not None:
            for v, c in sub.coeffs.items():
                coeffs[v] = coeffs.get(v, 0) + c
            rest_parts.append(sub.rest)
        else:
            rest_parts.append(term)
            nonlinear |= (free_vars(term) & wanted)
    return BoundTermInfo(coeffs, add(*rest_parts) if rest_parts else Const(0),
                         frozenset(nonlinear))


def _build_cell(expr: Expr, index_names: Sequence[str],
                allow: Optional[str]) -> BoundCell:
    """Build a cell, honouring the max/min special case when *allow* says
    a ``max`` (lower bound, positive step) or ``min`` (upper bound) of
    linear terms may be split into separate inequality rows."""
    if allow == "max" and isinstance(expr, Max):
        return BoundCell(expr, [_decompose(a, index_names) for a in expr.args],
                         "max")
    if allow == "min" and isinstance(expr, Min):
        return BoundCell(expr, [_decompose(a, index_names) for a in expr.args],
                         "min")
    if isinstance(expr, (Max, Min)):
        # Wrong-direction max/min: a single opaque nonlinear term (in the
        # index variables it mentions).
        wanted = set(index_names)
        used = free_vars(expr) & wanted
        term = BoundTermInfo({}, expr, frozenset(used))
        return BoundCell(expr, [term], "opaque")
    return BoundCell(expr, [_decompose(expr, index_names)], None)


class BoundsMatrix:
    """The LB, UB and STEP coefficient matrices for a loop nest."""

    def __init__(self, loops: Sequence[Loop]):
        self.loops = tuple(loops)
        self.indices = tuple(lp.index for lp in self.loops)
        self.lb: List[BoundCell] = []
        self.ub: List[BoundCell] = []
        self.step: List[BoundCell] = []
        for k, lp in enumerate(self.loops):
            outer = self.indices[:k]
            step_val = lp.step.value if isinstance(lp.step, Const) else None
            if step_val is None or step_val > 0:
                lb_allow, ub_allow = "max", "min"
            else:
                lb_allow, ub_allow = "min", "max"
            self.lb.append(_build_cell(lp.lower, outer, lb_allow))
            self.ub.append(_build_cell(lp.upper, outer, ub_allow))
            self.step.append(_build_cell(lp.step, outer, None))

    @classmethod
    def of_nest(cls, nest: LoopNest) -> "BoundsMatrix":
        return cls(nest.loops)

    # -- queries ---------------------------------------------------------

    def _cell(self, which: str, i: int) -> BoundCell:
        table = {LB: self.lb, UB: self.ub, STEP: self.step}[which]
        if not 1 <= i <= len(self.loops):
            raise IndexError(f"loop number {i} out of range")
        return table[i - 1]

    def type_of(self, which: str, i: int, j_or_name) -> BoundType:
        """``type(expr_i, x_j)`` where *which* selects LB/UB/STEP.

        *j_or_name* is a 1-based loop number or an index variable name.
        """
        name = (j_or_name if isinstance(j_or_name, str)
                else self.indices[j_or_name - 1])
        return self._cell(which, i).type_wrt(name)

    def coefficient(self, which: str, i: int, j: int) -> Tuple[int, ...]:
        """The (i, j) matrix entry: coefficient(s) of index j in bound i.

        Returns one value per inequality term (max/min entries hold a
        list, as in Figure 5's ``max<n, 3>``).
        """
        cell = self._cell(which, i)
        name = self.indices[j - 1]
        return tuple(t.coeffs.get(name, 0) for t in cell.terms)

    def invariant_entry(self, which: str, i: int) -> Tuple[Expr, ...]:
        """The (i, 0) entries: the run-time invariant part per term."""
        cell = self._cell(which, i)
        return tuple(t.rest for t in cell.terms)

    def step_value(self, i: int) -> Optional[int]:
        """The constant step of loop *i*, or None when not compile-time."""
        return self._cell(STEP, i).const_value()

    # -- rendering (Figure 5) ----------------------------------------------

    def pretty(self, which: str) -> str:
        """Render one matrix like Figure 5 of the paper."""
        n = len(self.loops)
        rows = []
        for i in range(1, n + 1):
            cell = self._cell(which, i)
            entries = []
            # column 0: invariant parts
            col0 = [to_str(t.rest) for t in cell.terms]
            entries.append(self._wrap(col0, cell.combiner))
            for j in range(1, n + 1):
                if j >= i:
                    entries.append("-")
                    continue
                coeffs = [str(c) for c in self.coefficient(which, i, j)]
                entries.append(self._wrap(coeffs, cell.combiner))
            rows.append(entries)
        widths = [max(len(r[c]) for r in rows) for c in range(n + 1)]
        lines = []
        for r in rows:
            lines.append("[ " + "  ".join(v.rjust(w) for v, w in zip(r, widths))
                         + " ]")
        return "\n".join(lines)

    @staticmethod
    def _wrap(values: List[str], combiner: Optional[str]) -> str:
        if len(values) == 1:
            return values[0]
        return f"{combiner}<{', '.join(values)}>"

    def pretty_types(self) -> str:
        """List every non-(invar/const) type fact, as under Figure 5."""
        facts = []
        for which, tag in ((LB, "l"), (UB, "u"), (STEP, "s")):
            for i in range(1, len(self.loops) + 1):
                for j in range(1, i):
                    t = self.type_of(which, i, j)
                    if t in (BoundType.LINEAR, BoundType.NONLINEAR):
                        facts.append(
                            f"type({tag}{i}, {self.indices[j - 1]}) = {t}")
        if not facts:
            return "type = invar or const, in all cases."
        facts.append("type = invar or const, in all other cases.")
        return "\n".join(facts)
