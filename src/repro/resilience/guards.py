"""Resource guardrails: convert runaway work into typed errors.

A hostile or accidental input — a 10,000-paren expression, a megabyte
"nest", a transformation whose Fourier–Motzkin projection explodes, a
compiled run over a trillion iterations — must come back as a typed
:class:`~repro.util.errors.ReproError` (the service's ``bad-input``
class), never as a raw ``RecursionError``/``MemoryError`` that unwinds
through arbitrary frames or takes the process down.

One :class:`GuardLimits` record holds every limit; the consuming
layers read it through :func:`limits` at use time, so tests and the
CLI can tighten limits per run.  Environment overrides (read once, at
first use)::

    REPRO_MAX_EXPR_DEPTH        expression parser recursion depth (150)
    REPRO_MAX_SOURCE_BYTES      parser input size            (1_000_000)
    REPRO_MAX_NEST_DEPTH        loop-nest nesting depth             (64)
    REPRO_MAX_FME_CONSTRAINTS   Fourier–Motzkin working set       (2000)
    REPRO_MAX_ITERATIONS        compiled-run iteration count (2_000_000)
    REPRO_MAX_FRAME_BYTES       service NDJSON frame size    (1_000_000)
    REPRO_MAX_RSS_MB            soft RSS ceiling, MB          (disabled)

The RSS guard is *soft*: it is checked between requests (the service
consults :func:`check_rss` before dispatching), so one request may
overshoot, but the next one is refused with a typed error instead of
letting the kernel OOM-kill the server.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.util.errors import ReproError


class ResourceLimitError(ReproError):
    """A guard limit was exceeded; carries which limit and the value."""

    def __init__(self, message: str, limit: Optional[str] = None,
                 value=None):
        super().__init__(message)
        self.limit = limit
        self.value = value


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


class GuardLimits:
    """One record of every resource limit the pipeline enforces."""

    __slots__ = ("max_expr_depth", "max_source_bytes", "max_nest_depth",
                 "max_fme_constraints", "max_iterations",
                 "max_frame_bytes", "max_rss_mb")

    def __init__(self,
                 max_expr_depth: int = 150,
                 max_source_bytes: int = 1_000_000,
                 max_nest_depth: int = 64,
                 max_fme_constraints: int = 2000,
                 max_iterations: int = 2_000_000,
                 max_frame_bytes: int = 1_000_000,
                 max_rss_mb: Optional[int] = None):
        self.max_expr_depth = max_expr_depth
        self.max_source_bytes = max_source_bytes
        self.max_nest_depth = max_nest_depth
        self.max_fme_constraints = max_fme_constraints
        self.max_iterations = max_iterations
        self.max_frame_bytes = max_frame_bytes
        self.max_rss_mb = max_rss_mb

    @classmethod
    def from_env(cls) -> "GuardLimits":
        rss = _env_int("REPRO_MAX_RSS_MB", 0)
        return cls(
            max_expr_depth=_env_int("REPRO_MAX_EXPR_DEPTH", 150),
            max_source_bytes=_env_int("REPRO_MAX_SOURCE_BYTES", 1_000_000),
            max_nest_depth=_env_int("REPRO_MAX_NEST_DEPTH", 64),
            max_fme_constraints=_env_int("REPRO_MAX_FME_CONSTRAINTS", 2000),
            max_iterations=_env_int("REPRO_MAX_ITERATIONS", 2_000_000),
            max_frame_bytes=_env_int("REPRO_MAX_FRAME_BYTES", 1_000_000),
            max_rss_mb=rss or None)

    def replace(self, **overrides) -> "GuardLimits":
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(overrides)
        return GuardLimits(**fields)


_LIMITS: Optional[GuardLimits] = None


def limits() -> GuardLimits:
    """The active limits (env-initialized on first use)."""
    global _LIMITS
    if _LIMITS is None:
        _LIMITS = GuardLimits.from_env()
    return _LIMITS


def set_limits(new: Optional[GuardLimits]) -> None:
    """Install *new* limits process-wide (None = re-read the
    environment on next use).  Tests use this to shrink limits."""
    global _LIMITS
    _LIMITS = new


def check_source_size(text: str, what: str = "input") -> None:
    """Reject oversized parser input before tokenizing it."""
    cap = limits().max_source_bytes
    if len(text) > cap:
        raise ResourceLimitError(
            f"{what} is {len(text)} bytes; the limit is {cap} "
            f"(REPRO_MAX_SOURCE_BYTES)",
            limit="max_source_bytes", value=len(text))


def rss_mb() -> Optional[float]:
    """Current peak RSS in MB, or None where unmeasurable."""
    try:
        import resource
    except ImportError:  # pragma: no cover — non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes; normalize heuristically.
    return usage / 1024.0 if usage < 1 << 32 else usage / (1024.0 ** 2)


def check_rss() -> None:
    """Soft RSS ceiling: raise once the process has outgrown it."""
    cap = limits().max_rss_mb
    if not cap:
        return
    current = rss_mb()
    if current is not None and current > cap:
        raise ResourceLimitError(
            f"process RSS {current:.0f} MB exceeds the soft limit "
            f"{cap} MB (REPRO_MAX_RSS_MB)",
            limit="max_rss_mb", value=current)
