"""repro.resilience — fault injection, supervision, retries and guards.

Four pieces, one goal: a transformation service that keeps answering
correctly while the world misbehaves.

:mod:`repro.resilience.chaos`
    A unified fault-injection registry with named injection points
    threaded through the whole pipeline (``ir.parse``,
    ``deps.analysis``, ``legality``, ``compiled.codegen``,
    ``service.dispatch``, ``pool.worker``).  Subsumes the PR-3
    pool-only :mod:`repro.parallel.faults` module.

:mod:`repro.resilience.supervisor`
    A process supervisor for ``repro serve``: heartbeat-based crash and
    hang detection, exponential-backoff restarts behind a crash-loop
    circuit breaker, warm-state restore from a
    :meth:`~repro.service.state.WarmState.checkpoint` file.

:mod:`repro.resilience.retry`
    A retrying service client: exponential backoff with deterministic
    jitter, a retry budget, and idempotency keys so a replayed request
    after a connection drop is answered from the server's dedup window
    instead of re-executed.

:mod:`repro.resilience.guards`
    Resource guardrails (recursion depth, source size, iteration count,
    constraint count, RSS) that convert runaway work into typed
    :class:`~repro.util.errors.ReproError`\\ s the service surfaces as
    ``bad-input`` — never a raw ``RecursionError`` or ``MemoryError``.

See the "Resilience" section of ``docs/API.md`` and tutorial §8.8.
"""

from repro.resilience.chaos import (
    ChaosError,
    ChaosPlan,
    arm,
    arm_from_env,
    current_plan,
    disarm,
    inject,
    parse_spec,
)
from repro.resilience.guards import (
    GuardLimits,
    ResourceLimitError,
    limits,
    set_limits,
)

# retry/supervisor pull in repro.service, whose server consults the
# chaos registry — resolve those lazily so `import repro.service` and
# `import repro.resilience` can each be the first import.
_LAZY = {
    "CrashLoopError": ("repro.resilience.supervisor", "CrashLoopError"),
    "RetryPolicy": ("repro.resilience.retry", "RetryPolicy"),
    "RetryingClient": ("repro.resilience.retry", "RetryingClient"),
    "Supervisor": ("repro.resilience.supervisor", "Supervisor"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(target[0]), target[1])


__all__ = [
    "ChaosError", "ChaosPlan", "CrashLoopError", "GuardLimits",
    "ResourceLimitError", "RetryPolicy", "RetryingClient", "Supervisor",
    "arm", "arm_from_env", "current_plan", "disarm", "inject", "limits",
    "parse_spec", "set_limits",
]
