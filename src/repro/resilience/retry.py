"""Client-side retry with backoff, jitter and idempotency keys.

:class:`RetryingClient` wraps the transport-level
:class:`~repro.service.client.ServiceClient` with the policy a caller
facing a crash-prone server needs:

* every request carries an ``idem`` key (``client_id:seq``), so a retry
  after a dropped connection or a lost reply is answered from the
  server's dedup window instead of re-executed — at-least-once sending,
  exactly-once execution;
* transport failures (connection refused while a supervisor restarts
  the server, EOF mid-response, a per-attempt read timeout) reconnect
  and resend;
* typed ``unavailable`` and ``backpressure`` errors — the two codes the
  protocol marks retryable — back off exponentially with deterministic
  jitter and try again; every other typed error is the server's final
  word and raises immediately;
* a per-request *retry budget* bounds the total time spent backing off,
  so a dead server fails the call instead of retrying forever.
"""

from __future__ import annotations

import random
import select
import socket
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import RETRYABLE_CODES, ServiceError


class RetryPolicy:
    """How hard to try: attempts, backoff shape, and the retry budget.

    ``jitter`` is the fractional spread added on top of each backoff
    delay (0.5 → up to +50%), drawn from a seeded RNG so replay runs
    are reproducible.  ``backoff_max`` caps the *actual* delay, jitter
    included — the documented ceiling is the ceiling.  ``budget`` caps
    the *cumulative* backoff sleep per request in seconds (None =
    attempts alone bound the work).
    """

    __slots__ = ("attempts", "backoff_initial", "backoff_max",
                 "backoff_factor", "jitter", "budget", "seed")

    def __init__(self, attempts: int = 4, backoff_initial: float = 0.05,
                 backoff_max: float = 2.0, backoff_factor: float = 2.0,
                 jitter: float = 0.5, budget: Optional[float] = 30.0,
                 seed: int = 0):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = int(attempts)
        self.backoff_initial = float(backoff_initial)
        self.backoff_max = float(backoff_max)
        self.backoff_factor = float(backoff_factor)
        self.jitter = float(jitter)
        self.budget = budget
        self.seed = int(seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number *attempt* (0-based), never above
        ``backoff_max`` (the clamp is applied *after* jitter; clamping
        first let the jittered delay overshoot the documented cap by up
        to the jitter fraction)."""
        base = self.backoff_initial * self.backoff_factor ** attempt
        return min(base * (1.0 + self.jitter * rng.random()),
                   self.backoff_max)


class RetryingClient:
    """A :class:`ServiceClient` wrapper that reconnects and retries.

    Construct with a *factory* returning a fresh connected
    :class:`ServiceClient` (used initially and after every transport
    failure), or use :meth:`tcp` / :meth:`spawn`.  ``attempt_timeout``
    bounds each read so a hung server surfaces as a retryable
    transport failure instead of blocking the caller forever.
    """

    def __init__(self, factory: Callable[[], ServiceClient],
                 policy: Optional[RetryPolicy] = None,
                 client_id: Optional[str] = None,
                 attempt_timeout: Optional[float] = None):
        self._factory = factory
        self.policy = policy or RetryPolicy()
        self.client_id = client_id or f"rc{id(self) & 0xffffff:x}"
        self.attempt_timeout = attempt_timeout
        self._rng = random.Random(self.policy.seed)
        self._client: Optional[ServiceClient] = None
        self._seq = 0
        self.counters: Dict[str, int] = {
            "requests": 0, "retries": 0, "reconnects": 0,
            "transport_failures": 0, "retryable_errors": 0,
        }

    # -- constructors ------------------------------------------------------

    @classmethod
    def tcp(cls, host: str, port: int, **kwargs: Any) -> "RetryingClient":
        """Retrying client for a (possibly supervised) TCP server; the
        factory reconnects to the same address after every failure, so
        a supervisor restart looks like one retried request."""
        return cls(lambda: ServiceClient.connect(host, port), **kwargs)

    @classmethod
    def spawn(cls, serve_args: Sequence[str] = (),
              **kwargs: Any) -> "RetryingClient":
        """Retrying client over a spawned stdio server (respawned cold
        after a transport failure)."""
        return cls(lambda: ServiceClient.spawn(serve_args), **kwargs)

    # -- connection management ---------------------------------------------

    def _connected(self) -> ServiceClient:
        if self._client is None:
            self._client = self._factory()
            self.counters["reconnects"] += 1
            if _obs.enabled():
                get_metrics().counter("client.reconnects").inc()
        return self._client

    def _drop_connection(self) -> None:
        if self._client is not None:
            try:
                self._client.close(shutdown=False, timeout=1.0)
            except Exception:
                pass
            self._client = None

    def _recv(self, client: ServiceClient, req_id: Any) -> dict:
        """One response read, bounded by ``attempt_timeout``.

        Uses ``select`` on the transport fd (works for both the TCP
        socket and the spawned server's pipe); a timeout raises
        :class:`TimeoutError`, which the retry loop treats exactly like
        a dropped connection.
        """
        if self.attempt_timeout is not None:
            deadline = time.monotonic() + self.attempt_timeout
            fd = client._rfile.fileno()
            while req_id not in client._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no response within {self.attempt_timeout}s")
                ready, _, _ = select.select([fd], [], [], remaining)
                if ready:
                    break
        return client.recv(req_id)

    # -- the retry loop ----------------------------------------------------

    def request_raw(self, op: str,
                    params: Optional[Dict[str, Any]] = None,
                    req_id: Optional[Any] = None,
                    idem: Optional[str] = None,
                    trace: Optional[Dict[str, Any]] = None) -> dict:
        """One logical request → one raw response object, retrying
        transport failures and retryable typed errors under the policy.
        The same ``idem`` key rides every resend, so the server never
        executes the work twice.  Callers that replay a request across
        *servers* (the fleet router failing over a worker) pass their
        own stable *idem* so the key survives the re-route."""
        self._seq += 1
        if req_id is None:
            req_id = f"{self.client_id}-{self._seq}"
        if idem is None:
            idem = f"{self.client_id}:{self._seq}"
        self.counters["requests"] += 1
        slept = 0.0
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.attempts):
            if attempt:
                delay = self.policy.delay(attempt - 1, self._rng)
                if self.policy.budget is not None and \
                        slept + delay > self.policy.budget:
                    break
                time.sleep(delay)
                slept += delay
                self.counters["retries"] += 1
                if _obs.enabled():
                    get_metrics().counter("client.retries").inc()
            try:
                client = self._connected()
                if trace is not None:
                    client.send(op, params, req_id=req_id, idem=idem,
                                trace=trace)
                else:
                    client.send(op, params, req_id=req_id, idem=idem)
                response = self._recv(client, req_id)
            except (OSError, ValueError, TimeoutError,
                    socket.timeout) as exc:
                self.counters["transport_failures"] += 1
                self._drop_connection()
                last_error = exc
                continue
            except ServiceError as exc:
                # recv() raises INTERNAL on EOF mid-response: the
                # server died with our request in flight.
                self.counters["transport_failures"] += 1
                self._drop_connection()
                last_error = exc
                continue
            if not response.get("ok"):
                code = (response.get("error") or {}).get("code")
                if code in RETRYABLE_CODES:
                    self.counters["retryable_errors"] += 1
                    last_error = ServiceError(
                        code, (response.get("error") or {}).get(
                            "message", code))
                    continue
            return response
        raise ServiceError(
            protocol.UNAVAILABLE,
            f"request {op!r} failed after {self.policy.attempts} "
            f"attempts ({slept:.2f}s backing off): {last_error}")

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One logical round-trip; returns ``result`` or raises
        :class:`ServiceError` with the final typed code."""
        response = self.request_raw(op, params)
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServiceError(error.get("code", protocol.INTERNAL),
                           error.get("message", "unknown error"))

    def replay(self, requests: Iterable[dict]) -> List[dict]:
        """Replay a request script (same shape as
        :meth:`ServiceClient.replay`), one retried round-trip at a
        time — sequential on purpose, so a mid-script server crash
        resumes exactly where it stopped."""
        return [self.request_raw(req["op"], req.get("params"),
                                 req_id=req.get("id"))
                for req in requests]

    # -- lifecycle ---------------------------------------------------------

    def close(self, shutdown: bool = False) -> None:
        if self._client is not None:
            try:
                self._client.close(shutdown=shutdown)
            except Exception:
                pass
            self._client = None

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
