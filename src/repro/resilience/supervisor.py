"""A process supervisor for the transformation service.

``repro serve --supervise`` runs the real server as a child process and
keeps it alive:

* **crash detection** — the child exiting nonzero (including an
  injected ``os._exit`` crash) is restarted;
* **hang detection** — the child touches a heartbeat file from a
  thread gated on its processing loop's liveness; a heartbeat that
  stops *changing* for ``hang_timeout`` means the loop is wedged, and
  the supervisor SIGKILLs and restarts it.  Freshness is tracked
  entirely on the supervisor's monotonic clock (the file's mtime is
  only compared against its own previous value), so an NTP step or
  wall-clock skew between the file clock and the supervisor can
  neither mask a hang nor trigger a spurious kill;
* **exponential backoff** between restarts, so a fast crash loop does
  not busy-spin;
* a **circuit breaker**: more than ``max_restarts`` restarts inside
  ``restart_window`` seconds stops supervision with an error instead of
  flapping forever;
* **warm restore** — the child argv carries ``--checkpoint PATH``, so
  every restarted child reloads the previous incarnation's parse /
  analysis / legality state (``state.restored_entries`` and
  ``reuse_ratio`` in ``stats`` quantify what survived).

The supervisor itself stays tiny and allocation-free in steady state:
it polls the child and the heartbeat mtime.  SIGTERM/SIGINT are
forwarded to the child and supervision ends with its clean exit.  A
JSON report (``report_path``) records every restart with its reason
and backoff for post-mortems and the CI chaos job.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.util.errors import ReproError


class CrashLoopError(ReproError):
    """The circuit breaker tripped: too many restarts too quickly."""


class Supervisor:
    """Run ``child_argv`` as a subprocess; restart on crash or hang."""

    def __init__(self, child_argv: Sequence[str], *,
                 heartbeat_file: Optional[str] = None,
                 hang_timeout: float = 10.0,
                 backoff_initial: float = 0.25,
                 backoff_max: float = 10.0,
                 backoff_factor: float = 2.0,
                 max_restarts: int = 5,
                 restart_window: float = 60.0,
                 report_path: Optional[str] = None,
                 poll_interval: float = 0.1,
                 env: Optional[Dict[str, str]] = None):
        self.child_argv = list(child_argv)
        self.env = dict(env) if env is not None else None
        self.heartbeat_file = heartbeat_file
        self.hang_timeout = float(hang_timeout)
        self.backoff_initial = float(backoff_initial)
        self.backoff_max = float(backoff_max)
        self.backoff_factor = float(backoff_factor)
        self.max_restarts = int(max_restarts)
        self.restart_window = float(restart_window)
        self.report_path = report_path
        self.poll_interval = float(poll_interval)
        self.restarts: List[Dict[str, object]] = []
        self._child: Optional[subprocess.Popen] = None
        self._stop = threading.Event()
        self._restart_times: List[float] = []

    # -- stopping ----------------------------------------------------------

    @property
    def _stopping(self) -> bool:
        return self._stop.is_set()

    @_stopping.setter
    def _stopping(self, value: bool) -> None:
        if value:
            self._stop.set()
        else:
            self._stop.clear()

    def stop(self, signum: int = signal.SIGTERM) -> None:
        """Stop supervising: interrupt any restart backoff in progress,
        skip further respawns, and forward *signum* to a running child
        so it drains gracefully.  Safe from any thread."""
        self._stop.set()
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(signum)
            except OSError:
                pass

    # -- signals -----------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """Forward SIGTERM/SIGINT to the child and stop supervising
        (the child drains gracefully; its clean exit ends the loop)."""
        if threading.current_thread() is not threading.main_thread():
            return

        def forward(signum, frame):
            self.stop(signum)

        signal.signal(signal.SIGTERM, forward)
        signal.signal(signal.SIGINT, forward)

    # -- the supervision loop ----------------------------------------------

    def run(self) -> int:
        """Supervise until the child exits cleanly (returns its code 0),
        the operator stops us (child's exit code after drain), or the
        circuit breaker trips (:class:`CrashLoopError`)."""
        backoff = self.backoff_initial
        while True:
            started = time.monotonic()
            self._child = self._spawn()
            reason = self._watch(self._child, started)
            code = self._child.returncode
            if reason == "exit" and code == 0:
                self._write_report(final="clean-exit")
                return 0
            if self._stopping:
                self._write_report(final="stopped")
                return code if code is not None else 0
            # Crash or hang: decide whether to restart.
            now = time.monotonic()
            self._restart_times = [
                t for t in self._restart_times
                if now - t <= self.restart_window]
            if len(self._restart_times) >= self.max_restarts:
                self._write_report(final="crash-loop")
                raise CrashLoopError(
                    f"service restarted {len(self._restart_times)} times "
                    f"in {self.restart_window:.0f}s; giving up "
                    f"(last exit code {code}, reason {reason})")
            self._restart_times.append(now)
            uptime = now - started
            self.restarts.append({
                "reason": reason, "exit_code": code,
                "uptime_s": round(uptime, 3),
                "backoff_s": round(backoff, 3),
            })
            if _obs.enabled():
                get_metrics().counter("supervisor.restarts").inc()
                get_metrics().counter(f"supervisor.restarts.{reason}").inc()
                _obs.event("supervisor.restart", reason=reason,
                           exit_code=code, uptime_s=round(uptime, 3))
            print(f"repro supervise: child exited (code {code}, "
                  f"reason {reason}, uptime {uptime:.1f}s); restarting "
                  f"in {backoff:.2f}s", file=sys.stderr, flush=True)
            self._write_report(final=None)
            # Interruptible backoff: a SIGTERM (or stop()) during the
            # sleep ends supervision immediately instead of waiting out
            # up to backoff_max and respawning a child the signal would
            # never reach.
            if self._stop.wait(backoff) or self._stopping:
                self._write_report(final="stopped")
                return code if code is not None else 0
            # A child that survived the whole window earns a backoff
            # reset; a fast crasher keeps escalating.
            if uptime >= self.restart_window:
                backoff = self.backoff_initial
            else:
                backoff = min(backoff * self.backoff_factor,
                              self.backoff_max)

    def _spawn(self) -> subprocess.Popen:
        # Reset the heartbeat clock so a slow-starting child is not
        # instantly declared hung from a previous incarnation's mtime.
        if self.heartbeat_file:
            try:
                with open(self.heartbeat_file, "a"):
                    pass
                os.utime(self.heartbeat_file, None)
            except OSError:
                pass
        return subprocess.Popen(self.child_argv, env=self.env)

    def _watch(self, child: subprocess.Popen, started: float) -> str:
        """Block until the child exits or hangs; returns the reason
        (``"exit"`` or ``"hang"``, the latter after a SIGKILL).

        Heartbeat freshness lives in one clock domain: the supervisor
        remembers the last mtime it *saw* and the monotonic instant it
        changed, so staleness is a pure monotonic delta.  The absolute
        mtime is never compared against ``time.time()`` — an NTP step
        on either clock shifts every observed mtime equally and the
        deltas are unaffected.
        """
        last_mtime = self._stat_mtime()
        fresh_at = started  # monotonic instant of the last observed beat
        while True:
            if child.poll() is not None:
                return "exit"
            if self.heartbeat_file and not self._stopping:
                mtime = self._stat_mtime()
                now = time.monotonic()
                if mtime is None or mtime != last_mtime:
                    # Changed = the child touched it; unreadable =
                    # indeterminate, conservatively treated as fresh
                    # (a vanished file must not look like a hang).
                    last_mtime = mtime
                    fresh_at = now
                if now - fresh_at > self.hang_timeout:
                    try:
                        child.kill()
                    except OSError:
                        pass
                    child.wait()
                    return "hang"
            time.sleep(self.poll_interval)

    def _stat_mtime(self) -> Optional[float]:
        """The heartbeat file's raw mtime (None when unreadable); only
        ever compared against its own previous value."""
        if not self.heartbeat_file:
            return None
        try:
            return os.stat(self.heartbeat_file).st_mtime
        except OSError:
            return None

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "restarts": list(self.restarts),
            "restart_count": len(self.restarts),
            "hang_timeout": self.hang_timeout,
            "max_restarts": self.max_restarts,
            "restart_window": self.restart_window,
        }

    def _write_report(self, final: Optional[str]) -> None:
        if not self.report_path:
            return
        doc = dict(self.snapshot(), final=final,
                   child_argv=self.child_argv)
        tmp = self.report_path + ".tmp"
        try:
            with open(tmp, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.report_path)
        except OSError:
            pass
