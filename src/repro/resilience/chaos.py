"""Unified fault injection for the whole pipeline.

Every layer that can fail in production exposes a *named injection
point*; tests and chaos drills arm a :class:`ChaosPlan` and the points
misbehave on cue while the disarmed hot path stays a single ``is
None`` check:

========================  ==================================================
point                     fires in
========================  ==================================================
``ir.parse``              :func:`repro.ir.parser.parse_nest` /
                          ``parse_imperfect``
``deps.analysis``         :func:`repro.deps.analysis.analyze`
``legality``              :meth:`repro.core.legality_cache.LegalityCache.legality`
``compiled.codegen``      :class:`repro.runtime.compiled.CompiledNest`
                          construction (code generation + exec-compile)
``service.dispatch``      :class:`repro.service.server.TransformationService`
                          request handling
``pool.worker``           :func:`repro.parallel.worker.worker_main`, once
                          per shard task
========================  ==================================================

A plan is a comma-separated spec, armed programmatically
(:func:`arm`), from the environment (:func:`arm_from_env`, reading
``REPRO_CHAOS``) or from the CLI (``repro serve --chaos SPEC``)::

    SPEC  := RULE ("," RULE)*
    RULE  := POINT ":" KIND [":" TIMES [":" ARG]]
    KIND  := "error" | "crash" | "hang" | "drop"
    TIMES := <int>            -- firings before the rule exhausts
           | "p" <float>      -- fire with this probability instead
                                (seeded by REPRO_CHAOS_SEED)
    ARG   := <float>          -- hang duration in seconds (default 30)

Kinds: ``error`` raises :class:`ChaosError` (a typed
:class:`~repro.util.errors.ReproError` the service answers with the
retryable ``unavailable`` code); ``crash`` kills the process via
``os._exit`` exactly as a segfaulting worker would; ``hang`` sleeps
inside the point, long enough to trip timeouts, stall backstops or the
supervisor's heartbeat; ``drop`` is consumed by the service transport
*after* executing the request — the work happens, the response line is
never written (a lost-reply fault the idempotent retry layer must
absorb).

Count-based rules are deterministic: the first ``TIMES`` arrivals at
the point fire, later ones pass through.  Firing counts persist to the
``REPRO_CHAOS_STATE`` file (when set), so a supervised child that
crashed on its budgeted firing does **not** crash again after restart —
without the state file every ``crash`` rule would be a crash loop.

:class:`FaultPlan` and its hooks — the PR-3 pool-only fault layer —
now live here; :mod:`repro.parallel.faults` re-exports them unchanged.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.util.errors import ReproError

#: Every injection point a pipeline layer consults.
POINTS = ("ir.parse", "deps.analysis", "legality", "compiled.codegen",
          "service.dispatch", "pool.worker")

KINDS = ("error", "crash", "hang", "drop")

#: Exit status used by injected crashes; chosen to be distinguishable
#: from interpreter deaths in worker/supervisor logs (the pool and the
#: supervisor treat every abnormal death the same way).
CRASH_EXIT_CODE = 87

ENV_SPEC = "REPRO_CHAOS"
ENV_SEED = "REPRO_CHAOS_SEED"
ENV_STATE = "REPRO_CHAOS_STATE"


class ChaosError(ReproError):
    """An injected fault (kind ``error``).

    Derives from :class:`~repro.util.errors.ReproError` so it travels
    every path a real transient failure would, but the service maps it
    to the retryable ``unavailable`` code instead of ``bad-input``.
    """


class ChaosSpecError(ReproError):
    """A malformed ``--chaos`` / ``REPRO_CHAOS`` spec string."""


class Rule:
    """One ``point:kind[:times[:arg]]`` clause of a plan."""

    __slots__ = ("point", "kind", "times", "probability", "arg", "fired")

    def __init__(self, point: str, kind: str, times: Optional[int] = 1,
                 probability: Optional[float] = None,
                 arg: Optional[float] = None):
        if point not in POINTS:
            raise ChaosSpecError(
                f"unknown injection point {point!r}; expected one of "
                + ", ".join(POINTS))
        if kind not in KINDS:
            raise ChaosSpecError(
                f"unknown fault kind {kind!r}; expected one of "
                + ", ".join(KINDS))
        self.point = point
        self.kind = kind
        self.times = times              # None = unlimited
        self.probability = probability  # None = count-based
        self.arg = arg
        self.fired = 0

    @property
    def key(self) -> str:
        return f"{self.point}:{self.kind}"

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def __repr__(self):
        sel = (f"p={self.probability}" if self.probability is not None
               else f"times={self.times}")
        return (f"Rule({self.key}, {sel}, fired={self.fired}"
                + (f", arg={self.arg}" if self.arg is not None else "")
                + ")")


def parse_spec(spec: str) -> List[Rule]:
    """Parse a chaos spec string into rules (see the module docstring
    for the grammar)."""
    rules: List[Rule] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ChaosSpecError(
                f"bad chaos clause {clause!r}; expected "
                f"point:kind[:times[:arg]]")
        point, kind = parts[0].strip(), parts[1].strip()
        times: Optional[int] = 1
        probability: Optional[float] = None
        if len(parts) >= 3:
            sel = parts[2].strip()
            try:
                if sel.startswith("p"):
                    probability, times = float(sel[1:]), None
                elif sel == "*":
                    times = None
                else:
                    times = int(sel)
            except ValueError:
                raise ChaosSpecError(
                    f"bad times/probability {sel!r} in {clause!r}") from None
        arg = None
        if len(parts) == 4:
            try:
                arg = float(parts[3].strip())
            except ValueError:
                raise ChaosSpecError(
                    f"bad argument {parts[3]!r} in {clause!r}") from None
        rules.append(Rule(point, kind, times=times,
                          probability=probability, arg=arg))
    return rules


class ChaosPlan:
    """An armed set of rules plus the deterministic RNG and the
    cross-restart firing-count state."""

    def __init__(self, rules: Iterable[Rule], seed: int = 0,
                 state_path: Optional[str] = None):
        self.rules = list(rules)
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.state_path = state_path
        if state_path:
            self._load_state()

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0,
                  state_path: Optional[str] = None) -> "ChaosPlan":
        return cls(parse_spec(spec), seed=seed, state_path=state_path)

    # -- cross-restart persistence ------------------------------------

    def _load_state(self) -> None:
        try:
            with open(self.state_path) as fh:
                doc = json.load(fh)
            fired = doc.get("fired", {})
        except (OSError, ValueError):
            return  # no state yet (or corrupt): start fresh
        for rule in self.rules:
            rule.fired = int(fired.get(rule.key, 0))

    def _save_state(self) -> None:
        if not self.state_path:
            return
        doc = {"fired": {r.key: r.fired for r in self.rules}}
        tmp = self.state_path + ".tmp"
        try:
            with open(tmp, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, self.state_path)
        except OSError:
            pass  # injection must never fail because bookkeeping did

    # -- firing --------------------------------------------------------

    def _select(self, point: str, kinds: Tuple[str, ...]) -> Optional[Rule]:
        """Consume one firing of the first live matching rule, persist
        the count, and return the rule (None = pass through)."""
        for rule in self.rules:
            if rule.point != point or rule.kind not in kinds:
                continue
            if rule.probability is not None:
                if self.rng.random() >= rule.probability:
                    continue
            elif rule.exhausted():
                continue
            rule.fired += 1
            self._save_state()
            if _obs.enabled():
                get_metrics().counter(
                    f"chaos.injected.{rule.point}.{rule.kind}").inc()
                _obs.event("chaos.fired", point=rule.point,
                           kind=rule.kind)
            return rule
        return None

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready report of the plan: per-rule firing counts."""
        return {
            "seed": self.seed,
            "rules": [{"point": r.point, "kind": r.kind,
                       "times": r.times, "probability": r.probability,
                       "arg": r.arg, "fired": r.fired}
                      for r in self.rules],
        }


_PLAN: Optional[ChaosPlan] = None


def arm(plan: ChaosPlan) -> ChaosPlan:
    """Install *plan* process-wide (forked workers inherit it)."""
    global _PLAN
    _PLAN = plan
    return plan


def disarm() -> None:
    global _PLAN
    _PLAN = None


def current_plan() -> Optional[ChaosPlan]:
    return _PLAN


def arm_from_env() -> Optional[ChaosPlan]:
    """Arm from ``REPRO_CHAOS`` (+ ``REPRO_CHAOS_SEED`` /
    ``REPRO_CHAOS_STATE``); returns the plan, or None when unset."""
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        return None
    seed = int(os.environ.get(ENV_SEED, "0") or 0)
    return arm(ChaosPlan.from_spec(
        spec, seed=seed, state_path=os.environ.get(ENV_STATE) or None))


def inject(point: str) -> None:
    """The pipeline-side hook: act out any armed ``error``/``crash``/
    ``hang`` rule for *point*.  ``drop`` rules are transport semantics
    and are consumed separately via :func:`decide`."""
    plan = _PLAN
    if plan is None:
        return
    rule = plan._select(point, ("error", "crash", "hang"))
    if rule is None:
        return
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if rule.kind == "hang":
        time.sleep(rule.arg if rule.arg is not None else 30.0)
        return
    raise ChaosError(f"chaos: injected fault at {point} "
                     f"(firing {rule.fired}"
                     + (f" of {rule.times}" if rule.times else "") + ")")


def decide(point: str, kind: str) -> bool:
    """Consume one firing of a *kind* rule at *point* without acting it
    out; the caller implements the semantics (the service transport
    uses this for ``drop`` — execute, then lose the reply)."""
    plan = _PLAN
    if plan is None:
        return False
    return plan._select(point, (kind,)) is not None


def snapshot() -> Optional[Dict[str, object]]:
    """The armed plan's report, or None when disarmed."""
    return _PLAN.snapshot() if _PLAN is not None else None


# ---------------------------------------------------------------------------
# The PR-3 pool fault layer (moved here verbatim; repro.parallel.faults
# re-exports these names).  Index-addressed worker faults complement the
# point-addressed rules above: a FaultPlan perturbs specific candidates
# of specific worker generations, which the pool differential tests
# need; a ChaosPlan perturbs layers.
# ---------------------------------------------------------------------------

class FaultPlan:
    """A deterministic script of worker misbehavior.

    ``crash_indices`` — candidate indices whose evaluation dies via
    ``os._exit`` (no cleanup, no "done" sentinel: a genuine crash as the
    pool observes it).  ``hang_indices`` — candidate indices that sleep
    ``hang_seconds`` inside the scored region, to trip per-candidate
    timeouts or the pool's stall backstop.  ``kinds`` limits which
    worker generations misbehave (``"primary"`` for a level's first
    dispatch, ``"requeue"`` for the single retry worker).
    """

    def __init__(self, crash_indices: Iterable[int] = (),
                 hang_indices: Iterable[int] = (),
                 hang_seconds: float = 30.0,
                 kinds: Iterable[str] = ("primary",)):
        self.crash_indices = frozenset(crash_indices)
        self.hang_indices = frozenset(hang_indices)
        self.hang_seconds = float(hang_seconds)
        self.kinds = frozenset(kinds)


_FAULT_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    global _FAULT_PLAN
    _FAULT_PLAN = plan


def clear() -> None:
    global _FAULT_PLAN
    _FAULT_PLAN = None


def current() -> Optional[FaultPlan]:
    return _FAULT_PLAN


def maybe_crash(kind: str, index: int) -> None:
    """Worker hook, called before each candidate evaluation."""
    plan = _FAULT_PLAN
    if plan is not None and kind in plan.kinds and \
            index in plan.crash_indices:
        os._exit(CRASH_EXIT_CODE)


def maybe_hang(kind: str, index: int) -> None:
    """Worker hook, called inside the timed scoring region."""
    plan = _FAULT_PLAN
    if plan is not None and kind in plan.kinds and \
            index in plan.hang_indices:
        time.sleep(plan.hang_seconds)
