"""One fleet worker: a supervised ``repro serve --tcp`` child.

A :class:`WorkerHandle` composes the PR-5 parts end to end:

* the child is a real ``python -m repro serve --tcp`` process with a
  heartbeat file, periodic checkpointing and a fixed port;
* a :class:`~repro.resilience.supervisor.Supervisor` (run on a daemon
  thread — its loop is blocking) restarts the child on crash or hang
  with backoff, warm-restores it from its last checkpoint via
  ``--checkpoint``, and trips the crash-loop breaker on flapping;
* a :class:`~repro.resilience.retry.RetryingClient` is the router's
  hop to the worker: it reconnects across supervised restarts and
  carries the router's idempotency key on every resend, so a request
  that was in flight when the child died is *replayed*, never
  re-executed.

A worker whose supervisor gives up (breaker tripped) or whose client
exhausts its retry policy is *permanently* dead; the router then moves
its hash range to the survivors.  Transient deaths (the supervisor
restarts the child within the client's retry budget) keep the worker's
affinity — and its checkpoint-restored warm state.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.obs import trace as _obs
from repro.resilience.retry import RetryPolicy, RetryingClient
from repro.resilience.supervisor import CrashLoopError, Supervisor
from repro.service.protocol import ServiceError


def _free_port(host: str = "127.0.0.1") -> int:
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _child_env() -> Dict[str, str]:
    """The child's environment, with this package importable: the fleet
    must work from a source checkout (PYTHONPATH=src) as well as an
    installed package."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(
        os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


class WorkerHandle:
    """Spawn, supervise and talk to one service worker."""

    def __init__(self, index: int, directory: str, *,
                 host: str = "127.0.0.1",
                 jobs: int = 1,
                 hang_timeout: float = 10.0,
                 max_restarts: int = 5,
                 restart_window: float = 60.0,
                 checkpoint_every: int = 25,
                 request_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 attempt_timeout: Optional[float] = 10.0,
                 extra_args: Optional[List[str]] = None):
        self.index = index
        self.host = host
        self.port = _free_port(host)
        self.heartbeat = os.path.join(directory, f"w{index}.hb")
        self.checkpoint = os.path.join(directory, f"w{index}.ckpt")
        self.report = os.path.join(directory, f"w{index}.report.json")
        argv = [sys.executable, "-m", "repro", "serve", "--tcp",
                "--host", host, "--port", str(self.port),
                "--heartbeat-file", self.heartbeat,
                "--hang-timeout", str(hang_timeout),
                "--checkpoint", self.checkpoint,
                "--checkpoint-every", str(checkpoint_every)]
        if request_timeout is not None:
            argv += ["--request-timeout", str(request_timeout)]
        if jobs > 1:
            argv += ["--jobs", str(jobs)]
        extra = list(extra_args or ())
        if _obs.enabled() and "--trace-json" not in extra:
            # Tracing in the parent turns the whole fleet on: each child
            # enables its own tracer (``--trace-json`` does that in
            # ``main()``), so incoming trace contexts are adopted and
            # spans ship back for stitching.  With tracing off nothing
            # is added and the children run uninstrumented.
            extra += ["--trace-json",
                      os.path.join(directory, f"w{index}.trace.jsonl")]
        if "--chaos" in extra and "--chaos-state" not in extra:
            # Firing counts are per-process state; sharing one file
            # across workers would make them steal each other's
            # budgeted faults.
            extra += ["--chaos-state",
                      os.path.join(directory, f"w{index}.chaos")]
        argv += extra
        self.supervisor = Supervisor(
            argv,
            heartbeat_file=self.heartbeat,
            hang_timeout=hang_timeout,
            max_restarts=max_restarts,
            restart_window=restart_window,
            report_path=self.report,
            env=_child_env())
        self.client = RetryingClient.tcp(
            host, self.port,
            policy=retry_policy or RetryPolicy(
                attempts=8, backoff_initial=0.1, backoff_max=2.0,
                budget=60.0),
            client_id=f"fleet-w{index}",
            attempt_timeout=attempt_timeout)
        #: One outstanding request per worker: the child processes
        #: serially anyway, and the RetryingClient is not re-entrant.
        self.lock = threading.Lock()
        self.alive = False
        self.exit_reason: Optional[str] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.alive = True
        self._thread = threading.Thread(
            target=self._supervise, name=f"fleet-supervisor-{self.index}",
            daemon=True)
        self._thread.start()

    def _supervise(self) -> None:
        try:
            code = self.supervisor.run()
            self.exit_reason = f"exit:{code}"
        except CrashLoopError as exc:
            self.exit_reason = f"crash-loop: {exc}"
        except Exception as exc:  # pragma: no cover — defensive
            self.exit_reason = f"{type(exc).__name__}: {exc}"
        finally:
            self.alive = False

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the child answers a ping (raises on deadline).

        A cheap accept-probe races ahead of the retrying ping so a
        slow-starting child costs polling, not retry backoff."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                socket.create_connection((self.host, self.port),
                                         timeout=0.5).close()
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        while True:
            try:
                with self.lock:
                    self.client.request("ping")
                return
            except (ServiceError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)

    def child_pid(self) -> Optional[int]:
        """The current child's pid (for chaos drills)."""
        child = self.supervisor._child
        return child.pid if child is not None and child.poll() is None \
            else None

    def kill_child(self, signum: int = signal.SIGKILL) -> bool:
        """SIGKILL the current child (the supervisor restarts it)."""
        pid = self.child_pid()
        if pid is None:
            return False
        try:
            os.kill(pid, signum)
        except OSError:
            return False
        return True

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful teardown: stop the supervisor (interrupting any
        backoff), SIGTERM the child so it drains, close the client."""
        self.alive = False
        try:
            self.client.close(shutdown=False)
        except Exception:
            pass
        self.supervisor.stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "port": self.port,
            "alive": self.alive,
            "exit_reason": self.exit_reason,
            "restarts": len(self.supervisor.restarts),
            "client": dict(self.client.counters),
        }
