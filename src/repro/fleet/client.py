"""A client for the fleet, in-process or over TCP.

Two shapes, one API (mirroring :class:`ServiceClient`):

* ``FleetClient.local(n, **worker_options)`` — spawn and own an
  in-process :class:`~repro.fleet.router.FleetRouter`: the caller gets
  content-affinity routing, supervised workers and failover without a
  front-end port.  ``close()`` stops the fleet.
* ``FleetClient.connect(host, port)`` — talk to a running ``repro
  serve --fleet N --tcp`` front-end over the ordinary service protocol
  (a retrying transport with idempotency keys; the front-end does the
  routing).

Either way: ``request(op, **params)`` returns ``result`` or raises
:class:`~repro.service.protocol.ServiceError`; ``replay(requests)``
runs a script and returns raw responses in script order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.fleet.router import FleetRouter
from repro.resilience.retry import RetryPolicy, RetryingClient


class FleetClient:
    """Route requests into a fleet (owned locally or dialed remotely)."""

    def __init__(self, router: Optional[FleetRouter] = None,
                 transport: Optional[RetryingClient] = None):
        if (router is None) == (transport is None):
            raise ValueError(
                "FleetClient needs exactly one of router / transport")
        self._router = router
        self._transport = transport

    # -- constructors ------------------------------------------------------

    @classmethod
    def local(cls, n: int, **worker_options: Any) -> "FleetClient":
        """Start an in-process fleet of *n* supervised workers."""
        router = FleetRouter(n, **worker_options)
        router.start()
        return cls(router=router)

    @classmethod
    def connect(cls, host: str, port: int,
                policy: Optional[RetryPolicy] = None,
                attempt_timeout: Optional[float] = 30.0) -> "FleetClient":
        """Dial a ``repro serve --fleet N --tcp`` front-end."""
        return cls(transport=RetryingClient.tcp(
            host, port, policy=policy, attempt_timeout=attempt_timeout))

    # -- requests ----------------------------------------------------------

    def request_raw(self, op: str,
                    params: Optional[Dict[str, Any]] = None,
                    req_id: Optional[Any] = None) -> dict:
        if self._router is not None:
            return self._router.request_raw(op, params, req_id=req_id)
        return self._transport.request_raw(op, params, req_id=req_id)

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        if self._router is not None:
            return self._router.request(op, **params)
        return self._transport.request(op, **params)

    def replay(self, requests: Iterable[dict]) -> List[dict]:
        if self._router is not None:
            return self._router.replay(requests)
        return self._transport.replay(requests)

    # -- lifecycle ---------------------------------------------------------

    def close(self, shutdown: bool = True) -> None:
        if self._router is not None:
            self._router.stop()
        else:
            self._transport.close(shutdown=shutdown)

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
