"""The fleet router: N supervised workers behind one request API.

``FleetRouter(n)`` spawns *n* :class:`~repro.fleet.worker.WorkerHandle`
workers — each a supervised ``repro serve --tcp`` child with heartbeat,
crash-loop breaker and checkpoint/warm-restore — and routes every
request by the content hash of its nest text
(:func:`~repro.fleet.ring.content_key`, the same ``(text, sink)``
tuple ``WarmState`` keys its parse memo by).  Affinity is the point:
each worker's parse/analysis/legality caches shard the corpus instead
of all workers slowly re-deriving all of it.

Failure model, in increasing severity:

* **child crash/hang** — the worker's supervisor restarts it
  (warm-restored from its checkpoint) and the worker's
  :class:`~repro.resilience.retry.RetryingClient` reconnects and
  resends with the router's idempotency key; the router never notices,
  and affinity is preserved;
* **worker death** (crash-loop breaker tripped, retry policy
  exhausted) — the router marks the worker dead, moves its hash range
  to the survivors (:meth:`~repro.fleet.ring.HashRing.fail` — only the
  dead worker's slots move), and replays the in-flight request to the
  new owner under the *same* idem key, so at-least-once re-routing
  stays exactly-once execution;
* **last worker death** — :class:`~repro.fleet.ring.FleetError`.

Requests for different workers proceed concurrently (the router is
thread-safe; :meth:`replay` pumps each worker from its own thread), so
fleet throughput scales with worker count even though each individual
worker processes serially.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.fleet.ring import FleetError, HashRing, route_key
from repro.fleet.worker import WorkerHandle
from repro.obs import distributed as _dist
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.service import protocol
from repro.service.protocol import (
    SHUTTING_DOWN,
    UNAVAILABLE,
    ServiceError,
    error_response,
    ok_response,
)


class FleetRouter:
    """Spawn, route across, and fail over a fleet of service workers."""

    def __init__(self, n: int, *, directory: Optional[str] = None,
                 slots: int = 64, router_id: Optional[str] = None,
                 workers: Optional[List[Any]] = None,
                 **worker_options: Any):
        if workers is None and n < 1:
            raise ValueError(f"fleet size must be >= 1, got {n}")
        if workers is None:
            if directory is None:
                directory = tempfile.mkdtemp(prefix="repro-fleet-")
            else:
                os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.router_id = router_id or f"fleet-{id(self) & 0xffffff:x}"
        # Injectable workers keep the failover/idem logic unit-testable
        # without real processes.
        self.workers: List[Any] = workers if workers is not None else [
            WorkerHandle(i, directory, **worker_options)
            for i in range(n)]
        self.ring = HashRing(len(self.workers), slots=slots)
        self._lock = threading.Lock()
        self._seq = 0
        self._rr = 0
        self._draining = False
        self.counters: Dict[str, int] = {
            "requests": 0, "keyless": 0, "failovers": 0,
            "reassigned_slots": 0,
        }
        self.routed: Dict[int, int] = {w.index: 0 for w in self.workers}

    # -- lifecycle ---------------------------------------------------------

    def start(self, timeout: float = 60.0) -> "FleetRouter":
        """Start every worker and wait until all answer a ping."""
        for worker in self.workers:
            worker.start()
        errors: List[BaseException] = []

        def ready(worker) -> None:
            try:
                worker.wait_ready(timeout)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=ready, args=(w,), daemon=True)
                   for w in self.workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            self.stop()
            raise FleetError(
                f"{len(errors)} worker(s) failed to start: {errors[0]}")
        if _obs.enabled():
            get_metrics().gauge("fleet.workers_alive").set(
                len(self.ring.owners()))
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop every worker (supervisors interrupted, children
        SIGTERMed to drain)."""
        self._draining = True
        threads = [threading.Thread(target=w.stop, args=(timeout,),
                                    daemon=True) for w in self.workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- routing -----------------------------------------------------------

    def _pick(self, key: Optional[int]) -> Any:
        with self._lock:
            if key is not None:
                index = self.ring.owner(key)
            else:
                owners = self.ring.owners()
                if not owners:
                    raise FleetError("no workers alive")
                index = owners[self._rr % len(owners)]
                self._rr += 1
                self.counters["keyless"] += 1
            self.routed[index] = self.routed.get(index, 0) + 1
        if _obs.enabled():
            get_metrics().counter(f"fleet.routed.w{index}").inc()
        return self.workers[index]

    def _fail_worker(self, worker, exc: BaseException) -> None:
        """Move a dead worker's hash range to the survivors (raises
        :class:`FleetError` when it was the last one)."""
        with self._lock:
            if not self.ring.alive[worker.index]:
                return  # another thread already failed it over
            moved = self.ring.fail(worker.index)  # may raise FleetError
            self.counters["failovers"] += 1
            self.counters["reassigned_slots"] += len(moved)
        worker.alive = False
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("fleet.failovers").inc()
            metrics.counter("fleet.reassigned_slots").inc(len(moved))
            metrics.gauge("fleet.workers_alive").set(
                len(self.ring.owners()))
            _obs.event("fleet.failover", worker=worker.index,
                       moved_slots=len(moved), error=str(exc))
        # Tear the carcass down off the request path (stop() joins the
        # supervisor thread, which can take seconds).
        threading.Thread(target=worker.stop, daemon=True).start()

    def request_raw(self, op: str,
                    params: Optional[Dict[str, Any]] = None,
                    req_id: Optional[Any] = None,
                    idem: Optional[str] = None) -> dict:
        """One logical request → one raw response, routed by content
        affinity, riding out supervised restarts, failing over to a
        survivor (same idem key) when the owner dies for good."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            draining = self._draining
        if op == "shutdown":
            return ok_response(req_id, self._begin_shutdown())
        if draining:
            return error_response(req_id, SHUTTING_DOWN,
                                  "fleet is draining")
        if op == "stats":
            return ok_response(req_id, self.fleet_stats())
        if op == "telemetry":
            return ok_response(req_id, self.fleet_telemetry())
        # Counted after the control-plane intercepts so the routed
        # request count matches what the workers actually executed
        # (``repro stats`` checks exactly that sum).
        with self._lock:
            self.counters["requests"] += 1
        if _obs.enabled():
            get_metrics().counter("fleet.requests").inc()
        if idem is None:
            idem = f"{self.router_id}:{seq}"
        key = route_key(op, params)
        with _obs.span("fleet.request", op=op):
            while True:
                worker = self._pick(key)
                # The outgoing trace context is derived per attempt, so
                # a failover's replay parents to the same routing span.
                ctx = _dist.current_context()
                kwargs: Dict[str, Any] = {"req_id": req_id, "idem": idem}
                if ctx is not None:
                    kwargs["trace"] = ctx
                try:
                    with worker.lock:
                        return worker.client.request_raw(
                            op, params, **kwargs)
                except (ServiceError, OSError) as exc:
                    # The worker's own retry policy is exhausted: that
                    # worker is gone.  Reassign and replay.
                    self._fail_worker(worker, exc)

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One routed round-trip; returns ``result`` or raises
        :class:`ServiceError` with the typed code."""
        response = self.request_raw(op, params)
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServiceError(error.get("code", protocol.INTERNAL),
                           error.get("message", "unknown error"))

    def replay(self, requests: Iterable[dict],
               progress: Optional[Callable[[int], None]] = None,
               ) -> List[dict]:
        """Replay a request script, pumping each worker's share from
        its own thread (affinity partitions the script; concurrency
        across workers is where fleet throughput comes from).  Returns
        responses in script order.  *progress* (if given) is called
        with each completed script index, from pump threads."""
        requests = list(requests)
        results: List[Optional[dict]] = [None] * len(requests)
        buckets: Dict[int, List[int]] = {}
        for idx, req in enumerate(requests):
            key = route_key(req.get("op", ""), req.get("params"))
            with self._lock:
                if key is not None:
                    owner = self.ring.owner(key)
                else:
                    owners = self.ring.owners()
                    owner = owners[self._rr % len(owners)]
                    self._rr += 1
            buckets.setdefault(owner, []).append(idx)

        def pump(indices: List[int]) -> None:
            for i in indices:
                req = requests[i]
                try:
                    results[i] = self.request_raw(
                        req["op"], req.get("params"),
                        req_id=req.get("id"))
                except FleetError as exc:
                    results[i] = error_response(
                        req.get("id"), UNAVAILABLE, str(exc))
                if progress is not None:
                    progress(i)

        threads = [threading.Thread(target=pump, args=(indices,),
                                    name=f"fleet-pump-{owner}")
                   for owner, indices in buckets.items()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results  # type: ignore[return-value]

    # -- control plane -----------------------------------------------------

    def _begin_shutdown(self) -> Dict[str, Any]:
        with self._lock:
            already = self._draining
            self._draining = True
        if not already:
            threading.Thread(target=self.stop, daemon=True).start()
        return {"stopping": True, "reason": "shutdown request",
                "workers": len(self.workers)}

    def fleet_stats(self) -> Dict[str, Any]:
        """The fleet-level ``stats`` document: router counters, ring
        state, and each alive worker's own stats (fetched through its
        client — a dead worker reports its local snapshot only)."""
        workers = []
        for worker in self.workers:
            doc = worker.snapshot()
            if worker.alive and self.ring.alive[worker.index]:
                try:
                    with worker.lock:
                        doc["stats"] = worker.client.request("stats")
                except (ServiceError, OSError) as exc:
                    doc["stats_error"] = str(exc)
            workers.append(doc)
        if _obs.enabled():
            metrics = get_metrics()
            for doc in workers:
                metrics.gauge(
                    f"fleet.worker.{doc['index']}.restarts").set(
                        doc["restarts"])
        return {
            "fleet": {
                "router_id": self.router_id,
                "size": len(self.workers),
                "alive": len(self.ring.owners()),
                "counters": dict(self.counters),
                "routed": {str(k): v
                           for k, v in sorted(self.routed.items())},
                "ring": self.ring.snapshot(),
            },
            "workers": workers,
        }

    def fleet_telemetry(self) -> Dict[str, Any]:
        """The fleet-wide ``telemetry`` document: each alive worker's
        observability snapshot, the router's own (which, in the fleet
        front end, shares this process's metrics registry), and a merged
        section — counters summed across workers, gauges tagged per
        worker, latency histograms bucket-merged with p50/p95/p99
        re-estimated (see
        :func:`repro.obs.distributed.merge_metric_snapshots`)."""
        per_worker: List[Dict[str, Any]] = []
        snapshots: List[Dict[str, Any]] = []
        labels: List[str] = []
        for worker in self.workers:
            if not (worker.alive and self.ring.alive[worker.index]):
                per_worker.append({"index": worker.index, "alive": False})
                continue
            try:
                with worker.lock:
                    snap = worker.client.request("telemetry")
            except (ServiceError, OSError) as exc:
                per_worker.append({"index": worker.index, "alive": True,
                                   "error": str(exc)})
                continue
            per_worker.append({"index": worker.index, "alive": True,
                               "telemetry": snap})
            if isinstance(snap.get("metrics"), dict):
                snapshots.append(snap["metrics"])
                labels.append(f"w{worker.index}")
        tracer = _obs.get_tracer()
        return {
            "router": {
                "router_id": self.router_id,
                "size": len(self.workers),
                "alive": len(self.ring.owners()),
                "counters": dict(self.counters),
                "enabled": _obs.enabled(),
                "metrics": get_metrics().snapshot(),
                "tracer": tracer.stats() if tracer is not None else None,
            },
            "workers": per_worker,
            "merged": _dist.merge_metric_snapshots(snapshots,
                                                   labels=labels),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Local-only router state (no remote stats round-trips)."""
        return {
            "router_id": self.router_id,
            "size": len(self.workers),
            "alive": len(self.ring.owners()),
            "counters": dict(self.counters),
            "routed": {str(k): v for k, v in sorted(self.routed.items())},
            "ring": self.ring.snapshot(),
            "workers": [w.snapshot() for w in self.workers],
        }
