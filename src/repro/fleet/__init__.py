"""Serving at fleet scale: N supervised workers, content-hash affinity.

One ``TransformationService`` process was the ceiling; this package is
the "millions of users" layer built from the parts PRs 3–5 left on the
bench.  ``FleetRouter`` spawns and supervises N workers (one
:class:`~repro.resilience.supervisor.Supervisor` each — heartbeat,
crash-loop breaker, checkpoint/warm-restore) and routes every request
by the content hash of its nest text, so each worker's warm
parse/analysis/legality state shards the corpus.  Worker death moves
only the dead worker's hash range to the survivors; in-flight requests
replay under their idempotency keys (exactly-once execution); the
supervised replacement warm-restores from its last checkpoint.

Entry points: ``repro serve --fleet N --tcp`` (the
:class:`~repro.fleet.frontend.FleetFrontEnd` behind one port),
:class:`FleetClient` (in-process fleet or TCP dial-in), and
``benchmarks/bench_fleet.py`` (throughput scaling + chaos-kill
differential, ``bench_fleet.json``).
"""

from repro.fleet.client import FleetClient
from repro.fleet.frontend import FleetFrontEnd
from repro.fleet.ring import FleetError, HashRing, content_key, route_key
from repro.fleet.router import FleetRouter
from repro.fleet.worker import WorkerHandle

__all__ = [
    "FleetClient",
    "FleetError",
    "FleetFrontEnd",
    "FleetRouter",
    "HashRing",
    "WorkerHandle",
    "content_key",
    "route_key",
]
