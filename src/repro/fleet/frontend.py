"""The fleet's TCP face: one port, N workers behind it.

``repro serve --fleet N --tcp`` binds a single listener and proxies
every NDJSON request line to the
:class:`~repro.fleet.router.FleetRouter`.  :class:`FleetFrontEnd`
implements the same transport duck-type as
:class:`~repro.service.server.TransformationService` (``ingest_bytes``
/ ``install_signal_handlers`` / ``run``), so the existing
:func:`~repro.service.server.serve_tcp` and
:func:`~repro.service.server.pump_frames` machinery — byte-capped
frames, UTF-8 validation, resync-at-newline, per-connection write
locks — serves the fleet without a parallel implementation.

Unlike the single service (whose processing loop is one thread by
design — SIGALRM budgets, fork discipline), the front-end dispatches
admitted requests from a small thread pool: requests routed to
*different* workers proceed concurrently, which is exactly the fleet's
throughput story.  Per-worker ordering is still serial (the router
holds one lock per worker).

Admission mirrors the service: a bounded queue, immediate typed
``backpressure`` on overflow, ``shutting-down`` once draining starts
(SIGTERM/SIGINT or a ``shutdown`` request), and everything admitted is
answered before :meth:`run` returns and the workers are stopped.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.fleet.ring import FleetError
from repro.fleet.router import FleetRouter
from repro.obs import distributed as _dist
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.service import protocol
from repro.service.protocol import (
    BACKPRESSURE,
    BAD_REQUEST,
    INTERNAL,
    SHUTTING_DOWN,
    UNAVAILABLE,
    ProtocolError,
    error_response,
    ok_response,
)


class FleetFrontEnd:
    """Admit NDJSON requests and dispatch them through a fleet router."""

    def __init__(self, router: FleetRouter, *, queue_max: int = 64,
                 dispatchers: Optional[int] = None):
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        self.router = router
        self.queue_max = queue_max
        self.dispatchers = dispatchers or max(2, 2 * len(router.workers))
        self._cond = threading.Condition()
        self._items: deque = deque()
        self._inflight = 0
        self._draining = False
        self.drain_reason: Optional[str] = None
        self.counters: Dict[str, int] = {
            "accepted": 0, "answered": 0, "backpressure": 0,
            "rejected_shutdown": 0,
        }

    # -- admission (transport threads) -------------------------------------

    def ingest_bytes(self, frame: bytes,
                     reply: Callable[[dict], None]) -> None:
        cap = protocol.max_frame_bytes()
        if len(frame) > cap:
            reply(error_response(
                None, BAD_REQUEST,
                f"frame of {len(frame)} bytes exceeds the {cap}-byte "
                f"limit (REPRO_MAX_FRAME_BYTES)"))
            return
        try:
            line = frame.decode("utf-8")
        except UnicodeDecodeError as exc:
            reply(error_response(None, BAD_REQUEST,
                                 f"frame is not valid UTF-8: {exc}"))
            return
        if line.strip():
            self.ingest(line, reply)

    def ingest(self, line: str, reply: Callable[[dict], None]) -> None:
        try:
            req_id, op, params, idem, trace = protocol.decode_request(line)
        except ProtocolError as exc:
            reply(error_response(getattr(exc, "request_id", None),
                                 exc.code, exc.message))
            return
        if op == "shutdown":
            # Answered at admission so the drain can refuse everything
            # after it; the router's own shutdown path stops workers.
            reply(ok_response(req_id, {"stopping": True,
                                       "reason": "shutdown request",
                                       "workers":
                                       len(self.router.workers)}))
            self.request_drain("shutdown request")
            return
        rejection = None
        with self._cond:
            if self._draining:
                self.counters["rejected_shutdown"] += 1
                rejection = error_response(
                    req_id, SHUTTING_DOWN,
                    f"fleet is draining ({self.drain_reason})")
            elif len(self._items) >= self.queue_max:
                self.counters["backpressure"] += 1
                rejection = error_response(
                    req_id, BACKPRESSURE,
                    f"request queue full ({self.queue_max}); retry later")
            else:
                self.counters["accepted"] += 1
                self._items.append((req_id, op, params, idem, trace,
                                    reply))
                depth = len(self._items)
                self._cond.notify()
        if rejection is not None:
            if _obs.enabled():
                get_metrics().counter(
                    "fleet.rejected."
                    + rejection["error"]["code"]).inc()
            reply(rejection)
            return
        if _obs.enabled():
            get_metrics().gauge("fleet.queue_depth").set(depth)

    def request_drain(self, reason: str) -> None:
        with self._cond:
            if not self._draining:
                self._draining = True
                self.drain_reason = reason
            self._cond.notify_all()

    def install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        signal.signal(signal.SIGTERM,
                      lambda s, f: self.request_drain("SIGTERM"))
        signal.signal(signal.SIGINT,
                      lambda s, f: self.request_drain("SIGINT"))

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._items and not self._draining:
                    self._cond.wait(0.1)
                if not self._items:
                    return  # draining and empty
                (req_id, op, params, idem, trace_in,
                 reply) = self._items.popleft()
                self._inflight += 1
            start = time.monotonic()
            enabled = _obs.enabled()
            # The admission span either adopts the client's trace
            # context or roots a fresh trace — the front end is where a
            # fleet request's stitched span tree begins.
            if enabled:
                cm = (_dist.adopt(trace_in, "fleet.admit", op=op)
                      if trace_in else
                      _dist.start_trace("fleet.admit", op=op))
            else:
                cm = _obs.span("fleet.admit", op=op)
            root_sp = None
            try:
                with cm as root_sp:
                    response = self.router.request_raw(
                        op, params, req_id=req_id, idem=idem)
            except FleetError as exc:
                response = error_response(req_id, UNAVAILABLE, str(exc))
            except Exception as exc:  # noqa: BLE001 — must answer
                response = error_response(
                    req_id, INTERNAL, f"{type(exc).__name__}: {exc}")
            if enabled:
                self._observe(op, response, trace_in, root_sp,
                              (time.monotonic() - start) * 1000.0)
            reply(response)
            with self._cond:
                self.counters["answered"] += 1
                self._inflight -= 1
                self._cond.notify_all()

    def _observe(self, op: str, response: dict,
                 trace_in: Optional[dict], root_sp: Any,
                 elapsed_ms: float) -> None:
        """Per-request telemetry: the op's SLO latency histogram, plus
        span plumbing — downstream spans piggybacked on the response are
        either shipped onward (the client sent a trace context) or
        folded into this process's collector (the front end is the trace
        root and will export the stitched tree itself)."""
        metrics = get_metrics()
        if op not in ("stats", "telemetry", "shutdown"):
            # Control-plane ops are kept out of the request counter so
            # it stays comparable to the workers' summed counts.
            metrics.counter("fleet.frontend.requests").inc()
        metrics.histogram(f"fleet.latency_ms.{op}").observe(elapsed_ms)
        child_spans = response.pop("spans", None)
        child_dropped = response.pop("spans_dropped", 0)
        tracer = _obs.get_tracer()
        if tracer is None or not isinstance(root_sp, _obs.Span):
            if child_spans or child_dropped:
                _dist.get_collector().add(child_spans, child_dropped)
            return
        if trace_in:
            extra = _dist.get_collector().drain(trace_in["id"])
            extra.extend(child_spans or ())
            spans, dropped = _dist.ship(tracer, root_sp, trace_in,
                                        extra=extra)
            if spans:
                response["spans"] = spans
            if dropped or child_dropped:
                response["spans_dropped"] = dropped + child_dropped
        elif child_spans or child_dropped:
            _dist.get_collector().add(child_spans, child_dropped)

    def run(self) -> None:
        """Serve until drained: every admitted request is answered,
        then the workers are stopped."""
        threads = [threading.Thread(target=self._dispatch_loop,
                                    name=f"fleet-dispatch-{i}",
                                    daemon=True)
                   for i in range(self.dispatchers)]
        for t in threads:
            t.start()
        with self._cond:
            while not (self._draining and not self._items
                       and self._inflight == 0):
                self._cond.wait(0.1)
        for t in threads:
            t.join(timeout=10.0)
        self.router.stop()

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._cond:
            doc = dict(self.counters, queue_depth=len(self._items),
                       inflight=self._inflight, draining=self._draining)
        doc["router"] = self.router.snapshot()
        return doc
