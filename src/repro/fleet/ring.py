"""Content-hash affinity: who owns which nest.

Warm state is the whole performance story of the service (PR 4
measured ~17x warm-vs-cold), and warm state is keyed by *content*: the
parse memo by ``(text, sink)``, the analysis memo by the structural
nest, the legality cache by dependence/step content.  Routing must
therefore preserve content affinity — every request about the same
nest text should land on the same worker, so that worker's caches
shard the corpus instead of every worker slowly re-deriving all of it.

:func:`content_key` hashes exactly the tuple ``WarmState``'s parse
memo keys by, so "same cache entry" and "same worker" coincide by
construction.  :class:`HashRing` maps the key space onto ``slots``
fixed buckets assigned round-robin across workers; on worker death
only the dead worker's slots move (reassigned round-robin across the
survivors), so the survivors' warm state is untouched — the minimal
reshuffle property that makes failover cheap.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.util.errors import ReproError


class FleetError(ReproError):
    """The fleet cannot serve: no workers remain alive."""


def content_key(text: str, sink: bool = False) -> int:
    """A stable integer content key for a nest request.

    Hashes the same ``(text, sink)`` tuple ``WarmState`` keys its parse
    memo by — byte-for-byte identical texts (the replay-workload case)
    share a key, anything else does not.  SHA-256 keeps the key stable
    across processes and Python hash randomization.
    """
    digest = hashlib.sha256(
        b"%d\x00%s" % (int(bool(sink)), text.encode("utf-8"))).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """``slots`` fixed hash buckets assigned across worker indices.

    The slot count is the granularity of failover: with S slots and N
    workers each worker owns ~S/N contiguous-in-assignment buckets,
    and a death moves only those.  Assignment is deterministic (initial
    round-robin, failover round-robin over survivors in index order),
    so every router instance given the same event history routes
    identically.
    """

    def __init__(self, workers: int, slots: int = 64):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if slots < workers:
            raise ValueError(
                f"slots ({slots}) must be >= workers ({workers})")
        self.slots = slots
        self.assignment: List[int] = [i % workers for i in range(slots)]
        self.alive: List[bool] = [True] * workers
        #: Total slots moved by :meth:`fail` calls (obs fodder).
        self.reassigned = 0

    # -- lookup ------------------------------------------------------------

    def slot(self, key: int) -> int:
        return key % self.slots

    def owner(self, key: int) -> int:
        """The worker index owning *key*'s slot."""
        worker = self.assignment[self.slot(key)]
        if not self.alive[worker]:  # pragma: no cover — fail() reassigns
            raise FleetError(f"slot owner {worker} is dead")
        return worker

    def owners(self) -> List[int]:
        """Alive worker indices, ascending."""
        return [i for i, up in enumerate(self.alive) if up]

    # -- failover ----------------------------------------------------------

    def fail(self, worker: int) -> Dict[int, int]:
        """Mark *worker* dead and move its slots to the survivors,
        round-robin in index order; returns ``{slot: new_owner}`` for
        the slots that moved.  Raises :class:`FleetError` when the last
        worker dies — there is nowhere left to route."""
        if not self.alive[worker]:
            return {}
        self.alive[worker] = False
        survivors = self.owners()
        if not survivors:
            raise FleetError(
                f"worker {worker} was the last alive; fleet exhausted")
        moved: Dict[int, int] = {}
        nxt = 0
        for slot, owner in enumerate(self.assignment):
            if owner == worker:
                self.assignment[slot] = survivors[nxt % len(survivors)]
                moved[slot] = self.assignment[slot]
                nxt += 1
        self.reassigned += len(moved)
        return moved

    # -- reporting ---------------------------------------------------------

    def load(self) -> Dict[int, int]:
        """Slots per alive worker (the static balance picture)."""
        counts: Dict[int, int] = {i: 0 for i in self.owners()}
        for owner in self.assignment:
            counts[owner] += 1
        return counts

    def snapshot(self) -> Dict[str, object]:
        return {
            "slots": self.slots,
            "alive": self.owners(),
            "dead": [i for i, up in enumerate(self.alive) if not up],
            "load": {str(k): v for k, v in sorted(self.load().items())},
            "reassigned": self.reassigned,
        }


def route_key(op: str, params: Optional[dict]) -> Optional[int]:
    """The routing key of a request, or None for keyless ops.

    Every op that carries a nest (``params.text``) routes by its
    content; control-plane ops (``ping``, ``stats``, ``shutdown``) and
    malformed params are keyless — any worker answers them identically,
    so the router spreads them round-robin.
    """
    if not params:
        return None
    text = params.get("text")
    if not isinstance(text, str):
        return None
    return content_key(text, bool(params.get("sink", False)))
