"""A simple parallel cost model: simulated makespan under P processors.

The paper motivates Parallelize/Coalesce with parallel machines but
reports no numbers; this model provides the measurable substrate.  Each
body execution costs one time unit.  A ``do`` loop serializes its
children; the *outermost* ``pardo`` loop distributes its iterations over
the ``P`` processors (LPT list scheduling of the actual per-iteration
costs, so imbalanced — e.g. triangular — inner work is modeled); deeper
``pardo`` loops run serially, as in OpenMP's default no-nested-parallelism
regime.  That choice is also what gives Coalesce its purpose: merging
two parallel block loops into one long ``pardo`` loop exposes all the
iterations to the scheduler at once.

``speedup = sequential_time / makespan`` then quantifies what a
transformation bought: e.g. the Figure 1 wavefront turns an O(n^2)
serial stencil into O(n) wavefronts of parallel work, and coalescing
two block loops into one long pardo loop improves load balance when
the iteration counts are small relative to P.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Mapping, Optional

from repro.expr.nodes import Expr
from repro.ir.loopnest import Loop, LoopNest, PARDO
from repro.runtime.interpreter import Interpreter
from repro.util.errors import ReproError
from repro.util.intmath import sign


class CostResult:
    """Makespan accounting for one simulated execution."""

    __slots__ = ("total_work", "makespan", "processors")

    def __init__(self, total_work: int, makespan: int, processors: int):
        self.total_work = total_work
        self.makespan = makespan
        self.processors = processors

    @property
    def speedup(self) -> float:
        return self.total_work / self.makespan if self.makespan else 1.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors

    def __repr__(self):
        return (f"CostResult(work={self.total_work}, "
                f"makespan={self.makespan}, P={self.processors}, "
                f"speedup={self.speedup:.2f}x)")


def _lpt_makespan(costs: List[int], processors: int) -> int:
    """Longest-processing-time-first list scheduling of independent
    tasks; exact enough for a cost model."""
    if not costs:
        return 0
    if processors <= 0:
        raise ValueError("need at least one processor")
    heap = [0] * min(processors, len(costs))
    heapq.heapify(heap)
    for cost in sorted(costs, reverse=True):
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + cost)
    return max(heap)


def simulate_makespan(nest: LoopNest, processors: int,
                      symbols: Optional[Mapping[str, int]] = None,
                      funcs: Optional[Mapping[str, Callable]] = None
                      ) -> CostResult:
    """Simulated runtime of *nest* on *processors* processors.

    Bounds are evaluated concretely (so *symbols* must bind every
    invariant); the body costs 1 unit per execution.
    """
    interp = Interpreter(nest, symbols=symbols, funcs=funcs)
    env: Dict[str, int] = dict(symbols or {})
    state: Dict[str, object] = {}

    def level_cost(depth: int, parallel_spent: bool) -> int:
        if depth == len(nest.loops):
            return 1
        lp = nest.loops[depth]
        lo = interp._eval(lp.lower, env, state, None)
        hi = interp._eval(lp.upper, env, state, None)
        step = interp._eval(lp.step, env, state, None)
        if step == 0:
            raise ReproError(f"loop {lp.index} has zero step")
        values = list(range(lo, hi + sign(step), step))
        use_parallel = lp.kind == PARDO and not parallel_spent
        costs: List[int] = []
        for v in values:
            env[lp.index] = v
            costs.append(level_cost(depth + 1,
                                    parallel_spent or use_parallel))
        env.pop(lp.index, None)
        if use_parallel:
            return _lpt_makespan(costs, processors)
        return sum(costs)

    makespan = level_cost(0, False)
    # Total work = body count, measured the same way with P = 1 logic:
    total = _total_work(nest, interp, env, state)
    return CostResult(total, makespan, processors)


def _total_work(nest, interp, env, state) -> int:
    def walk(depth: int) -> int:
        if depth == len(nest.loops):
            return 1
        lp = nest.loops[depth]
        lo = interp._eval(lp.lower, env, state, None)
        hi = interp._eval(lp.upper, env, state, None)
        step = interp._eval(lp.step, env, state, None)
        total = 0
        for v in range(lo, hi + sign(step), step):
            env[lp.index] = v
            total += walk(depth + 1)
        env.pop(lp.index, None)
        return total

    return walk(0)
