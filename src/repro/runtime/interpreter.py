"""A reference interpreter for perfect loop nests.

The interpreter is the semantic ground truth behind the whole test
suite: an iteration-reordering transformation is correct exactly when
the transformed nest computes the same final arrays as the original —
for *every* legal ``pardo`` schedule.  To that end ``pardo`` loops can be
executed in sequential, reversed or seeded-shuffled order
(:class:`Schedule`), so an illegal Parallelize shows up as a wrong
answer under some schedule.

Executions can record:

* the *iteration trace* — the tuple of original index-variable values at
  each body execution (after init statements run), used to check that a
  reordering respects a dependence partial order;
* the *address trace* — every (array, element, kind) access, which feeds
  the cache simulator.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.expr.nodes import (
    Add,
    Call,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
)
from repro.ir.loopnest import Assign, If, InitStmt, Loop, LoopNest, PARDO, Statement
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.runtime.arrays import Array
from repro.util.intmath import ceil_div, floor_div, sign
from repro.util.errors import ReproError

_RELATIONAL = {
    "le": lambda a, b: 1 if a <= b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "eq": lambda a, b: 1 if a == b else 0,
}


class Schedule:
    """Ordering policy for ``pardo`` loops.

    ``"seq"`` runs parallel loops forward (one legal schedule),
    ``"reverse"`` backwards, and ``"shuffle"`` in a seeded random
    permutation — three easy witnesses that the result of a legal
    transformation must not depend on parallel interleaving.
    """

    def __init__(self, policy: str = "seq", seed: int = 0):
        if policy not in ("seq", "reverse", "shuffle"):
            raise ValueError(f"unknown pardo policy {policy!r}")
        self.policy = policy
        self.seed = seed

    def order(self, values: List[int], depth: int) -> List[int]:
        if self.policy == "seq":
            return values
        if self.policy == "reverse":
            return list(reversed(values))
        rng = random.Random((self.seed * 1000003) ^ depth)
        shuffled = list(values)
        rng.shuffle(shuffled)
        return shuffled


class ExecutionResult:
    """Arrays and traces produced by one execution."""

    __slots__ = ("arrays", "iteration_trace", "address_trace", "body_count")

    def __init__(self, arrays: Dict[str, Array],
                 iteration_trace: Optional[List[Tuple[int, ...]]],
                 address_trace: Optional[List[Tuple[str, Tuple[int, ...], str]]],
                 body_count: int):
        self.arrays = arrays
        self.iteration_trace = iteration_trace
        self.address_trace = address_trace
        self.body_count = body_count


class Interpreter:
    """Executes a :class:`LoopNest` over concrete arrays and symbols."""

    def __init__(self, nest: LoopNest,
                 symbols: Optional[Mapping[str, int]] = None,
                 funcs: Optional[Mapping[str, Callable[..., int]]] = None,
                 schedule: Optional[Schedule] = None,
                 trace_vars: Optional[Sequence[str]] = None,
                 trace_addresses: bool = False,
                 max_iterations: Optional[int] = None):
        """*trace_vars* names the variables whose values are recorded per
        body execution (defaults to the nest's own loop indices — pass
        the *original* nest's indices when executing a transformed nest,
        so traces are comparable)."""
        if max_iterations is None:
            from repro.resilience.guards import limits
            max_iterations = limits().max_iterations
        self.nest = nest
        self.symbols = dict(symbols or {})
        self.funcs = dict(funcs or {})
        self.schedule = schedule or Schedule()
        self.trace_vars = tuple(trace_vars) if trace_vars is not None else None
        self.trace_addresses = trace_addresses
        self.max_iterations = max_iterations
        # Names written by the body are arrays even before first write.
        from repro.deps.analysis.references import inferred_array_names
        self._array_names = inferred_array_names(nest)

    def run(self, arrays: Mapping[str, Array]) -> ExecutionResult:
        """Execute on copies of *arrays*; the inputs are not mutated."""
        state = {name: arr.copy() for name, arr in arrays.items()}
        env: Dict[str, int] = dict(self.symbols)
        iteration_trace: Optional[List[Tuple[int, ...]]] = (
            [] if self.trace_vars is not None else None)
        address_trace = [] if self.trace_addresses else None
        counter = [0]
        with _obs.span("interpreter.run", depth=len(self.nest.loops),
                       traced=self.trace_addresses):
            self._run_level(0, env, state, iteration_trace, address_trace,
                            counter)
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("interpreter.runs").inc()
            metrics.counter("interpreter.iterations").inc(counter[0])
        return ExecutionResult(state, iteration_trace, address_trace,
                               counter[0])

    # -- loops -----------------------------------------------------------------

    def _run_level(self, depth: int, env, state, itrace, atrace, counter):
        if depth == len(self.nest.loops):
            self._run_body(env, state, itrace, atrace, counter)
            return
        lp = self.nest.loops[depth]
        lo = self._eval(lp.lower, env, state, atrace)
        hi = self._eval(lp.upper, env, state, atrace)
        step = self._eval(lp.step, env, state, atrace)
        if step == 0:
            raise ReproError(f"loop {lp.index} has zero step at run time")
        values = list(range(lo, hi + sign(step), step))
        if lp.kind == PARDO:
            values = self.schedule.order(values, depth)
        for v in values:
            env[lp.index] = v
            self._run_level(depth + 1, env, state, itrace, atrace, counter)
        env.pop(lp.index, None)

    def _run_body(self, env, state, itrace, atrace, counter):
        counter[0] += 1
        if counter[0] > self.max_iterations:
            raise ReproError(
                f"interpreter exceeded {self.max_iterations} iterations")
        for init in self.nest.inits:
            env[init.var] = self._eval(init.expr, env, state, atrace)
        if itrace is not None:
            vars_ = self.trace_vars or self.nest.indices
            itrace.append(tuple(env[v] for v in vars_))
        for stmt in self.nest.body:
            self._exec_stmt(stmt, env, state, atrace)

    def _exec_stmt(self, stmt: Statement, env, state, atrace):
        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr, env, state, atrace)
            index = tuple(self._eval(s, env, state, atrace)
                          for s in stmt.target.subscripts)
            target = self._array(stmt.target.name, state)
            if stmt.accumulate:
                value = target[index] + value
                if atrace is not None:
                    atrace.append((stmt.target.name, index, "R"))
            target[index] = value
            if atrace is not None:
                atrace.append((stmt.target.name, index, "W"))
        elif isinstance(stmt, If):
            if self._eval(stmt.cond, env, state, atrace) != 0:
                self._exec_stmt(stmt.then, env, state, atrace)
        elif isinstance(stmt, InitStmt):
            env[stmt.var] = self._eval(stmt.expr, env, state, atrace)
        else:
            raise TypeError(f"cannot execute {stmt!r}")

    def _array(self, name: str, state) -> Array:
        arr = state.get(name)
        if arr is None:
            arr = Array(0, name)
            state[name] = arr
        return arr

    # -- expressions ---------------------------------------------------------------

    def _eval(self, e: Expr, env, state, atrace):
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Var):
            try:
                return env[e.name]
            except KeyError:
                raise NameError(f"unbound variable {e.name!r}") from None
        if isinstance(e, Add):
            return sum(self._eval(t, env, state, atrace) for t in e.terms)
        if isinstance(e, Mul):
            result = 1
            for f in e.factors:
                result *= self._eval(f, env, state, atrace)
            return result
        if isinstance(e, FloorDiv):
            return floor_div(self._eval(e.num, env, state, atrace),
                             self._eval(e.den, env, state, atrace))
        if isinstance(e, CeilDiv):
            return ceil_div(self._eval(e.num, env, state, atrace),
                            self._eval(e.den, env, state, atrace))
        if isinstance(e, Mod):
            num = self._eval(e.num, env, state, atrace)
            den = self._eval(e.den, env, state, atrace)
            return num - den * floor_div(num, den)
        if isinstance(e, Min):
            return min(self._eval(a, env, state, atrace) for a in e.args)
        if isinstance(e, Max):
            return max(self._eval(a, env, state, atrace) for a in e.args)
        if isinstance(e, Call):
            return self._eval_call(e, env, state, atrace)
        raise TypeError(f"cannot evaluate {e!r}")

    def _eval_call(self, e: Call, env, state, atrace):
        args = [self._eval(a, env, state, atrace) for a in e.args]
        if e.func in state or e.func in self._array_names:
            index = tuple(args)
            if atrace is not None:
                atrace.append((e.func, index, "R"))
            return self._array(e.func, state)[index]
        if e.func in _RELATIONAL and len(args) == 2:
            return _RELATIONAL[e.func](*args)
        if e.func == "abs":
            return abs(args[0])
        if e.func == "sgn":
            return sign(args[0])
        if e.func in self.funcs:
            return int(self.funcs[e.func](*args))
        # Fortran-ish default: an unknown callee is a read of a
        # never-written array (all elements at their default value).
        index = tuple(args)
        if atrace is not None:
            atrace.append((e.func, index, "R"))
        return self._array(e.func, state)[index]


def run_nest(nest: LoopNest, arrays: Mapping[str, Array],
             symbols: Optional[Mapping[str, int]] = None,
             funcs: Optional[Mapping[str, Callable[..., int]]] = None,
             schedule: Optional[Schedule] = None,
             trace_vars: Optional[Sequence[str]] = None,
             trace_addresses: bool = False) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(nest, symbols=symbols, funcs=funcs,
                         schedule=schedule, trace_vars=trace_vars,
                         trace_addresses=trace_addresses)
    return interp.run(arrays)
