"""Vectorized NumPy execution: the third engine behind the interpreter.

:class:`~repro.runtime.compiled.CompiledNest` lowers a nest to Python
loops (~15x over the interpreter); this module lowers the *same
transformed IR* to NumPy whole-array expressions.  The innermost run of
dense loops (the *suffix*) becomes one kernel launch per surrounding
(*prefix*) iteration: affine subscripts become broadcast index vectors,
a suffix index missing from the assignment target becomes a summed
reduction axis, and ``pardo`` prefix loops fan out over a
``concurrent.futures`` thread pool (NumPy releases the GIL in ufuncs).

The engine is *never wrong, only slower*: any statement the planner
cannot prove safe — non-affine subscripts, a loop-carried dependence
inside the vectorized suffix, ``sgn``/relational calls, guarded
statements — falls back to the compiled engine, either per statement
group (legal fission by array-name interference) or for the whole run.
Runtime guards do the same for inputs NumPy's int64 cannot represent
faithfully (non-integer data, provable overflow risk, unbounded or
oversized dense extents), and trace-producing runs delegate entirely so
traces stay bit-identical to the interpreter's.

Differential tests compare final arrays against the interpreter oracle
for every example nest under every :class:`Schedule` policy, exactly as
PR 1 did for ``CompiledNest``.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from typing import (Callable, Dict, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from repro.expr.linear import affine_form
from repro.expr.nodes import (Add, Call, CeilDiv, Const, Expr, FloorDiv, Max,
                              Min, Mod, Mul, Var, children, evaluate,
                              free_vars, substitute)
from repro.ir.loopnest import (Assign, If, InitStmt, Loop, LoopNest, PARDO,
                               Statement)
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.runtime.arrays import Array
from repro.runtime.compiled import (CompiledNest, CompiledNestCache, _calls,
                                    _is_builtin_call)
from repro.runtime.interpreter import ExecutionResult, Schedule
from repro.util.errors import ReproError
from repro.util.intmath import sign

try:  # NumPy is an optional dependency; everything degrades gracefully.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via tests' fake-absence
    _np = None

#: Largest dense backing array the engine will materialize (elements).
DENSE_ELEMENT_CAP = 1 << 24
#: Largest single kernel grid (elements), bounding temporary memory.
GRID_ELEMENT_CAP = 1 << 24
#: Values must provably stay below this for int64 arithmetic to be exact.
VALUE_CAP = 1 << 62

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def numpy_available() -> bool:
    """True when the optional NumPy dependency is importable."""
    return _np is not None


def _require_numpy() -> None:
    if _np is None:
        raise ReproError(
            "NumPy is not installed; the vectorized engine is unavailable "
            "(use the 'compiled' or 'interpreter' engine instead)")


# ---------------------------------------------------------------------------
# interval arithmetic over concrete symbol bindings


def _iv_mul(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
    prods = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(prods), max(prods))


def _interval(e: Expr, ienv: Mapping[str, Tuple[int, int]]
              ) -> Optional[Tuple[int, int]]:
    """Conservative value interval of *e*, or None when unbounded (an
    unbound name, an array read, a division whose divisor may be 0)."""
    if isinstance(e, Const):
        return (e.value, e.value)
    if isinstance(e, Var):
        return ienv.get(e.name)
    if isinstance(e, Add):
        lo = hi = 0
        for t in e.terms:
            iv = _interval(t, ienv)
            if iv is None:
                return None
            lo, hi = lo + iv[0], hi + iv[1]
        return (lo, hi)
    if isinstance(e, Mul):
        acc = (1, 1)
        for f in e.factors:
            iv = _interval(f, ienv)
            if iv is None:
                return None
            acc = _iv_mul(acc, iv)
        return acc
    if isinstance(e, (FloorDiv, CeilDiv)):
        num = _interval(e.num, ienv)
        den = _interval(e.den, ienv)
        if num is None or den is None or den[0] <= 0 <= den[1]:
            return None
        from repro.util.intmath import ceil_div, floor_div
        op = floor_div if isinstance(e, FloorDiv) else ceil_div
        vals = [op(n, d) for n in num for d in den]
        return (min(vals), max(vals))
    if isinstance(e, Mod):
        den = _interval(e.den, ienv)
        if den is None or den[0] <= 0 <= den[1]:
            return None
        if den[0] > 0:  # floored mod takes the divisor's sign
            return (0, den[1] - 1)
        return (den[0] + 1, 0)
    if isinstance(e, Min):
        ivs = [_interval(a, ienv) for a in e.args]
        if any(iv is None for iv in ivs):
            return None
        return (min(iv[0] for iv in ivs), min(iv[1] for iv in ivs))
    if isinstance(e, Max):
        ivs = [_interval(a, ienv) for a in e.args]
        if any(iv is None for iv in ivs):
            return None
        return (max(iv[0] for iv in ivs), max(iv[1] for iv in ivs))
    return None  # Call (array read / function) or unknown node


def _has_call(e: Expr) -> bool:
    if isinstance(e, Call):
        return True
    return any(_has_call(c) for c in children(e))


class _Bail(Exception):
    """Internal: abandon planning, the whole run delegates to compiled."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# plan data model


class _VecStmt:
    """One vectorizable ``Assign`` with init statements substituted in."""

    __slots__ = ("pos", "target_name", "target_subs", "expr", "red_axes",
                 "accumulate", "target_vars")

    def __init__(self, pos: int, target_name: str,
                 target_subs: Tuple[Expr, ...], expr: Expr,
                 red_axes: Tuple[int, ...], accumulate: bool,
                 target_vars: Set[str]):
        self.pos = pos
        self.target_name = target_name
        self.target_subs = target_subs
        self.expr = expr
        self.red_axes = red_axes
        self.accumulate = accumulate
        self.target_vars = target_vars


class _VecGroup:
    """A fissioned statement group executed as NumPy kernels."""

    __slots__ = ("suffix_len", "stmts", "positions")

    def __init__(self, suffix_len: int, stmts: List[_VecStmt],
                 positions: List[int]):
        self.suffix_len = suffix_len
        self.stmts = stmts
        self.positions = positions


class _CompGroup:
    """A fissioned statement group delegated to the compiled engine."""

    __slots__ = ("positions", "reason")

    def __init__(self, positions: List[int], reason: str):
        self.positions = positions
        self.reason = reason


class _Plan:
    __slots__ = ("full_fallback", "vec_groups", "comp_groups", "reasons",
                 "extents", "ienv", "iter_bound", "grid_bound", "call_names",
                 "written", "read_only_arrays", "suffix_max")

    def __init__(self) -> None:
        self.full_fallback: Optional[str] = None
        self.vec_groups: List[_VecGroup] = []
        self.comp_groups: List[_CompGroup] = []
        self.reasons: List[str] = []
        self.extents: Dict[str, List[Tuple[int, int]]] = {}
        self.ienv: Dict[str, Tuple[int, int]] = {}
        self.iter_bound = 0
        self.grid_bound = 0
        self.call_names: Set[str] = set()
        self.written: Set[str] = set()
        self.read_only_arrays: Set[str] = set()
        self.suffix_max = 0


# ---------------------------------------------------------------------------
# planner


class _Planner:
    """Builds a :class:`_Plan` for one nest under concrete symbols.

    Planning is purely structural plus interval reasoning over the
    caller's symbol bindings; nothing here reads array data.  Every
    rejection records a reason so the fallback-rate counters and
    :meth:`VectorizedNest.describe` can explain lowering decisions.
    """

    def __init__(self, nest: LoopNest, symbols: Mapping[str, int],
                 funcs: Mapping[str, Callable[..., int]]):
        self.nest = nest
        self.symbols = symbols
        self.funcs = funcs
        self.plan = _Plan()

    def build(self) -> _Plan:
        plan = self.plan
        try:
            self._build()
        except _Bail as bail:
            plan.full_fallback = bail.reason
            plan.vec_groups = []
            plan.comp_groups = []
        return plan

    def _bail(self, reason: str) -> None:
        raise _Bail(reason)

    def _build(self) -> None:
        nest, plan = self.nest, self.plan
        from repro.deps.analysis.references import inferred_array_names

        calls = _calls(nest)
        self.arrays = (inferred_array_names(nest) |
                       {f for f, k in calls
                        if f not in self.funcs and not _is_builtin_call(f, k)})
        plan.call_names = {f for f, _ in calls} - self.arrays

        if not any(isinstance(s, (Assign, If)) for s in nest.body):
            self._bail("no-statements")
        for sym, val in self.symbols.items():
            if not isinstance(val, int):
                self._bail("non-integer-symbol")
            plan.ienv[sym] = (val, val)

        self._index_intervals()
        subst = self._fold_inits()
        self._structural_suffix()
        self._group(subst)
        if not plan.vec_groups:
            self._bail(plan.reasons[0] if plan.reasons
                       else "no-vectorizable-statements")
        plan.written = {nest.body[p].target.name
                        for g in plan.vec_groups for p in g.positions}
        plan.read_only_arrays = set(plan.extents) - plan.written

    # -- loop geometry -----------------------------------------------------

    def _index_intervals(self) -> None:
        """Per-loop index interval and trip-count bound; the product
        bounds the total iteration space, and grid_bound the largest
        kernel the maximal suffix could launch."""
        plan = self.plan
        init_vars = ({i.var for i in self.nest.inits} |
                     {s.var for s in self.nest.body
                      if isinstance(s, InitStmt)})
        iter_bound = 1
        self.trip_bounds: List[int] = []
        for lp in self.nest.loops:
            for e in (lp.lower, lp.upper, lp.step):
                if _has_call(e):
                    self._bail("bound-reads-array")
                if free_vars(e) & init_vars:
                    self._bail("bound-reads-init-var")
            lo = _interval(lp.lower, plan.ienv)
            hi = _interval(lp.upper, plan.ienv)
            if lo is None or hi is None:
                self._bail("unbounded-loop")
            if isinstance(lp.step, Const):
                st = lp.step.value
                if st > 0:
                    trips = max(0, (hi[1] - lo[0]) // st + 1)
                else:
                    trips = max(0, (lo[1] - hi[0]) // (-st) + 1)
            else:
                stiv = _interval(lp.step, plan.ienv)
                if stiv is None:
                    self._bail("unbounded-loop")
                trips = max(0, hi[1] - lo[0] + 1, lo[1] - hi[0] + 1)
            span = (min(lo[0], hi[0]), max(lo[1], hi[1]))
            plan.ienv[lp.index] = span
            if not (_INT64_MIN < span[0] and span[1] < _INT64_MAX):
                self._bail("index-overflow")
            self.trip_bounds.append(trips)
            iter_bound *= trips
        plan.iter_bound = iter_bound

    def _structural_suffix(self) -> None:
        """Longest innermost run of constant-step loops whose bounds are
        free of suffix indices — the deepest legal vectorization."""
        loops = self.nest.loops
        best = 0
        for length in range(1, len(loops) + 1):
            suffix = loops[len(loops) - length:]
            names = {lp.index for lp in suffix}
            ok = all(
                isinstance(lp.step, Const) and
                not ((free_vars(lp.lower) | free_vars(lp.upper)) & names)
                for lp in suffix)
            if not ok:
                break
            best = length
        self.plan.suffix_max = best
        grid = 1
        for t in self.trip_bounds[len(loops) - best:]:
            grid *= t
        self.plan.grid_bound = grid
        if best == 0:
            self._bail("no-constant-step-suffix")

    # -- init-statement folding --------------------------------------------

    def _fold_inits(self) -> Dict[int, Tuple[Tuple[Expr, ...], Expr]]:
        """Substitute transformation inits and straight-line body inits
        into each Assign, returning per-position (target subs, expr).

        Scalar flow beyond straight-line (a variable defined under an
        ``if``, redefined, shadowing a loop index, or used before its
        definition) bails out to the compiled engine for the whole run.
        """
        nest = self.nest
        indices = set(nest.indices)
        mapping: Dict[str, Expr] = {}
        for init in nest.inits:
            if init.var in indices or init.var in mapping:
                self._bail("init-shadowing")
            mapping[init.var] = substitute(init.expr, mapping)

        body_defs = set()
        for s in nest.body:
            t = s
            while isinstance(t, If):
                t = t.then
            if isinstance(t, InitStmt):
                if isinstance(s, If):
                    self._bail("guarded-init")
                if t.var in indices or t.var in mapping or t.var in body_defs:
                    self._bail("init-shadowing")
                body_defs.add(t.var)

        folded: Dict[int, Tuple[Tuple[Expr, ...], Expr]] = {}
        defined: Set[str] = set(mapping)
        pending = set(body_defs)
        for pos, s in enumerate(nest.body):
            used: Set[str] = set()
            if isinstance(s, Assign):
                used = set(free_vars(s.expr))
                for sub in s.target.subscripts:
                    used |= free_vars(sub)
            elif isinstance(s, If):
                t: Statement = s
                while isinstance(t, If):
                    used |= free_vars(t.cond)
                    t = t.then
                if isinstance(t, Assign):
                    used |= free_vars(t.expr)
                    for sub in t.target.subscripts:
                        used |= free_vars(sub)
            elif isinstance(s, InitStmt):
                used = set(free_vars(s.expr))
            if used & (pending - defined):
                self._bail("use-before-init")
            if isinstance(s, InitStmt):
                mapping[s.var] = substitute(s.expr, mapping)
                defined.add(s.var)
                pending.discard(s.var)
            elif isinstance(s, Assign):
                folded[pos] = (
                    tuple(substitute(x, mapping)
                          for x in s.target.subscripts),
                    substitute(s.expr, mapping))
        return folded

    # -- fission into independent statement groups --------------------------

    def _stmt_names(self, s: Statement) -> Tuple[Set[str], Set[str]]:
        """(arrays read, arrays written) by one statement, name-level."""
        reads: Set[str] = set()
        writes: Set[str] = set()

        def scan(e: Expr) -> None:
            if isinstance(e, Call) and e.func in self.arrays:
                reads.add(e.func)
            for c in children(e):
                scan(c)

        t = s
        while isinstance(t, If):
            scan(t.cond)
            t = t.then
        if isinstance(t, Assign):
            writes.add(t.target.name)
            if t.accumulate:
                reads.add(t.target.name)
            for sub in t.target.subscripts:
                scan(sub)
            scan(t.expr)
        elif isinstance(t, InitStmt):
            scan(t.expr)
        return reads, writes

    def _group(self, folded: Dict[int, Tuple[Tuple[Expr, ...], Expr]]
               ) -> None:
        """Union statements that share an array with a write (legal
        fission boundary), then plan each component independently:
        vectorize at the deepest suffix that passes, else delegate the
        component to the compiled engine."""
        nest, plan = self.nest, self.plan
        members = [pos for pos, s in enumerate(nest.body)
                   if not isinstance(s, InitStmt)]
        names = {pos: self._stmt_names(nest.body[pos]) for pos in members}
        parent = {pos: pos for pos in members}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, a in enumerate(members):
            ra, wa = names[a]
            for b in members[i + 1:]:
                rb, wb = names[b]
                if (wa & (rb | wb)) or (wb & ra):
                    parent[find(a)] = find(b)

        comps: Dict[int, List[int]] = {}
        for pos in members:
            comps.setdefault(find(pos), []).append(pos)

        for positions in sorted(comps.values(), key=lambda ps: ps[0]):
            group = self._plan_group(positions, folded)
            if isinstance(group, _VecGroup):
                plan.vec_groups.append(group)
            else:
                plan.comp_groups.append(group)

    def _plan_group(self, positions: List[int],
                    folded: Dict[int, Tuple[Tuple[Expr, ...], Expr]]):
        nest, plan = self.nest, self.plan
        for pos in positions:
            if not isinstance(nest.body[pos], Assign):
                plan.reasons.append("guarded-statement")
                return _CompGroup(positions, "guarded-statement")
        reason = "unvectorizable"
        for length in range(plan.suffix_max, 0, -1):
            suffix = list(nest.indices[nest.depth - length:])
            stmts: List[_VecStmt] = []
            failed: Optional[str] = None
            for pos in positions:
                out = self._classify(pos, folded[pos], suffix)
                if isinstance(out, str):
                    failed = out
                    break
                stmts.append(out)
            if failed is None:
                failed = self._check_group_deps(stmts, suffix)
            if failed is None:
                for vs in stmts:
                    self._record_extents(vs, suffix)
                return _VecGroup(length, stmts, positions)
            reason = failed
        plan.reasons.append(reason)
        return _CompGroup(positions, reason)

    # -- per-statement classification ---------------------------------------

    def _classify(self, pos: int, sub_expr: Tuple[Tuple[Expr, ...], Expr],
                  suffix: List[str]):
        """A :class:`_VecStmt` for the Assign at *pos*, or a reason."""
        stmt = self.nest.body[pos]
        target_subs, expr = sub_expr
        target_vars: Set[str] = set()
        for sub in target_subs:
            af = affine_form(sub, suffix)
            if af is None:
                return "non-affine-subscript"
            if _has_call(af.rest):
                return "subscript-reads-array"
            if _interval(sub, self.plan.ienv) is None:
                return "unbounded-subscript"
            if len(af.coeffs) > 1:
                return "multi-index-target-dim"
            if af.coeffs:
                v = next(iter(af.coeffs))
                if v in target_vars:
                    return "reused-target-index"
                target_vars.add(v)
        red_axes = tuple(axis for axis, v in enumerate(suffix)
                         if v not in target_vars)
        if red_axes and not stmt.accumulate:
            return "reduction-without-accumulate"
        bad = self._check_expr(expr, suffix)
        if bad is not None:
            return bad
        return _VecStmt(pos, stmt.target.name, target_subs, expr,
                        red_axes, stmt.accumulate, target_vars)

    def _check_expr(self, e: Expr, suffix: List[str]) -> Optional[str]:
        if isinstance(e, Call):
            if e.func in self.arrays:
                for sub in e.args:
                    af = affine_form(sub, suffix)
                    if af is None:
                        return "non-affine-subscript"
                    if _has_call(af.rest):
                        return "subscript-reads-array"
                    if _interval(sub, self.plan.ienv) is None:
                        return "unbounded-subscript"
                return None
            if e.func == "abs":
                bad = self._check_expr(e.args[0], suffix)
                if bad is not None:
                    return bad
                if any(free_vars(a) & set(suffix) or _has_call(a)
                       for a in e.args[1:]):
                    return "abs-extra-args"
                return None
            if _is_builtin_call(e.func, len(e.args)):
                return "relational-call"
            return "user-func-call"
        if isinstance(e, (Const, Var, Add, Mul, FloorDiv, CeilDiv, Mod,
                          Min, Max)):
            for c in children(e):
                bad = self._check_expr(c, suffix)
                if bad is not None:
                    return bad
            return None
        return "unsupported-expr"

    # -- group-level dependence safety --------------------------------------

    def _disjoint(self, a_subs: Tuple[Expr, ...], b_subs: Tuple[Expr, ...],
                  suffix: List[str]) -> bool:
        """True when some dimension proves the two footprints can never
        collide across the whole suffix sweep: both index expressions
        are suffix-invariant there and their difference excludes 0."""
        if len(a_subs) != len(b_subs):
            return True  # different ranks never alias as dict keys
        wanted = set(suffix)
        for a, b in zip(a_subs, b_subs):
            if (free_vars(a) | free_vars(b)) & wanted:
                continue
            from repro.expr.nodes import add, mul
            diff = _interval(add(a, mul(Const(-1), b)), self.plan.ienv)
            if diff is not None and (diff[0] > 0 or diff[1] < 0):
                return True
        return False

    def _check_group_deps(self, stmts: List[_VecStmt],
                          suffix: List[str]) -> Optional[str]:
        """Reject loop-carried dependences inside the vectorized suffix.

        A read of an array some statement writes is safe only when it is
        *aligned* (structurally identical subscripts — it reads exactly
        the element the writer produced at the same iteration point) or
        provably *disjoint* from every writer's footprint.  A reduction
        target may not be read at all: its partial sums are never
        materialized per-iteration the way sequential execution orders
        them.
        """
        writers: Dict[str, List[_VecStmt]] = {}
        for vs in stmts:
            writers.setdefault(vs.target_name, []).append(vs)
        reduction_targets = {vs.target_name for vs in stmts if vs.red_axes}

        def check_read(e: Expr) -> Optional[str]:
            if isinstance(e, Call) and e.func in writers:
                if e.func in reduction_targets:
                    return "read-of-reduction-target"
                for w in writers[e.func]:
                    if tuple(e.args) == w.target_subs:
                        continue
                    if not self._disjoint(tuple(e.args), w.target_subs,
                                          suffix):
                        return "carried-dependence"
            for c in children(e):
                bad = check_read(c)
                if bad is not None:
                    return bad
            return None

        for vs in stmts:
            if vs.red_axes and vs.target_name in _reads_of(vs.expr):
                return "reduction-reads-target"
            bad = check_read(vs.expr)
            if bad is not None:
                return bad
            for sub in vs.target_subs:
                bad = check_read(sub)
                if bad is not None:
                    return bad
            for other in stmts:
                if other is vs or other.target_name != vs.target_name:
                    continue
                if other.target_subs == vs.target_subs:
                    continue
                if not self._disjoint(other.target_subs, vs.target_subs,
                                      suffix):
                    return "write-write-conflict"
        return None

    # -- dense extents -------------------------------------------------------

    def _record_extents(self, vs: _VecStmt, suffix: List[str]) -> None:
        refs: List[Tuple[str, Tuple[Expr, ...]]] = [
            (vs.target_name, vs.target_subs)]

        def collect(e: Expr) -> None:
            if isinstance(e, Call) and e.func in self.arrays:
                refs.append((e.func, tuple(e.args)))
            for c in children(e):
                collect(c)

        collect(vs.expr)
        for sub in vs.target_subs:
            collect(sub)
        for name, subs in refs:
            ivs = [_interval(sub, self.plan.ienv) for sub in subs]
            if any(iv is None for iv in ivs):
                self._bail("unbounded-extent")
            known = self.plan.extents.get(name)
            if known is None:
                self.plan.extents[name] = [iv for iv in ivs]  # type: ignore
            else:
                if len(known) != len(ivs):
                    self._bail("rank-mismatch")
                self.plan.extents[name] = [
                    (min(k[0], iv[0]), max(k[1], iv[1]))  # type: ignore
                    for k, iv in zip(known, ivs)]


def _reads_of(e: Expr) -> Set[str]:
    out: Set[str] = set()
    if isinstance(e, Call):
        out.add(e.func)
    for c in children(e):
        out |= _reads_of(c)
    return out


# ---------------------------------------------------------------------------
# the engine


def _default_workers() -> int:
    env = os.environ.get("REPRO_VEC_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return min(8, os.cpu_count() or 1)


class VectorizedNest:
    """A :class:`LoopNest` lowered to NumPy kernels, interpreter-true.

    Mirrors the :class:`~repro.runtime.compiled.CompiledNest` constructor
    and :meth:`run` contract.  Final arrays are value-identical to the
    interpreter's; iteration/address traces are produced by delegating
    the whole run to the compiled engine (vector kernels have no
    per-iteration event order to record), as are runs the planner or the
    runtime guards cannot prove exact.  Check :meth:`describe` for what
    was vectorized and why anything fell back.
    """

    def __init__(self, nest: LoopNest,
                 symbols: Optional[Mapping[str, int]] = None,
                 funcs: Optional[Mapping[str, Callable[..., int]]] = None,
                 schedule: Optional[Schedule] = None,
                 trace_vars: Optional[Sequence[str]] = None,
                 trace_addresses: bool = False,
                 max_iterations: Optional[int] = None,
                 workers: Optional[int] = None):
        _require_numpy()
        if max_iterations is None:
            from repro.resilience.guards import limits
            max_iterations = limits().max_iterations
        self.nest = nest
        self.symbols = dict(symbols or {})
        self.funcs = dict(funcs or {})
        self.schedule = schedule or Schedule()
        self.trace_vars = tuple(trace_vars) if trace_vars is not None else None
        self.trace_addresses = trace_addresses
        self.max_iterations = max_iterations
        self.workers = workers if workers is not None else _default_workers()
        self.fallback_runs = 0
        self.vectorized_runs = 0
        self._compiled_full: Optional[CompiledNest] = None
        self._group_engines: Dict[int, CompiledNest] = {}
        if self.trace_vars is not None or self.trace_addresses:
            self._plan = _Plan()
            self._plan.full_fallback = "tracing-requested"
        else:
            with _obs.span("vectorized.plan", depth=nest.depth):
                self._plan = _Planner(nest, self.symbols,
                                      self.funcs).build()
        if _obs.enabled():
            metrics = get_metrics()
            if self._plan.full_fallback:
                metrics.counter("vectorized.fallback."
                                + self._plan.full_fallback).inc()
            for reason in self._plan.reasons:
                metrics.counter("vectorized.fallback." + reason).inc()
            metrics.counter("vectorized.plans").inc()
            metrics.counter("vectorized.vector_groups").inc(
                len(self._plan.vec_groups))
            metrics.counter("vectorized.compiled_groups").inc(
                len(self._plan.comp_groups))

    # -- reporting ----------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """The lowering decision, for stats endpoints and curious users."""
        plan = self._plan
        return {
            "engine": "vectorized",
            "full_fallback": plan.full_fallback,
            "vector_groups": [
                {"statements": list(g.positions), "suffix_len": g.suffix_len}
                for g in plan.vec_groups],
            "compiled_groups": [
                {"statements": list(g.positions), "reason": g.reason}
                for g in plan.comp_groups],
            "fallback_reasons": list(plan.reasons),
            "runs": {"vectorized": self.vectorized_runs,
                     "fallback": self.fallback_runs},
        }

    # -- fallback engines ---------------------------------------------------

    def _full_engine(self) -> CompiledNest:
        if self._compiled_full is None:
            self._compiled_full = CompiledNest(
                self.nest, symbols=self.symbols, funcs=self.funcs,
                schedule=self.schedule, trace_vars=self.trace_vars,
                trace_addresses=self.trace_addresses,
                max_iterations=self.max_iterations)
        return self._compiled_full

    def _group_engine(self, idx: int, group: _CompGroup) -> CompiledNest:
        engine = self._group_engines.get(idx)
        if engine is None:
            keep = set(group.positions)
            body = tuple(s for pos, s in enumerate(self.nest.body)
                         if isinstance(s, InitStmt) or pos in keep)
            sub = LoopNest(self.nest.loops, body, self.nest.inits)
            engine = CompiledNest(
                sub, symbols=self.symbols, funcs=self.funcs,
                schedule=self.schedule,
                max_iterations=self.max_iterations)
            self._group_engines[idx] = engine
        return engine

    def _delegate(self, arrays: Mapping[str, Array],
                  schedule: Optional[Schedule],
                  reason: str) -> ExecutionResult:
        self.fallback_runs += 1
        if _obs.enabled():
            get_metrics().counter("vectorized.fallback_runs").inc()
            get_metrics().counter("vectorized.fallback." + reason).inc()
        return self._full_engine().run(arrays, schedule)

    # -- runtime guards -----------------------------------------------------

    def _guard(self, arrays: Mapping[str, Array]) -> Optional[str]:
        """Reason to delegate this particular run, or None to vectorize.
        On success ``self._prepared`` holds the inputs bulk-converted to
        NumPy (keys matrix, values vector, default, |value| bound) so
        the dense build never walks dicts in Python."""
        plan = self._plan
        self._prepared: Dict[str, Tuple] = {}
        if plan.full_fallback:
            return plan.full_fallback
        if set(arrays) & plan.call_names:
            return "array-shadows-call"
        if plan.grid_bound > GRID_ELEMENT_CAP:
            return "grid-cap"
        for name, dims in plan.extents.items():
            arr = arrays.get(name)
            if arr is None:
                self._prepared[name] = (None, None, 0, 0)
                continue
            default = arr.default
            if not isinstance(default, int) or isinstance(default, bool):
                return "non-integer-data"
            bound = abs(default)
            keys = vals = None
            if arr.data:
                try:
                    keys = _np.array(list(arr.data.keys()))
                    vals = _np.array(list(arr.data.values()))
                except (ValueError, TypeError):
                    return "key-shape"
                if (keys.ndim != 2 or keys.shape[1] != len(dims)
                        or keys.dtype.kind != "i"):
                    return "key-shape"
                if vals.dtype.kind != "i" or vals.dtype.itemsize > 8:
                    return "non-integer-data"
                bound = max(bound, int(_np.abs(vals).max()))
            self._prepared[name] = (keys, vals, default, bound)
        return self._overflow_guard(arrays)

    def _overflow_guard(self, arrays: Mapping[str, Array]) -> Optional[str]:
        """Prove every intermediate fits int64, or delegate.

        Each statement's value is bounded as an affine function
        ``c0 + c1*V`` of the running bound ``V`` on vectorized-written
        arrays (reads of read-only arrays and indices contribute
        constants).  Writes form the recurrence ``V' = c0 + c1_eff*V``
        over at most ``iter_bound`` generations, solved in log space; a
        nonlinear feedback term (written-array reads multiplied
        together) is unbounded here and delegates.
        """
        plan = self._plan
        v0: Dict[str, int] = {name: prep[3]
                              for name, prep in self._prepared.items()}
        idx_bound = 1
        for lo, hi in plan.ienv.values():
            idx_bound = max(idx_bound, abs(lo), abs(hi))
        if idx_bound >= VALUE_CAP:
            return "overflow-risk"

        def mag(e: Expr, nodes: List[Tuple[int, int]]
                ) -> Optional[Tuple[int, int]]:
            if isinstance(e, Const):
                out: Optional[Tuple[int, int]] = (abs(e.value), 0)
            elif isinstance(e, Var):
                iv = plan.ienv.get(e.name)
                if iv is None:
                    return None
                out = (max(abs(iv[0]), abs(iv[1])), 0)
            elif isinstance(e, Add):
                c0 = c1 = 0
                for t in e.terms:
                    m = mag(t, nodes)
                    if m is None:
                        return None
                    c0, c1 = c0 + m[0], c1 + m[1]
                out = (c0, c1)
            elif isinstance(e, Mul):
                c0, c1 = 1, 0
                for f in e.factors:
                    m = mag(f, nodes)
                    if m is None:
                        return None
                    if c1 and m[1]:
                        return None  # quadratic feedback: unbounded here
                    c0, c1 = c0 * m[0], c0 * m[1] + c1 * m[0]
                out = (c0, c1)
            elif isinstance(e, (FloorDiv, CeilDiv)):
                m = mag(e.num, nodes)
                d = mag(e.den, nodes)
                if m is None or d is None:
                    return None
                out = (max(m[0], 1), m[1])
            elif isinstance(e, Mod):
                m = mag(e.num, nodes)
                d = mag(e.den, nodes)
                if m is None or d is None:
                    return None
                out = d
            elif isinstance(e, (Min, Max)):
                c0 = c1 = 0
                for a in e.args:
                    m = mag(a, nodes)
                    if m is None:
                        return None
                    c0, c1 = max(c0, m[0]), max(c1, m[1])
                out = (c0, c1)
            elif isinstance(e, Call):
                for a in e.args:
                    if mag(a, nodes) is None:
                        return None
                if e.func in plan.written:
                    out = (0, 1)
                elif e.func in plan.extents:
                    out = (v0.get(e.func, 0), 0)
                else:  # abs(...) — bounded by its first argument
                    out = mag(e.args[0], nodes)
                    if out is None:
                        return None
            else:
                return None
            nodes.append(out)
            return out

        all_nodes: List[Tuple[int, int]] = []
        c0_max, c1_max = 0, 1
        for group in plan.vec_groups:
            for vs in group.stmts:
                m = mag(vs.expr, all_nodes)
                if m is None:
                    return "overflow-risk"
                for sub in vs.target_subs:
                    if mag(sub, all_nodes) is None:
                        return "overflow-risk"
                c0, c1 = m
                if vs.red_axes:
                    red_bound = max(1, plan.grid_bound)
                    c0, c1 = c0 * red_bound, c1 * red_bound
                if vs.accumulate:
                    c1 += 1
                c0_max = max(c0_max, c0)
                c1_max = max(c1_max, max(1, c1))

        v_start = max([1, idx_bound] + list(v0.values()))
        gens = max(1, plan.iter_bound)
        if c1_max <= 1:
            v_final = v_start + gens * c0_max
        else:
            bits = gens * math.log2(c1_max)
            if bits > 128:
                return "overflow-risk"
            v_final = (c1_max ** gens) * (v_start + c0_max)
        if v_final >= VALUE_CAP:
            return "overflow-risk"
        for c0, c1 in all_nodes:
            if c0 + c1 * v_final >= VALUE_CAP:
                return "overflow-risk"
        return None

    # -- execution ----------------------------------------------------------

    def run(self, arrays: Mapping[str, Array],
            schedule: Optional[Schedule] = None) -> ExecutionResult:
        """Execute on copies of *arrays*; the inputs are not mutated."""
        reason = self._guard(arrays)
        if reason is not None:
            return self._delegate(arrays, schedule, reason)
        plan = self._plan
        with _obs.span("vectorized.run", depth=self.nest.depth,
                       groups=len(plan.vec_groups)):
            extents = self._merged_extents(arrays)
            if extents is None:
                return self._delegate(arrays, schedule, "extent-cap")
            dense, offsets = self._build_dense(arrays, extents)

            out: Dict[str, Array] = {}
            count: Optional[int] = None
            for idx, group in enumerate(plan.comp_groups):
                result = self._group_engine(idx, group).run(arrays, schedule)
                out.update(result.arrays)
                if count is None:
                    count = result.body_count
            launches = [0]
            for group in plan.vec_groups:
                got = self._exec_group(group, dense, offsets,
                                       counting=count is None,
                                       launches=launches)
                if count is None:
                    count = got
            for name in plan.written:
                out[name] = self._write_back(name, dense[name],
                                             offsets[name])
            for name, arr in arrays.items():
                if name not in out:
                    out[name] = arr.copy()
        self.vectorized_runs += 1
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("vectorized.runs").inc()
            metrics.counter("vectorized.iterations").inc(count or 0)
            metrics.counter("vectorized.kernel_launches").inc(launches[0])
        return ExecutionResult(out, None, None, count or 0)

    def _merged_extents(self, arrays: Mapping[str, Array]
                        ) -> Optional[Dict[str, List[Tuple[int, int]]]]:
        """Planned extents widened by the input arrays' actual keys."""
        merged: Dict[str, List[Tuple[int, int]]] = {}
        for name, dims in self._plan.extents.items():
            dims = list(dims)
            keys = self._prepared[name][0]
            if keys is not None and keys.size:
                kmin = keys.min(axis=0).tolist()
                kmax = keys.max(axis=0).tolist()
                dims = [(min(lo, kl), max(hi, kh))
                        for (lo, hi), kl, kh in zip(dims, kmin, kmax)]
            cells = 1
            for lo, hi in dims:
                cells *= (hi - lo + 1)
            if cells > DENSE_ELEMENT_CAP:
                return None
            merged[name] = dims
        return merged

    def _build_dense(self, arrays: Mapping[str, Array],
                     extents: Dict[str, List[Tuple[int, int]]]):
        dense: Dict[str, "_np.ndarray"] = {}
        offsets: Dict[str, Tuple[int, ...]] = {}
        for name, dims in extents.items():
            shape = tuple(hi - lo + 1 for lo, hi in dims)
            offs = tuple(lo for lo, _ in dims)
            keys, vals, default, _ = self._prepared[name]
            arr = _np.full(shape, default, dtype=_np.int64)
            if keys is not None and keys.size:
                shifted = keys - _np.array(offs, dtype=_np.int64)
                arr[tuple(shifted.T)] = vals
            dense[name] = arr
            offsets[name] = offs
        return dense, offsets

    def _write_back(self, name: str, arr: "_np.ndarray",
                    offs: Tuple[int, ...]) -> Array:
        default = self._prepared[name][2]
        hot = arr != default
        coords = _np.argwhere(hot)
        if any(offs):
            coords = coords + _np.array(offs, dtype=_np.int64)
        data: Dict[Tuple[int, ...], int] = dict(
            zip(map(tuple, coords.tolist()), arr[hot].tolist()))
        return Array(default, name, data)

    # -- prefix walk + kernel launch ----------------------------------------

    def _exec_group(self, group: _VecGroup, dense, offsets,
                    counting: bool, launches: List[int]) -> int:
        depth = self.nest.depth
        prefix = self.nest.loops[:depth - group.suffix_len]
        suffix = self.nest.loops[depth - group.suffix_len:]
        env: Dict[str, int] = dict(self.symbols)
        total = self._walk(group, prefix, suffix, 0, env, dense, offsets,
                           counting, launches)
        if counting and total > self.max_iterations:
            raise ReproError(
                f"interpreter exceeded {self.max_iterations} iterations")
        return total

    def _walk(self, group: _VecGroup, prefix: Tuple[Loop, ...],
              suffix: Tuple[Loop, ...], level: int, env: Dict[str, int],
              dense, offsets, counting: bool, launches: List[int]) -> int:
        if level == len(prefix):
            return self._launch(group, suffix, env, dense, offsets, launches)
        lp = prefix[level]
        lo = evaluate(lp.lower, env)
        hi = evaluate(lp.upper, env)
        st = evaluate(lp.step, env)
        if st == 0:
            raise ReproError(f"loop {lp.index} has zero step at run time")
        values = range(lo, hi + sign(st), st)
        if (level == 0 and lp.kind == PARDO and self.workers > 1
                and len(values) > 1):
            return self._walk_pardo(group, prefix, suffix, lp, list(values),
                                    env, dense, offsets, counting, launches)
        total = 0
        for v in values:
            env[lp.index] = v
            total += self._walk(group, prefix, suffix, level + 1, env,
                                dense, offsets, counting, launches)
            if counting and total > self.max_iterations:
                raise ReproError(
                    f"interpreter exceeded {self.max_iterations} iterations")
        env.pop(lp.index, None)
        return total

    def _walk_pardo(self, group: _VecGroup, prefix, suffix, lp: Loop,
                    values: List[int], env: Dict[str, int], dense, offsets,
                    counting: bool, launches: List[int]) -> int:
        """Chunk a parallel outermost prefix loop over a thread pool.

        Legal ``pardo`` iterations are independent, so contiguous chunks
        write disjoint dense regions; NumPy kernels release the GIL, so
        the chunks genuinely overlap.
        """
        chunk_count = min(self.workers, len(values))
        size = -(-len(values) // chunk_count)
        chunks = [values[i:i + size] for i in range(0, len(values), size)]

        def run_chunk(chunk: List[int]) -> Tuple[int, int]:
            local_env = dict(env)
            local_launches = [0]
            total = 0
            for v in chunk:
                local_env[lp.index] = v
                total += self._walk(group, prefix, suffix, 1, local_env,
                                    dense, offsets, False, local_launches)
            return total, local_launches[0]

        with _obs.span("vectorized.pardo", chunks=len(chunks)):
            with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                results = list(pool.map(run_chunk, chunks))
        launches[0] += sum(n for _, n in results)
        if _obs.enabled():
            get_metrics().counter("vectorized.pardo_chunks").inc(len(chunks))
        return sum(t for t, _ in results)

    def _launch(self, group: _VecGroup, suffix: Tuple[Loop, ...],
                env: Dict[str, int], dense, offsets,
                launches: List[int]) -> int:
        """Run every kernel in the group once for the current prefix
        point.  Suffix bounds evaluate outer-to-inner and a zero-trip
        axis short-circuits, preserving the interpreter's laziness about
        names referenced only inside never-entered loops."""
        length = len(suffix)
        idxs: Dict[str, "_np.ndarray"] = {}
        cells = 1
        for axis, lp in enumerate(suffix):
            lo = evaluate(lp.lower, env)
            hi = evaluate(lp.upper, env)
            st = lp.step.value  # suffix steps are Const by construction
            trips = len(range(lo, hi + sign(st), st))
            if trips == 0:
                return 0
            shape = [1] * length
            shape[axis] = trips
            idxs[lp.index] = (_np.arange(trips, dtype=_np.int64) * st
                              + lo).reshape(shape)
            cells *= trips
        grid_shape = tuple(max(idxs[lp.index].shape) for lp in suffix)
        for vs in group.stmts:
            self._kernel(vs, env, idxs, dense, offsets, grid_shape)
        launches[0] += 1
        return cells

    def _kernel(self, vs: _VecStmt, env: Dict[str, int],
                idxs: Dict[str, "_np.ndarray"], dense, offsets,
                grid_shape: Tuple[int, ...]) -> None:
        rhs = self._veval(vs.expr, env, idxs, dense, offsets)
        if vs.red_axes:
            rhs = _np.broadcast_to(_np.asarray(rhs, dtype=_np.int64),
                                   grid_shape)
            rhs = rhs.sum(axis=vs.red_axes, keepdims=True)
        target = dense[vs.target_name]
        offs = offsets[vs.target_name]
        index = tuple(
            self._veval(sub, env, idxs, dense, offsets) - off
            for sub, off in zip(vs.target_subs, offs))
        if vs.accumulate:
            target[index] += rhs
        else:
            target[index] = rhs

    def _veval(self, e: Expr, env: Dict[str, int],
               idxs: Dict[str, "_np.ndarray"], dense, offsets):
        """Evaluate an expression to an int or a broadcastable ndarray."""
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Var):
            got = idxs.get(e.name)
            if got is not None:
                return got
            try:
                return env[e.name]
            except KeyError:
                raise NameError(f"unbound variable {e.name!r}") from None
        if isinstance(e, Add):
            total = 0
            for t in e.terms:
                total = total + self._veval(t, env, idxs, dense, offsets)
            return total
        if isinstance(e, Mul):
            result = 1
            for f in e.factors:
                result = result * self._veval(f, env, idxs, dense, offsets)
            return result
        if isinstance(e, (FloorDiv, CeilDiv)):
            num = self._veval(e.num, env, idxs, dense, offsets)
            den = self._veval(e.den, env, idxs, dense, offsets)
            _check_nonzero(den, "floor_div" if isinstance(e, FloorDiv)
                           else "ceil_div")
            if isinstance(e, FloorDiv):
                return num // den
            return -((-num) // den)
        if isinstance(e, Mod):
            num = self._veval(e.num, env, idxs, dense, offsets)
            den = self._veval(e.den, env, idxs, dense, offsets)
            _check_nonzero(den, "floor_div")
            return num - den * (num // den)
        if isinstance(e, Min):
            vals = [self._veval(a, env, idxs, dense, offsets)
                    for a in e.args]
            result = vals[0]
            for v in vals[1:]:
                result = _np.minimum(result, v)
            return result
        if isinstance(e, Max):
            vals = [self._veval(a, env, idxs, dense, offsets)
                    for a in e.args]
            result = vals[0]
            for v in vals[1:]:
                result = _np.maximum(result, v)
            return result
        if isinstance(e, Call):
            if e.func in dense:
                offs = offsets[e.func]
                index = tuple(
                    self._veval(a, env, idxs, dense, offsets) - off
                    for a, off in zip(e.args, offs))
                return dense[e.func][index]
            # abs is the only callable the planner admits besides arrays.
            args = [self._veval(a, env, idxs, dense, offsets)
                    for a in e.args]
            return _np.abs(args[0])
        raise ReproError(f"vectorized engine cannot evaluate {e!r}")


def _check_nonzero(den, what: str) -> None:
    if isinstance(den, int):
        if den == 0:
            raise ZeroDivisionError(f"{what} by zero")
    elif not den.all():
        raise ZeroDivisionError(f"{what} by zero")


class VectorizedNestCache(CompiledNestCache):
    """A bounded LRU of :class:`VectorizedNest` engines keyed by nest
    content — the vectorized twin of :class:`CompiledNestCache`, which
    supplies all the keying/eviction machinery via its ``factory`` hook.
    """

    def __init__(self, max_entries: int = 64):
        _require_numpy()
        super().__init__(max_entries=max_entries, factory=VectorizedNest)


def run_vectorized(nest: LoopNest, arrays: Mapping[str, Array],
                   symbols: Optional[Mapping[str, int]] = None,
                   funcs: Optional[Mapping[str, Callable[..., int]]] = None,
                   schedule: Optional[Schedule] = None,
                   workers: Optional[int] = None) -> ExecutionResult:
    """One-shot convenience mirroring :func:`repro.runtime.run_nest`."""
    engine = VectorizedNest(nest, symbols=symbols, funcs=funcs,
                            schedule=schedule, workers=workers)
    return engine.run(arrays)
