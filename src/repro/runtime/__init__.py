"""Loop-nest execution engines, traces, and semantic oracles.

Three engines share one semantics: :class:`Interpreter` (the
tree-walking oracle), :class:`CompiledNest` (the nest lowered to Python
and ``exec``-compiled — the portable fast path), and
:class:`VectorizedNest` (the nest lowered to NumPy whole-array
kernels — the native-speed path, delegating to the compiled engine for
anything it cannot prove safe).  Differential tests keep all three
interchangeable on final arrays; the interpreter and compiled engine
are additionally bit-for-bit on traces.
"""

from repro.runtime.arrays import Array
from repro.runtime.compiled import CompiledNest, compile_loopnest, run_compiled
from repro.runtime.interpreter import (
    ExecutionResult,
    Interpreter,
    Schedule,
    run_nest,
)
from repro.runtime.oracle import (
    OracleFailure,
    check_dependence_order,
    check_equivalence,
    dependence_order_holds,
    same_iteration_multiset,
)
from repro.runtime.parallel_sim import CostResult, simulate_makespan
from repro.runtime.vectorized import (
    VectorizedNest,
    VectorizedNestCache,
    numpy_available,
    run_vectorized,
)

#: The names ``resolve_engine`` accepts, in oracle-to-fastest order.
ENGINE_NAMES = ("interpreter", "compiled", "vectorized")


def resolve_engine(name: str):
    """The engine class registered under *name*.

    ``ValueError`` on an unknown name;
    :class:`~repro.util.errors.ReproError` for ``"vectorized"`` when
    NumPy is not installed (it is an optional dependency), so callers
    can surface a typed unavailability error instead of an ImportError.
    """
    if name == "interpreter":
        return Interpreter
    if name == "compiled":
        return CompiledNest
    if name == "vectorized":
        from repro.runtime.vectorized import _require_numpy
        _require_numpy()
        return VectorizedNest
    raise ValueError(f"unknown engine {name!r} "
                     f"(choose from {', '.join(ENGINE_NAMES)})")


__all__ = [
    "Array", "ExecutionResult", "Interpreter", "Schedule", "run_nest",
    "CompiledNest", "compile_loopnest", "run_compiled",
    "VectorizedNest", "VectorizedNestCache", "numpy_available",
    "run_vectorized", "ENGINE_NAMES", "resolve_engine",
    "OracleFailure", "check_dependence_order", "check_equivalence",
    "dependence_order_holds", "same_iteration_multiset",
    "CostResult", "simulate_makespan",
]
