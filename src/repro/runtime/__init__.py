"""Loop-nest execution engines, traces, and semantic oracles.

Two engines share one semantics: :class:`Interpreter` (the tree-walking
oracle) and :class:`CompiledNest` (the nest lowered to Python and
``exec``-compiled — the fast path).  Differential tests keep them
bit-for-bit interchangeable, traces included.
"""

from repro.runtime.arrays import Array
from repro.runtime.compiled import CompiledNest, compile_loopnest, run_compiled
from repro.runtime.interpreter import (
    ExecutionResult,
    Interpreter,
    Schedule,
    run_nest,
)
from repro.runtime.oracle import (
    OracleFailure,
    check_dependence_order,
    check_equivalence,
    dependence_order_holds,
    same_iteration_multiset,
)
from repro.runtime.parallel_sim import CostResult, simulate_makespan

__all__ = [
    "Array", "ExecutionResult", "Interpreter", "Schedule", "run_nest",
    "CompiledNest", "compile_loopnest", "run_compiled",
    "OracleFailure", "check_dependence_order", "check_equivalence",
    "dependence_order_holds", "same_iteration_multiset",
    "CostResult", "simulate_makespan",
]
