"""Loop-nest interpreter, traces, and semantic oracles."""

from repro.runtime.arrays import Array
from repro.runtime.interpreter import (
    ExecutionResult,
    Interpreter,
    Schedule,
    run_nest,
)
from repro.runtime.oracle import (
    OracleFailure,
    check_dependence_order,
    check_equivalence,
    dependence_order_holds,
    same_iteration_multiset,
)
from repro.runtime.parallel_sim import CostResult, simulate_makespan

__all__ = [
    "Array", "ExecutionResult", "Interpreter", "Schedule", "run_nest",
    "OracleFailure", "check_dependence_order", "check_equivalence",
    "dependence_order_holds", "same_iteration_multiset",
    "CostResult", "simulate_makespan",
]
