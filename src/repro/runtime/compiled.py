"""Compiled loop-nest execution: the fast path behind the interpreter oracle.

:class:`~repro.runtime.interpreter.Interpreter` walks the expression tree
for every evaluation; that makes it a trustworthy semantic ground truth
and a very slow executor.  This module lowers a :class:`LoopNest` to
Python source — nested ``for`` loops over ``range``, init statements
inlined, expressions folded to native arithmetic — and ``exec``-compiles
it into a closure.  The contract is *bit-for-bit agreement* with the
interpreter:

* final arrays are identical (the differential tests check every nest in
  ``examples/loops`` under every :class:`Schedule` policy);
* the optional iteration trace and address trace are identical,
  element-for-element, because the generated code preserves the
  interpreter's left-to-right, depth-first evaluation order (reads are
  recorded through a tracing helper exactly where ``Interpreter._eval``
  records them);
* ``pardo`` loops go through the same :meth:`Schedule.order` hook, so an
  illegal Parallelize shows up as a wrong answer under the same
  schedules that expose it in the interpreter.

The interpreter stays the oracle; :class:`CompiledNest` is what the
optimizer's scoring loops and the cache simulator feed on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.expr.nodes import (
    Add,
    Call,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    children,
)
from repro.ir.loopnest import Assign, If, InitStmt, LoopNest, PARDO, Statement
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.resilience import chaos as _chaos
from repro.resilience import guards as _guards
from repro.runtime.arrays import Array
from repro.runtime.interpreter import ExecutionResult, Schedule
from repro.util.errors import CodegenError, ReproError
from repro.util.intmath import sign

_RELATIONAL = {"le": "<=", "ge": ">=", "lt": "<", "gt": ">", "eq": "=="}


def _sgn_once(*xs: int) -> int:
    """Single-evaluation ``sgn``; like the interpreter, extra args are
    evaluated but ignored."""
    return sign(xs[0])


def _fst(*xs: int) -> int:
    """First argument (interpreter's ``abs``/``sgn`` arity behaviour)."""
    return xs[0]


def _is_builtin_call(func: str, arity: int) -> bool:
    """Mirror of ``Interpreter._eval_call``'s builtin dispatch: the
    relational forms apply only at arity 2, ``abs``/``sgn`` at any
    arity (they use the first argument)."""
    return (func in _RELATIONAL and arity == 2) or func in ("abs", "sgn")


class _Emitter:
    """Lowers one nest (for one fixed array-name set) to Python source."""

    def __init__(self, nest: LoopNest, arrays: Set[str], funcs: Set[str],
                 trace_vars: Optional[Tuple[str, ...]],
                 trace_addresses: bool):
        self.nest = nest
        self.arrays = arrays
        self.funcs = funcs
        self.trace_vars = trace_vars
        self.trace_addresses = trace_addresses
        self.lines: List[str] = []
        self._tmp = 0

    # -- expressions -------------------------------------------------------

    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            return str(e.value) if e.value >= 0 else f"({e.value})"
        if isinstance(e, Var):
            return e.name
        if isinstance(e, Add):
            return "(" + " + ".join(self.expr(t) for t in e.terms) + ")"
        if isinstance(e, Mul):
            return "(" + " * ".join(self.expr(f) for f in e.factors) + ")"
        if isinstance(e, FloorDiv):
            return f"({self.expr(e.num)} // {self.expr(e.den)})"
        if isinstance(e, CeilDiv):
            return f"(-((-{self.expr(e.num)}) // {self.expr(e.den)}))"
        if isinstance(e, Mod):
            return f"({self.expr(e.num)} % {self.expr(e.den)})"
        if isinstance(e, Min):
            return "min(" + ", ".join(self.expr(a) for a in e.args) + ")"
        if isinstance(e, Max):
            return "max(" + ", ".join(self.expr(a) for a in e.args) + ")"
        if isinstance(e, Call):
            return self.call(e)
        raise CodegenError(f"cannot compile expression {e!r}")

    def call(self, e: Call) -> str:
        args = ", ".join(self.expr(a) for a in e.args)
        # Precedence mirrors Interpreter._eval_call: arrays shadow the
        # relational/abs/sgn builtins and user functions.
        if e.func in self.arrays:
            return self.read(e.func, f"({args},)")
        if e.func in _RELATIONAL and len(e.args) == 2:
            a, b = (self.expr(x) for x in e.args)
            return f"(1 if {a} {_RELATIONAL[e.func]} {b} else 0)"
        if e.func == "abs":
            if len(e.args) == 1:
                return f"abs({args})"
            return f"abs(_fst({args}))"
        if e.func == "sgn":
            return f"_sgn({args})"
        if e.func in self.funcs:
            return f"int(_fn_{e.func}({args}))"
        # Interpreter fallback: an unknown callee reads a never-written
        # array; the variant compiler routes those into `self.arrays`, so
        # reaching this point is a compile-time inconsistency.
        raise CodegenError(f"call {e.func!r} is neither array nor function")

    def read(self, name: str, index_src: str) -> str:
        if self.trace_addresses:
            return f"_rd({name!r}, _arr_{name}, {index_src})"
        return f"_arr_{name}[{index_src}]"

    # -- statements --------------------------------------------------------

    def emit(self, text: str, depth: int) -> None:
        self.lines.append("    " * (depth + 1) + text)

    def stmt(self, s: Statement, depth: int) -> None:
        if isinstance(s, Assign):
            self._assign(s, depth)
        elif isinstance(s, If):
            self.emit(f"if {self.expr(s.cond)} != 0:", depth)
            self.stmt(s.then, depth + 1)
        elif isinstance(s, InitStmt):
            self.emit(f"{s.var} = {self.expr(s.expr)}", depth)
        else:
            raise CodegenError(f"cannot compile statement {s!r}")

    def _assign(self, s: Assign, depth: int) -> None:
        name = s.target.name
        subs = ", ".join(self.expr(x) for x in s.target.subscripts)
        index_src = f"({subs},)"
        value = self.expr(s.expr)
        simple = not self.trace_addresses
        if simple and not s.accumulate:
            self.emit(f"_arr_{name}[{index_src}] = {value}", depth)
            return
        self._tmp += 1
        v, ix = f"_v{self._tmp}", f"_ix{self._tmp}"
        # Interpreter order: value, then subscripts, then (for accumulate)
        # the read of the old element, then the write.
        self.emit(f"{v} = {value}", depth)
        self.emit(f"{ix} = {index_src}", depth)
        if s.accumulate:
            self.emit(f"{v} = {self.read(name, ix)} + {v}", depth)
        self.emit(f"_arr_{name}[{ix}] = {v}", depth)
        if self.trace_addresses:
            self.emit(f"_ap(({name!r}, {ix}, 'W'))", depth)

    # -- the function ------------------------------------------------------

    def source(self, symbols: Sequence[str]) -> str:
        nest = self.nest
        self.lines = [
            "def _kernel(_arrays, _symbols, _funcs, _order, "
            "_itrace, _atrace, _max_iterations):",
        ]
        self.emit("_count = 0", 0)
        for name in sorted(self.arrays):
            self.emit(f"_arr_{name} = _arrays[{name!r}]", 0)
        for name in symbols:
            self.emit(f"{name} = _symbols[{name!r}]", 0)
        for name in sorted(self.funcs):
            self.emit(f"_fn_{name} = _funcs[{name!r}]", 0)
        if self.trace_addresses:
            self.emit("_ap = _atrace.append", 0)
            self.emit("def _rd(_name, _arr, _idx):", 0)
            self.emit("    _ap((_name, _idx, 'R'))", 0)
            self.emit("    return _arr[_idx]", 0)
        if self.trace_vars is not None:
            self.emit("_it = _itrace.append", 0)

        depth = 0
        for level, lp in enumerate(nest.loops):
            lo, hi, st = f"_lo{level}", f"_hi{level}", f"_st{level}"
            # Bounds evaluate once per entry, in the interpreter's order
            # (lower, upper, step) so any array reads they contain land in
            # the address trace at the same positions.
            self.emit(f"{lo} = {self.expr(lp.lower)}", depth)
            self.emit(f"{hi} = {self.expr(lp.upper)}", depth)
            if isinstance(lp.step, Const):
                step_val = lp.step.value
                end = f"{hi} + 1" if step_val > 0 else f"{hi} - 1"
                rng = f"range({lo}, {end}, {step_val})"
            else:
                self.emit(f"{st} = {self.expr(lp.step)}", depth)
                self.emit(f"if {st} == 0:", depth)
                self.emit(f"    raise _ReproError("
                          f"'loop {lp.index} has zero step at run time')",
                          depth)
                rng = f"range({lo}, {hi} + (1 if {st} > 0 else -1), {st})"
            if lp.kind == PARDO:
                self.emit(f"for {lp.index} in _order(list({rng}), {level}):",
                          depth)
            else:
                self.emit(f"for {lp.index} in {rng}:", depth)
            depth += 1

        self.emit("_count += 1", depth)
        self.emit("if _count > _max_iterations:", depth)
        self.emit("    raise _ReproError('interpreter exceeded %d iterations'"
                  " % _max_iterations)", depth)
        for init in nest.inits:
            self.emit(f"{init.var} = {self.expr(init.expr)}", depth)
        if self.trace_vars is not None:
            vars_src = ", ".join(self.trace_vars)
            comma = "," if len(self.trace_vars) == 1 else ""
            self.emit(f"_it(({vars_src}{comma}))", depth)
        for s in nest.body:
            self.stmt(s, depth)
        self.emit("return _count", 0)
        return "\n".join(self.lines) + "\n"


def _free_var_names(nest: LoopNest) -> Set[str]:
    """Every plain-variable name the nest evaluates (Var nodes only)."""
    out: Set[str] = set()

    def scan(e: Expr) -> None:
        if isinstance(e, Var):
            out.add(e.name)
        for c in children(e):
            scan(c)

    def visit(s: Statement) -> None:
        if isinstance(s, Assign):
            scan(s.expr)
            for sub in s.target.subscripts:
                scan(sub)
        elif isinstance(s, If):
            scan(s.cond)
            visit(s.then)
        elif isinstance(s, InitStmt):
            scan(s.expr)

    for lp in nest.loops:
        for e in (lp.lower, lp.upper, lp.step):
            scan(e)
    for init in nest.inits:
        scan(init.expr)
    for s in nest.body:
        visit(s)
    return out


def _calls(nest: LoopNest) -> Set[Tuple[str, int]]:
    """Every ``(callee, arity)`` pair anywhere in the nest."""
    out: Set[Tuple[str, int]] = set()

    def scan(e: Expr) -> None:
        if isinstance(e, Call):
            out.add((e.func, len(e.args)))
        for c in children(e):
            scan(c)

    def visit(s: Statement) -> None:
        if isinstance(s, Assign):
            scan(s.expr)
            for sub in s.target.subscripts:
                scan(sub)
        elif isinstance(s, If):
            scan(s.cond)
            visit(s.then)
        elif isinstance(s, InitStmt):
            scan(s.expr)

    for lp in nest.loops:
        for e in (lp.lower, lp.upper, lp.step):
            scan(e)
    for init in nest.inits:
        scan(init.expr)
    for s in nest.body:
        visit(s)
    return out


class CompiledNest:
    """A :class:`LoopNest` compiled to native Python, interpreter-compatible.

    The constructor mirrors :class:`Interpreter`; :meth:`run` mirrors
    :meth:`Interpreter.run` and returns the same :class:`ExecutionResult`
    shape (arrays as :class:`Array`, optional iteration/address traces,
    body count).  Because the interpreter decides name-is-array at run
    time (any name present in the caller's arrays mapping is an array),
    compilation is specialized per distinct extra-array-name set and the
    specializations are cached on the instance.
    """

    def __init__(self, nest: LoopNest,
                 symbols: Optional[Mapping[str, int]] = None,
                 funcs: Optional[Mapping[str, Callable[..., int]]] = None,
                 schedule: Optional[Schedule] = None,
                 trace_vars: Optional[Sequence[str]] = None,
                 trace_addresses: bool = False,
                 max_iterations: Optional[int] = None):
        from repro.deps.analysis.references import inferred_array_names

        _chaos.inject("compiled.codegen")
        if max_iterations is None:
            max_iterations = _guards.limits().max_iterations
        self.nest = nest
        self.symbols = dict(symbols or {})
        self.funcs = dict(funcs or {})
        self.schedule = schedule or Schedule()
        self.trace_vars = tuple(trace_vars) if trace_vars is not None else None
        self.trace_addresses = trace_addresses
        self.max_iterations = max_iterations
        self._calls = _calls(nest)
        # Interpreter default: a callee that is neither builtin nor a
        # registered function reads a never-written array.
        self._base_arrays = (inferred_array_names(nest) |
                             {f for f, k in self._calls
                              if f not in self.funcs
                              and not _is_builtin_call(f, k)})
        self._variants: Dict[frozenset, Tuple[str, Callable]] = {}

    # -- compilation -------------------------------------------------------

    def _variant(self, extra: frozenset) -> Tuple[str, Callable]:
        cached = self._variants.get(extra)
        if cached is not None:
            if _obs.enabled():
                get_metrics().counter("compiled.source_cache_hits").inc()
            return cached
        if _obs.enabled():
            get_metrics().counter("compiled.source_cache_misses").inc()
        arrays = self._base_arrays | set(extra)
        funcs = {f for f, _ in self._calls
                 if f in self.funcs and f not in arrays}
        # Bind up-front only the names the caller actually supplied;
        # anything else stays unbound so a use raises NameError at the
        # same point in execution as the interpreter (a name referenced
        # only inside a zero-trip loop never raises).
        symbols = sorted(n for n in _free_var_names(self.nest)
                         if n in self.symbols)
        tv = self.trace_vars
        if tv is not None and not tv:
            tv = tuple(self.nest.indices)
        emitter = _Emitter(self.nest, arrays, funcs, tv,
                           self.trace_addresses)
        with _obs.span("compiled.codegen", depth=self.nest.depth,
                       arrays=len(arrays)):
            source = emitter.source(symbols)
        namespace: Dict[str, object] = {
            "_ReproError": ReproError,
            "_sgn": _sgn_once,
            "_fst": _fst,
        }
        with _obs.span("compiled.exec_compile", lines=source.count("\n")):
            exec(compile(source, "<repro:compiled-nest>", "exec"), namespace)
        variant = (source, namespace["_kernel"])  # type: ignore[assignment]
        self._variants[extra] = variant
        return variant

    @property
    def source(self) -> str:
        """The generated Python source of the no-extra-arrays variant."""
        return self._variant(frozenset())[0]

    # -- execution ---------------------------------------------------------

    def run(self, arrays: Mapping[str, Array],
            schedule: Optional[Schedule] = None) -> ExecutionResult:
        """Execute on copies of *arrays*; the inputs are not mutated."""
        extra = frozenset(set(arrays) - self._base_arrays)
        _, fn = self._variant(extra)
        state: Dict[str, defaultdict] = {}
        defaults: Dict[str, object] = {}
        for name in sorted(self._base_arrays | set(arrays)):
            src = arrays.get(name)
            default = src.default if src is not None else 0
            factory = (int if default == 0
                       else (lambda d=default: d))  # noqa: B008
            state[name] = defaultdict(factory,
                                      src.data if src is not None else ())
            defaults[name] = default
        itrace: Optional[List[Tuple[int, ...]]] = (
            [] if self.trace_vars is not None else None)
        atrace: Optional[List[Tuple[str, Tuple[int, ...], str]]] = (
            [] if self.trace_addresses else None)
        sched = schedule or self.schedule
        with _obs.span("compiled.run", depth=self.nest.depth,
                       traced=self.trace_addresses):
            count = fn(state, self.symbols, self.funcs, sched.order,
                       itrace, atrace, self.max_iterations)
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("compiled.runs").inc()
            metrics.counter("compiled.iterations").inc(count)
        # The interpreter materializes an array only when it is actually
        # touched; a defaultdict records every touch as an inserted key,
        # so an untouched non-input array is exactly an empty one.
        out = {name: Array(defaults[name], name, dict(data))
               for name, data in state.items()
               if name in arrays or data}
        return ExecutionResult(out, itrace, atrace, count)


def compile_loopnest(nest: LoopNest, **kwargs) -> CompiledNest:
    """Factory alias mirroring :func:`repro.ir.emit.compile_nest` naming."""
    return CompiledNest(nest, **kwargs)


def nest_fingerprint(nest: LoopNest) -> str:
    """A stable content hash of a nest — its canonical ``pretty()`` text
    digested to a short hex token.  Structurally equal nests produce the
    same fingerprint, so it can key cross-request memo tables (the
    transformation service's analysis and compilation caches) and name
    nests in stats without holding the nest itself."""
    import hashlib

    return hashlib.sha256(nest.pretty().encode("utf-8")).hexdigest()[:16]


class CompiledNestCache:
    """A bounded LRU of :class:`CompiledNest` instances, keyed by nest
    content and compilation options.

    A search session compiles each *winner* once, but a long-lived
    service sees the same nests (and the same transformed nests) arrive
    over and over across requests; recompiling them per request throws
    away exactly the codegen + ``exec``-compile work the engine already
    paid for.  :meth:`get` returns a warm instance when an equal nest
    was compiled with equal options before — :class:`LoopNest` equality
    is structural, so re-parsed request text hits — and compiles + caches
    otherwise.  Entries whose options include unhashable parts (user
    function mappings, custom schedules) are compiled but not cached.

    Not thread-safe; the service serializes access through its single
    request-processing loop.
    """

    def __init__(self, max_entries: int = 128,
                 factory: Optional[Callable[..., "CompiledNest"]] = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        #: Engine constructor; subclasses (the vectorized cache) swap it.
        self._factory = factory if factory is not None else CompiledNest
        self._entries: Dict[Tuple, CompiledNest] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.uncacheable = 0

    def _key(self, nest: LoopNest, symbols, trace_vars,
             trace_addresses: bool, max_iterations: Optional[int]) -> Tuple:
        sym_key = (tuple(sorted(symbols.items()))
                   if symbols is not None else ())
        tv_key = tuple(trace_vars) if trace_vars is not None else None
        return (nest, sym_key, tv_key, trace_addresses, max_iterations)

    def get(self, nest: LoopNest,
            symbols: Optional[Mapping[str, int]] = None,
            funcs: Optional[Mapping[str, Callable[..., int]]] = None,
            schedule: Optional[Schedule] = None,
            trace_vars: Optional[Sequence[str]] = None,
            trace_addresses: bool = False,
            max_iterations: Optional[int] = None) -> CompiledNest:
        """A compiled engine for *nest*, warm when possible."""
        if funcs or schedule is not None:
            # Callables/schedules compare by identity, which would make
            # "equal" keys incidental; skip the cache rather than serve
            # a stale closure.
            self.uncacheable += 1
            return self._factory(nest, symbols=symbols, funcs=funcs,
                                 schedule=schedule, trace_vars=trace_vars,
                                 trace_addresses=trace_addresses,
                                 max_iterations=max_iterations)
        key = self._key(nest, symbols, trace_vars, trace_addresses,
                        max_iterations)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries[key] = self._entries.pop(key)  # LRU touch
            if _obs.enabled():
                get_metrics().counter("compiled.nest_cache_hits").inc()
            return cached
        self.misses += 1
        if _obs.enabled():
            get_metrics().counter("compiled.nest_cache_misses").inc()
        compiled = self._factory(nest, symbols=symbols,
                                 trace_vars=trace_vars,
                                 trace_addresses=trace_addresses,
                                 max_iterations=max_iterations)
        self._entries[key] = compiled
        while len(self._entries) > self.max_entries:
            del self._entries[next(iter(self._entries))]
            self.evictions += 1
        return compiled

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "uncacheable": self.uncacheable,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = self.evictions = self.uncacheable = 0


def run_compiled(nest: LoopNest, arrays: Mapping[str, Array],
                 symbols: Optional[Mapping[str, int]] = None,
                 funcs: Optional[Mapping[str, Callable[..., int]]] = None,
                 schedule: Optional[Schedule] = None,
                 trace_vars: Optional[Sequence[str]] = None,
                 trace_addresses: bool = False) -> ExecutionResult:
    """One-shot convenience mirroring :func:`repro.runtime.run_nest`."""
    compiled = CompiledNest(nest, symbols=symbols, funcs=funcs,
                            schedule=schedule, trace_vars=trace_vars,
                            trace_addresses=trace_addresses)
    return compiled.run(arrays)
