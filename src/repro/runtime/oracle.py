"""Semantic oracles: equivalence and dependence-order checking.

These functions turn the interpreter into the test suite's ground truth:

* :func:`check_equivalence` — run an original and a transformed nest on
  the same inputs (under several ``pardo`` schedules) and compare every
  array;
* :func:`check_dependence_order` — given the iteration trace of a
  transformed nest (in *original* index coordinates) and a dependence
  set, verify the partial order of Section 3.1: whenever the difference
  of two instances lies in ``Tuples(D)``, the later one executes later;
* :func:`same_iteration_multiset` — a reordering must execute exactly
  the original iterations, no more, no fewer.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.deps.vector import DepSet
from repro.ir.loopnest import LoopNest
from repro.runtime.arrays import Array
from repro.runtime.interpreter import ExecutionResult, Schedule, run_nest


class OracleFailure(AssertionError):
    """Raised when a semantic check fails; message explains the witness."""


def check_equivalence(original: LoopNest, transformed: LoopNest,
                      arrays: Mapping[str, Array],
                      symbols: Optional[Mapping[str, int]] = None,
                      funcs: Optional[Mapping[str, Callable[..., int]]] = None,
                      schedules: Sequence[Schedule] = (
                          Schedule("seq"),
                          Schedule("reverse"),
                          Schedule("shuffle", seed=1),
                          Schedule("shuffle", seed=2),
                      )) -> None:
    """Assert the transformed nest computes what the original computes.

    The original runs sequentially (its ``pardo`` loops, if any, with the
    forward schedule); the transformed nest runs once per schedule in
    *schedules* and every run must reproduce the original's arrays.
    """
    base = run_nest(original, arrays, symbols=symbols, funcs=funcs,
                    schedule=Schedule("seq"))
    for schedule in schedules:
        result = run_nest(transformed, arrays, symbols=symbols, funcs=funcs,
                          schedule=schedule)
        _compare_arrays(base, result, schedule)


def _compare_arrays(base: ExecutionResult, result: ExecutionResult,
                    schedule: Schedule) -> None:
    names = set(base.arrays) | set(result.arrays)
    for name in sorted(names):
        a = base.arrays.get(name, Array(0, name))
        b = result.arrays.get(name, Array(0, name))
        if a != b:
            diff = a.max_abs_difference(b)
            raise OracleFailure(
                f"array {name!r} differs after transformation under "
                f"pardo schedule {schedule.policy!r} (seed {schedule.seed}); "
                f"max abs difference {diff}")


def same_iteration_multiset(original: LoopNest, transformed: LoopNest,
                            arrays: Mapping[str, Array],
                            symbols: Optional[Mapping[str, int]] = None,
                            funcs=None) -> None:
    """Assert both nests execute exactly the same iterations (as
    multisets of original index tuples)."""
    vars_ = original.indices
    base = run_nest(original, arrays, symbols=symbols, funcs=funcs,
                    trace_vars=vars_)
    new = run_nest(transformed, arrays, symbols=symbols, funcs=funcs,
                   trace_vars=vars_)
    a = Counter(base.iteration_trace)
    b = Counter(new.iteration_trace)
    if a != b:
        missing = list((a - b).keys())[:5]
        extra = list((b - a).keys())[:5]
        raise OracleFailure(
            "iteration multisets differ: "
            f"missing {missing!r}..., extra {extra!r}... "
            f"({sum(a.values())} vs {sum(b.values())} iterations)")


def check_dependence_order(trace: Sequence[Tuple[int, ...]],
                           deps: DepSet,
                           limit_pairs: int = 2_000_000) -> None:
    """Assert the executed order respects the dependence partial order.

    For execution positions ``p < q``, the instance at *p* ran first; a
    violation is ``trace[p] - trace[q] in Tuples(D)`` (then *p*'s
    instance depends on *q*'s and must run after it).
    """
    n = len(trace)
    if deps.is_empty():
        return
    if n * (n - 1) // 2 > limit_pairs:
        raise ValueError(
            f"trace of {n} iterations needs too many pair checks; "
            "reduce the problem size")
    for q in range(n):
        tq = trace[q]
        for p in range(q):
            tp = trace[p]
            diff = tuple(a - b for a, b in zip(tp, tq))
            for vec in deps:
                if vec.contains_tuple(diff):
                    raise OracleFailure(
                        f"dependence violated: iteration {tp} (position {p}) "
                        f"executed before {tq} (position {q}) but depends on "
                        f"it via {vec}")


def dependence_order_holds(trace: Sequence[Tuple[int, ...]],
                           deps: DepSet) -> bool:
    """Boolean form of :func:`check_dependence_order`."""
    try:
        check_dependence_order(trace, deps)
        return True
    except OracleFailure:
        return False
