"""Dictionary-backed arrays for the loop-nest interpreter.

Fortran-style arrays with arbitrary (possibly negative) integer indices
and a default value for unwritten elements.  Dict backing keeps the
interpreter simple and exact; helpers convert to/from dense nested lists
for tests that prefer literals.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Index = Tuple[int, ...]
Number = Union[int, float]


class Array:
    """A sparse, default-valued array of numbers."""

    __slots__ = ("data", "default", "name")

    def __init__(self, default: Number = 0, name: str = "",
                 data: Optional[Mapping[Index, Number]] = None):
        self.default = default
        self.name = name
        self.data: Dict[Index, Number] = dict(data) if data else {}

    # -- element access -----------------------------------------------------

    @staticmethod
    def _key(index) -> Index:
        if isinstance(index, tuple):
            return index
        return (index,)

    def __getitem__(self, index) -> Number:
        return self.data.get(self._key(index), self.default)

    def __setitem__(self, index, value: Number) -> None:
        self.data[self._key(index)] = value

    def __contains__(self, index) -> bool:
        return self._key(index) in self.data

    def __len__(self):
        return len(self.data)

    # -- whole-array operations -------------------------------------------------

    def copy(self) -> "Array":
        return Array(self.default, self.name, self.data)

    def __eq__(self, other):
        if not isinstance(other, Array):
            return NotImplemented
        keys = set(self.data) | set(other.data)
        return all(self[k] == other[k] for k in keys)

    def __hash__(self):
        raise TypeError("Array is mutable and unhashable")

    def max_abs_difference(self, other: "Array") -> Number:
        keys = set(self.data) | set(other.data)
        return max((abs(self[k] - other[k]) for k in keys), default=0)

    def __repr__(self):
        label = self.name or "Array"
        return f"{label}(<{len(self.data)} elements, default {self.default}>)"

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def from_rows(rows: Iterable[Iterable[Number]], base: int = 1,
                  name: str = "") -> "Array":
        """Dense 2-D initializer; ``base`` is the first index (1 for the
        paper's Fortran-style examples)."""
        arr = Array(0, name)
        for i, row in enumerate(rows, start=base):
            for j, v in enumerate(row, start=base):
                arr[(i, j)] = v
        return arr

    @staticmethod
    def from_values(values: Iterable[Number], base: int = 1,
                    name: str = "") -> "Array":
        """Dense 1-D initializer."""
        arr = Array(0, name)
        for i, v in enumerate(values, start=base):
            arr[(i,)] = v
        return arr

    def to_rows(self, lo: int, hi: int) -> list:
        """Dense 2-D extraction over ``[lo, hi] x [lo, hi]``."""
        return [[self[(i, j)] for j in range(lo, hi + 1)]
                for i in range(lo, hi + 1)]
