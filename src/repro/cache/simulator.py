"""A set-associative LRU cache simulator.

The paper motivates iteration reordering with data locality ("used
extensively by restructuring compilers for optimizing ... data
locality") but reports no machine numbers; this simulator provides the
measurable substrate for the locality benchmarks: feed it the
interpreter's address trace and compare miss rates of original vs
blocked/interchanged nests.

Array elements map to a flat byte address space via :class:`Layout`
(row-major or column-major, Fortran-style inclusive index ranges).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics


class CacheConfig:
    """Geometry of a simulated cache."""

    __slots__ = ("size_bytes", "line_bytes", "associativity")

    def __init__(self, size_bytes: int = 32 * 1024, line_bytes: int = 64,
                 associativity: int = 4):
        for field, value in (("size_bytes", size_bytes),
                             ("line_bytes", line_bytes),
                             ("associativity", associativity)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ValueError(
                    f"{field} must be a positive integer, got {value!r}")
        if size_bytes % (line_bytes * associativity) != 0:
            raise ValueError(
                "cache size must be a multiple of line_bytes * associativity")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    def __repr__(self):
        return (f"CacheConfig({self.size_bytes}B, {self.line_bytes}B lines, "
                f"{self.associativity}-way)")


class CacheStats:
    """Counters accumulated over a simulation."""

    __slots__ = ("accesses", "misses")

    def __init__(self):
        self.accesses = 0
        self.misses = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self):
        return (f"CacheStats(accesses={self.accesses}, misses={self.misses}, "
                f"miss_rate={self.miss_rate:.4f})")


class Cache:
    """Set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(config.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        ways = self._sets[index]
        self.stats.accesses += 1
        if line in ways:
            ways.move_to_end(line)
            return True
        self.stats.misses += 1
        ways[line] = True
        if len(ways) > self.config.associativity:
            ways.popitem(last=False)
        return False

    def access_all(self, addresses: Iterable[int]) -> CacheStats:
        """Touch a batch of byte addresses.

        Exactly equivalent to calling :meth:`access` per address (same
        LRU state, same counters), but with the per-access attribute
        lookups hoisted out of the loop — the hot path for full
        interpreter traces.
        """
        config = self.config
        line_bytes = config.line_bytes
        num_sets = config.num_sets
        associativity = config.associativity
        sets = self._sets
        accesses = misses = 0
        for address in addresses:
            line = address // line_bytes
            ways = sets[line % num_sets]
            accesses += 1
            if line in ways:
                ways.move_to_end(line)
            else:
                misses += 1
                ways[line] = True
                if len(ways) > associativity:
                    ways.popitem(last=False)
        self.stats.accesses += accesses
        self.stats.misses += misses
        # Per-batch accounting (the per-address path is too hot to
        # instrument; `simulate_trace` always comes through here).
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("cachesim.accesses").inc(accesses)
            metrics.counter("cachesim.misses").inc(misses)
            if self.stats.accesses:
                metrics.gauge("cachesim.hit_ratio").set(
                    round(self.stats.hits / self.stats.accesses, 6))
        return self.stats

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()


class Layout:
    """Maps (array, index-tuple) to byte addresses.

    Each registered array gets a contiguous region; ``order="row"``
    makes the *last* subscript fastest-varying (C style), ``"col"`` the
    first (Fortran style).
    """

    def __init__(self, element_bytes: int = 8, order: str = "row"):
        if order not in ("row", "col"):
            raise ValueError("order must be 'row' or 'col'")
        if not isinstance(element_bytes, int) or \
                isinstance(element_bytes, bool) or element_bytes <= 0:
            raise ValueError(
                f"element_bytes must be a positive integer, "
                f"got {element_bytes!r}")
        self.element_bytes = element_bytes
        self.order = order
        self._arrays: Dict[str, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        self._next_base = 0

    def register(self, name: str,
                 extents: Sequence[Tuple[int, int]]) -> None:
        """Register *name* with inclusive per-dimension (lo, hi) ranges."""
        sizes = [hi - lo + 1 for lo, hi in extents]
        total = 1
        for s in sizes:
            if s <= 0:
                raise ValueError(f"empty extent in {name}: {extents}")
            total *= s
        # Element strides per dimension, precomputed once so address
        # computation is a flat dot product.
        n = len(sizes)
        strides = [0] * n
        stride = 1
        order = range(n) if self.order == "col" else range(n - 1, -1, -1)
        for d in order:
            strides[d] = stride
            stride *= sizes[d]
        self._arrays[name] = (self._next_base, tuple(extents), tuple(strides))
        # Pad to a 4KiB boundary so arrays do not share lines.
        self._next_base += ((total * self.element_bytes + 4095) // 4096) * 4096

    def address(self, name: str, index: Tuple[int, ...]) -> int:
        try:
            base, extents, strides = self._arrays[name]
        except KeyError:
            raise KeyError(f"array {name!r} not registered in layout") from None
        if len(index) != len(extents):
            raise ValueError(
                f"{name}: index {index} has {len(index)} dims, "
                f"layout has {len(extents)}")
        offset = 0
        for d, ix in enumerate(index):
            lo, hi = extents[d]
            if not lo <= ix <= hi:
                raise IndexError(
                    f"{name}{index}: dim {d} out of extent [{lo},{hi}]")
            offset += (ix - lo) * strides[d]
        return base + offset * self.element_bytes

    def addresses(self, trace: Iterable[Tuple[str, Tuple[int, ...], str]]
                  ) -> List[int]:
        """Byte addresses for a whole address trace (batched
        :meth:`address`, same bounds checks and errors)."""
        arrays = self._arrays
        element_bytes = self.element_bytes
        out: List[int] = []
        append = out.append
        with _obs.span("cachesim.addresses"):
            for name, index, _kind in trace:
                try:
                    base, extents, strides = arrays[name]
                except KeyError:
                    raise KeyError(
                        f"array {name!r} not registered in layout") from None
                if len(index) != len(extents):
                    raise ValueError(
                        f"{name}: index {index} has {len(index)} dims, "
                        f"layout has {len(extents)}")
                offset = 0
                for d, ix in enumerate(index):
                    lo, hi = extents[d]
                    if not lo <= ix <= hi:
                        raise IndexError(
                            f"{name}{index}: dim {d} out of extent "
                            f"[{lo},{hi}]")
                    offset += (ix - lo) * strides[d]
                append(base + offset * element_bytes)
        return out


def simulate_trace(trace: Iterable[Tuple[str, Tuple[int, ...], str]],
                   layout: Layout,
                   config: Optional[CacheConfig] = None) -> CacheStats:
    """Run an interpreter address trace through a cache."""
    cache = Cache(config or CacheConfig())
    with _obs.span("cachesim.simulate"):
        return cache.access_all(layout.addresses(trace))
