"""Cache simulation substrate for the data-locality benchmarks."""

from repro.cache.simulator import (
    Cache,
    CacheConfig,
    CacheStats,
    Layout,
    simulate_trace,
)

__all__ = ["Cache", "CacheConfig", "CacheStats", "Layout", "simulate_trace"]
