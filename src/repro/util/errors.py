"""Exception hierarchy for the repro package.

All framework-specific errors derive from :class:`ReproError` so callers
can catch everything the library raises with a single except clause while
still being able to distinguish legality failures from parse or codegen
problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IllegalTransformationError(ReproError):
    """A transformation failed its legality test for a given loop nest.

    Raised by code generation entry points when the caller asks to apply a
    transformation that the unified legality test rejects.  The message
    records which part of the test failed (dependence-vector test or loop
    bounds preconditions) and for which template instantiation.
    """


class PreconditionViolation(ReproError):
    """A template's loop-bounds precondition is violated.

    Carries the template name, the offending loop and index variable, the
    required type-lattice bound and the actual classified type so that
    optimizers can report *why* a candidate transformation was rejected.
    """

    def __init__(self, template, message, loop=None, var=None,
                 required=None, actual=None):
        super().__init__(f"{template}: {message}")
        self.template = template
        self.message = message
        self.loop = loop
        self.var = var
        self.required = required
        self.actual = actual

    def __reduce__(self):
        # Default exception pickling replays ``args`` — a single combined
        # string — into the multi-argument __init__ and fails.  Legality
        # reports carrying these violations cross process boundaries in
        # parallel search, so rebuild from the original arguments.
        return (PreconditionViolation,
                (self.template, self.message, self.loop, self.var,
                 self.required, self.actual))


class CodegenError(ReproError):
    """Code generation could not produce a transformed loop nest."""


class ParseError(ReproError):
    """The loop-nest or expression parser rejected its input."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class AnalysisError(ReproError):
    """Dependence analysis could not handle the given loop nest."""
