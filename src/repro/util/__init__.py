"""Shared utilities: error types, integer math, integer matrices.

These are the lowest-level helpers used throughout the framework. They
deliberately avoid any dependency on the expression or IR layers so that
every other package may import them freely.
"""

from repro.util.errors import (
    ReproError,
    IllegalTransformationError,
    PreconditionViolation,
    CodegenError,
    ParseError,
    AnalysisError,
)
from repro.util.intmath import (
    floor_div,
    ceil_div,
    gcd,
    gcd_many,
    lcm,
    extended_gcd,
    sign,
    trip_count,
)
from repro.util.matrices import IntMatrix

__all__ = [
    "ReproError",
    "IllegalTransformationError",
    "PreconditionViolation",
    "CodegenError",
    "ParseError",
    "AnalysisError",
    "floor_div",
    "ceil_div",
    "gcd",
    "gcd_many",
    "lcm",
    "extended_gcd",
    "sign",
    "trip_count",
    "IntMatrix",
]
