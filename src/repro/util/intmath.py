"""Exact integer arithmetic helpers.

Loop-bound manipulation needs floor/ceiling division that is correct for
negative operands (Python's ``//`` already floors, but we make intent
explicit and add the ceiling counterpart), plus gcd/lcm machinery for the
dependence tests and unimodular matrix inversion.
"""

from __future__ import annotations

import math


def sign(x: int) -> int:
    """Return -1, 0 or +1 according to the sign of *x*."""
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def floor_div(a: int, b: int) -> int:
    """Floor division correct for all sign combinations.

    ``floor_div(7, 2) == 3``, ``floor_div(-7, 2) == -4``.
    """
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling division correct for all sign combinations.

    ``ceil_div(7, 2) == 4``, ``ceil_div(-7, 2) == -3``.
    """
    if b == 0:
        raise ZeroDivisionError("ceil_div by zero")
    return -floor_div(-a, b)


def gcd(a: int, b: int) -> int:
    """Greatest common divisor; ``gcd(0, 0) == 0`` by convention."""
    return math.gcd(a, b)


def gcd_many(values) -> int:
    """GCD of an iterable of integers (0 for an empty iterable)."""
    g = 0
    for v in values:
        g = math.gcd(g, v)
        if g == 1:
            return 1
    return g


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lcm(x, 0) == 0``."""
    if a == 0 or b == 0:
        return 0
    return abs(a // math.gcd(a, b) * b)


def extended_gcd(a: int, b: int):
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def trip_count(lower: int, upper: int, step: int) -> int:
    """Number of iterations of ``do x = lower, upper, step`` (Fortran rules).

    Zero when the loop is empty; raises on a zero step.
    """
    if step == 0:
        raise ValueError("loop step must be nonzero")
    count = floor_div(upper - lower, step) + 1
    return max(count, 0)


def last_iterate(lower: int, upper: int, step: int) -> int:
    """The final value taken by the index of ``do x = lower, upper, step``.

    Undefined (raises) for an empty loop.
    """
    n = trip_count(lower, upper, step)
    if n == 0:
        raise ValueError("empty loop has no last iterate")
    return lower + (n - 1) * step
