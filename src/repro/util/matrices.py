"""Exact integer matrices for unimodular transformations.

The :class:`IntMatrix` class implements just enough exact linear algebra
for the framework: multiplication, determinant (Bareiss fraction-free
elimination, exact over the integers), adjugate-based inversion of
unimodular matrices, and constructors for the elementary iteration-space
matrices (interchange/permutation, reversal, skew).

Matrices are immutable; all operations return new instances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple


class IntMatrix:
    """An immutable 2-D matrix of Python integers.

    Rows are stored as a tuple of tuples.  Construction validates that the
    data is rectangular and that every entry is an ``int`` (``bool`` is
    rejected to avoid silent surprises).
    """

    __slots__ = ("_rows", "_nrows", "_ncols")

    def __init__(self, rows: Iterable[Sequence[int]]):
        materialized: List[Tuple[int, ...]] = []
        width = None
        for row in rows:
            tup = tuple(row)
            for entry in tup:
                if not isinstance(entry, int) or isinstance(entry, bool):
                    raise TypeError(f"matrix entries must be int, got {entry!r}")
            if width is None:
                width = len(tup)
            elif len(tup) != width:
                raise ValueError("matrix rows must all have the same length")
            materialized.append(tup)
        if not materialized or width == 0:
            raise ValueError("matrix must be non-empty")
        self._rows = tuple(materialized)
        self._nrows = len(materialized)
        self._ncols = width

    # -- basic structure ------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._nrows, self._ncols)

    def row(self, i: int) -> Tuple[int, ...]:
        return self._rows[i]

    def col(self, j: int) -> Tuple[int, ...]:
        return tuple(r[j] for r in self._rows)

    def rows(self) -> Tuple[Tuple[int, ...], ...]:
        return self._rows

    def __getitem__(self, key: Tuple[int, int]) -> int:
        i, j = key
        return self._rows[i][j]

    def __eq__(self, other) -> bool:
        return isinstance(other, IntMatrix) and self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = ", ".join(repr(list(r)) for r in self._rows)
        return f"IntMatrix([{body}])"

    def pretty(self) -> str:
        """Multi-line aligned rendering, used by benches and examples."""
        widths = [max(len(str(self._rows[i][j])) for i in range(self._nrows))
                  for j in range(self._ncols)]
        lines = []
        for r in self._rows:
            cells = [str(v).rjust(w) for v, w in zip(r, widths)]
            lines.append("[ " + "  ".join(cells) + " ]")
        return "\n".join(lines)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def identity(n: int) -> "IntMatrix":
        return IntMatrix([[1 if i == j else 0 for j in range(n)]
                          for i in range(n)])

    @staticmethod
    def permutation(perm: Sequence[int]) -> "IntMatrix":
        """Matrix P with P·x placing old coordinate *k* at position ``perm[k]``.

        *perm* is 0-based: ``perm[k] = p`` means loop *k* of the input nest
        moves to position *p* of the output nest, i.e. ``y[perm[k]] = x[k]``.
        """
        n = len(perm)
        if sorted(perm) != list(range(n)):
            raise ValueError(f"not a permutation of 0..{n - 1}: {perm!r}")
        rows = [[0] * n for _ in range(n)]
        for k, p in enumerate(perm):
            rows[p][k] = 1
        return IntMatrix(rows)

    @staticmethod
    def reversal(n: int, which: Sequence[int]) -> "IntMatrix":
        """Diagonal matrix negating the coordinates listed in *which* (0-based)."""
        flip = set(which)
        if not flip.issubset(range(n)):
            raise ValueError(f"reversal positions out of range: {which!r}")
        return IntMatrix([[(-1 if i in flip else 1) if i == j else 0
                           for j in range(n)] for i in range(n)])

    @staticmethod
    def skew(n: int, target: int, source: int, factor: int) -> "IntMatrix":
        """Skew loop *target* by *factor* times loop *source* (0-based).

        The resulting matrix maps ``y[target] = x[target] + factor*x[source]``
        and is the identity elsewhere.  ``target != source`` is required so
        the matrix stays unimodular.
        """
        if target == source:
            raise ValueError("skew target and source must differ")
        if not (0 <= target < n and 0 <= source < n):
            raise ValueError("skew positions out of range")
        rows = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        rows[target][source] = factor
        return IntMatrix(rows)

    @staticmethod
    def interchange(n: int, a: int, b: int) -> "IntMatrix":
        """Permutation matrix swapping loops *a* and *b* (0-based)."""
        perm = list(range(n))
        perm[a], perm[b] = perm[b], perm[a]
        return IntMatrix.permutation(perm)

    # -- arithmetic -------------------------------------------------------

    def __matmul__(self, other: "IntMatrix") -> "IntMatrix":
        return self.multiply(other)

    def multiply(self, other: "IntMatrix") -> "IntMatrix":
        if self._ncols != other._nrows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}")
        ocols = other._ncols
        rows = []
        for i in range(self._nrows):
            srow = self._rows[i]
            row = [sum(srow[k] * other._rows[k][j] for k in range(self._ncols))
                   for j in range(ocols)]
            rows.append(row)
        return IntMatrix(rows)

    def apply(self, vector: Sequence[int]) -> Tuple[int, ...]:
        """Matrix-vector product with a plain integer vector."""
        if len(vector) != self._ncols:
            raise ValueError("vector length mismatch")
        return tuple(sum(r[k] * vector[k] for k in range(self._ncols))
                     for r in self._rows)

    def transpose(self) -> "IntMatrix":
        return IntMatrix([self.col(j) for j in range(self._ncols)])

    # -- determinant / inverse -------------------------------------------

    def determinant(self) -> int:
        """Exact determinant via Bareiss fraction-free elimination."""
        if self._nrows != self._ncols:
            raise ValueError("determinant of a non-square matrix")
        n = self._nrows
        m = [list(r) for r in self._rows]
        sign_flip = 1
        prev = 1
        for k in range(n - 1):
            if m[k][k] == 0:
                pivot_row = next((r for r in range(k + 1, n) if m[r][k] != 0),
                                 None)
                if pivot_row is None:
                    return 0
                m[k], m[pivot_row] = m[pivot_row], m[k]
                sign_flip = -sign_flip
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
                m[i][k] = 0
            prev = m[k][k]
        return sign_flip * m[n - 1][n - 1]

    def is_unimodular(self) -> bool:
        """True iff square, integer (by construction) and determinant ±1."""
        if self._nrows != self._ncols:
            return False
        return self.determinant() in (1, -1)

    def inverse_unimodular(self) -> "IntMatrix":
        """Exact integer inverse; requires the matrix to be unimodular.

        Uses Gauss-Jordan elimination over exact rationals and verifies
        that the result is integral (always true for unimodular input).
        """
        if self._nrows != self._ncols:
            raise ValueError("inverse of a non-square matrix")
        det = self.determinant()
        if det not in (1, -1):
            raise ValueError(
                f"matrix is not unimodular (determinant {det}); "
                "integer inverse does not exist")
        n = self._nrows
        aug = [[Fraction(v) for v in self._rows[i]] +
               [Fraction(1 if i == j else 0) for j in range(n)]
               for i in range(n)]
        for col in range(n):
            pivot = next(r for r in range(col, n) if aug[r][col] != 0)
            aug[col], aug[pivot] = aug[pivot], aug[col]
            inv = Fraction(1) / aug[col][col]
            aug[col] = [v * inv for v in aug[col]]
            for r in range(n):
                if r != col and aug[r][col] != 0:
                    factor = aug[r][col]
                    aug[r] = [a - factor * b for a, b in zip(aug[r], aug[col])]
        rows = []
        for i in range(n):
            row = []
            for j in range(n):
                v = aug[i][n + j]
                if v.denominator != 1:
                    raise ArithmeticError("non-integer inverse entry")
                row.append(int(v))
            rows.append(row)
        return IntMatrix(rows)
