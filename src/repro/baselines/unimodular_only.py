"""Baseline: the pure unimodular framework (Banerjee; Wolf & Lam).

The comparator the paper argues against.  A transformation here *is* an
``n x n`` unimodular matrix; composition is matrix multiplication; the
legality test demands every transformed dependence vector be
lexicographically positive.  Its two documented limitations, which the
expressiveness bench (`bench_perf_baseline`) demonstrates:

* it cannot represent Parallelize, Block, Coalesce or Interleave at all
  (:meth:`UnimodularFramework.from_template` raises
  :class:`CannotExpress` for them — "none of parallelization, blocking,
  coalescing, interleaving can be represented by a transformation
  matrix");
* it requires linear bounds and constant steps even for plain
  interchange/reversal, where the general framework's ReversePermute
  template needs only invariance (Section 4.2's sparse-matrix example,
  Figure 4(c)).

Code generation honestly reuses the general framework's Unimodular
template (the algorithms coincide on this common subset).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.template import Template
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular
from repro.deps.rules import unimodular_map
from repro.deps.vector import DepSet, DepVector
from repro.ir.loopnest import LoopNest
from repro.util.errors import IllegalTransformationError, ReproError
from repro.util.matrices import IntMatrix


class CannotExpress(ReproError):
    """The unimodular framework cannot represent this transformation."""


class UnimodularFramework:
    """A transformation in the matrix-only world."""

    __slots__ = ("matrix",)

    def __init__(self, matrix: Union[IntMatrix, Sequence[Sequence[int]]]):
        m = matrix if isinstance(matrix, IntMatrix) else IntMatrix(matrix)
        if not m.is_unimodular():
            raise ValueError("matrix is not unimodular")
        self.matrix = m

    @property
    def n(self) -> int:
        return self.matrix.nrows

    # -- construction --------------------------------------------------------

    @staticmethod
    def identity(n: int) -> "UnimodularFramework":
        return UnimodularFramework(IntMatrix.identity(n))

    @staticmethod
    def interchange(n: int, a: int, b: int) -> "UnimodularFramework":
        return UnimodularFramework(IntMatrix.interchange(n, a - 1, b - 1))

    @staticmethod
    def reversal(n: int, which: Sequence[int]) -> "UnimodularFramework":
        return UnimodularFramework(
            IntMatrix.reversal(n, [k - 1 for k in which]))

    @staticmethod
    def skew(n: int, target: int, source: int,
             factor: int = 1) -> "UnimodularFramework":
        return UnimodularFramework(
            IntMatrix.skew(n, target - 1, source - 1, factor))

    @staticmethod
    def from_template(step: Template) -> "UnimodularFramework":
        """Embed a kernel template instantiation, when possible.

        Raises :class:`CannotExpress` for Parallelize, Block, Coalesce
        and Interleave — the paper's headline limitation of this
        framework.
        """
        if isinstance(step, Unimodular):
            return UnimodularFramework(step.matrix)
        if isinstance(step, ReversePermute):
            n = step.n
            rows = [[0] * n for _ in range(n)]
            for k in range(n):
                rows[step.perm[k] - 1][k] = -1 if step.rev[k] else 1
            return UnimodularFramework(IntMatrix(rows))
        raise CannotExpress(
            f"{step.signature()} has no unimodular matrix representation")

    # -- composition ------------------------------------------------------------

    def then(self, other: "UnimodularFramework") -> "UnimodularFramework":
        """Apply *self* first, then *other*: combined matrix is
        ``other.matrix @ self.matrix``."""
        return UnimodularFramework(other.matrix @ self.matrix)

    # -- legality ------------------------------------------------------------------

    def map_dep_set(self, deps: DepSet) -> DepSet:
        return DepSet([unimodular_map(self.matrix, v) for v in deps])

    def is_legal(self, deps: DepSet) -> bool:
        """Wolf & Lam's test: every transformed vector must be
        lexicographically positive."""
        return all(v.is_lex_positive() for v in self.map_dep_set(deps))

    # -- code generation ------------------------------------------------------------

    def apply(self, nest: LoopNest, deps: DepSet,
              names: Optional[Sequence[str]] = None) -> LoopNest:
        if not self.is_legal(deps):
            raise IllegalTransformationError(
                "unimodular transformation rejected: a transformed "
                "dependence vector is not lexicographically positive")
        template = Unimodular(self.n, self.matrix, names=names)
        template.check_preconditions(nest.loops)
        from repro.core.sequence import Transformation
        return Transformation.of(template).apply(nest, deps, check=False)

    def __repr__(self):
        return f"UnimodularFramework({self.matrix!r})"
