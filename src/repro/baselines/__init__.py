"""Baseline frameworks the paper compares against."""

from repro.baselines.unimodular_only import CannotExpress, UnimodularFramework

__all__ = ["CannotExpress", "UnimodularFramework"]
