"""The long-lived transformation server.

One :class:`TransformationService` owns the session's warm state
(:class:`~repro.service.state.WarmState`) and — with ``jobs > 1`` — a
single :class:`~repro.parallel.pool.ShardedPool` that is
:meth:`~repro.parallel.pool.ShardedPool.rebind`-ed to each request's
workload instead of forked fresh per request.

Threading model
---------------

Transports (the stdio reader, TCP connection readers) run on daemon
threads and only *admit* work: decode the line, run admission control,
enqueue.  All request **processing** happens on the thread that calls
:meth:`TransformationService.run` — the main thread under the CLI — so
per-request budgets can reuse the ``SIGALRM``-based
:func:`~repro.parallel.worker.call_with_timeout` and the forked pool
keeps its fork-from-the-owner discipline.

Admission control
-----------------

The request queue is bounded (``queue_max``).  A request arriving at a
full queue is answered *immediately* with a typed ``backpressure``
error — the server never blocks a transport on its own queue, and the
client can tell "retry later" apart from a failure.  After drain starts
(SIGTERM, SIGINT, stdin EOF, or a ``shutdown`` request) new requests
are refused with ``shutting-down`` while everything already admitted is
still processed and answered.

Batching
--------

The processing loop drains up to ``batch_max`` queued requests per
cycle.  Legality requests within a batch that target the same
``(nest, level)`` are evaluated together through the shared pool
(one fork per *batch group*, not per request); their content-keyed
cache deltas merge back into the warm legality cache, so a later
identical request is a pure cache hit.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.core.spec import parse_steps
from repro.obs import distributed as _dist
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.parallel.merge import merge_outcome
from repro.parallel.worker import call_with_timeout
from repro.resilience import chaos as _chaos
from repro.resilience import guards as _guards
from repro.service import protocol
from repro.service.protocol import (
    BACKPRESSURE,
    BAD_INPUT,
    BAD_REQUEST,
    ILLEGAL,
    INTERNAL,
    PROTOCOL_VERSION,
    SHUTTING_DOWN,
    TIMEOUT,
    UNAVAILABLE,
    ProtocolError,
    error_response,
    ok_response,
)
from repro.optimize.model import MODEL_NAMES
from repro.runtime import ENGINE_NAMES
from repro.service.state import WarmState
from repro.util.errors import ReproError

_LEVELS = ("gcd", "banerjee", "fm")


def _zero_score(transformation, nest, deps) -> float:
    """Scoring stub for pooled legality batches: legality is the whole
    question, so every legal candidate scores alike."""
    return 0.0


class _Pending:
    """One admitted request waiting in the queue."""

    __slots__ = ("req_id", "op", "params", "reply", "admitted", "idem",
                 "trace")

    def __init__(self, req_id, op, params, reply, admitted, idem=None,
                 trace=None):
        self.req_id = req_id
        self.op = op
        self.params = params
        self.reply = reply
        self.admitted = admitted
        self.idem = idem
        self.trace = trace


class TransformationService:
    """Warm-state request processor behind ``repro serve``."""

    #: Responses remembered per idempotency key; a replayed key is
    #: answered from this window instead of re-executed.
    IDEM_WINDOW = 512

    def __init__(self, *, jobs: int = 1, queue_max: int = 64,
                 batch_max: int = 8,
                 request_timeout: Optional[float] = None,
                 cache_max_entries: Optional[int] = 4096,
                 compiled_max_entries: int = 128,
                 heartbeat_file: Optional[str] = None,
                 hang_grace: float = 5.0,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 25,
                 default_engine: str = "compiled",
                 default_prune: bool = False,
                 default_speculate: bool = False,
                 default_model: Optional[str] = None):
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        if default_engine not in ENGINE_NAMES:
            raise ValueError(
                f"default_engine must be one of {ENGINE_NAMES}, "
                f"got {default_engine!r}")
        if default_model is not None and default_model not in MODEL_NAMES:
            raise ValueError(
                f"default_model must be one of {MODEL_NAMES} or None, "
                f"got {default_model!r}")
        self.default_engine = default_engine
        self.default_prune = bool(default_prune)
        self.default_speculate = bool(default_speculate)
        self.default_model = default_model
        self.jobs = max(1, int(jobs))
        self.queue_max = queue_max
        self.batch_max = max(1, int(batch_max))
        self.request_timeout = request_timeout
        self.heartbeat_file = heartbeat_file
        self.hang_grace = max(float(hang_grace), 0.2)
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.state = WarmState(legality_max_entries=cache_max_entries,
                               compiled_max_entries=compiled_max_entries)
        if checkpoint_path and os.path.exists(checkpoint_path):
            self.state.restore(checkpoint_path)
        self.pool = None
        if self.jobs > 1:
            from repro.parallel.pool import ShardedPool
            self.pool = ShardedPool(None, None, _zero_score, self.jobs)
        self._cond = threading.Condition()
        self._items: deque = deque()
        self._draining = False
        self.drain_reason: Optional[str] = None
        self._started = time.monotonic()
        self._last_tick = time.monotonic()
        self._since_checkpoint = 0
        # Idempotency: completed responses keyed by idem (bounded LRU)
        # plus replies attached to a still-in-flight key, so a replay
        # racing its original neither re-executes nor goes unanswered.
        self._idem_done: Dict[str, dict] = {}
        self._idem_waiters: Dict[str, List[Tuple[object, Callable]]] = {}
        self.counters: Dict[str, object] = {
            "accepted": 0, "completed": 0, "errors": 0, "timeouts": 0,
            "backpressure": 0, "rejected_shutdown": 0,
            "batches": 0, "max_batch": 0, "batched_legality": 0,
            "idem_replays": 0, "dropped_replies": 0,
            "by_op": {},
        }
        self._dispatch: Dict[str, Callable] = {
            "ping": self._op_ping,
            "parse": self._op_parse,
            "analyze": self._op_analyze,
            "legality": self._op_legality,
            "apply": self._op_apply,
            "run": self._op_run,
            "search": self._op_search,
            "stats": self._op_stats,
            "telemetry": self._op_telemetry,
            "shutdown": self._op_shutdown,
        }

    # -- admission (transport threads) -------------------------------------

    def ingest(self, line: str, reply: Callable[[dict], None]) -> None:
        """Decode one request line and admit it; rejections (malformed,
        backpressure, draining) are answered immediately on the
        transport's thread."""
        try:
            req_id, op, params, idem, trace = protocol.decode_request(line)
        except ProtocolError as exc:
            reply(error_response(getattr(exc, "request_id", None),
                                 exc.code, exc.message))
            return
        self.submit(req_id, op, params, reply, idem=idem, trace=trace)

    def ingest_bytes(self, frame: bytes,
                     reply: Callable[[dict], None]) -> None:
        """Validate one raw frame (size cap, strict UTF-8) before
        decoding; malformed frames get a typed ``bad-request`` and the
        connection stays alive."""
        cap = protocol.max_frame_bytes()
        if len(frame) > cap:
            reply(error_response(
                None, BAD_REQUEST,
                f"frame of {len(frame)} bytes exceeds the {cap}-byte "
                f"limit (REPRO_MAX_FRAME_BYTES)"))
            return
        try:
            line = frame.decode("utf-8")
        except UnicodeDecodeError as exc:
            reply(error_response(None, BAD_REQUEST,
                                 f"frame is not valid UTF-8: {exc}"))
            return
        if line.strip():
            self.ingest(line, reply)

    def submit(self, req_id, op, params,
               reply: Callable[[dict], None],
               idem: Optional[str] = None,
               trace: Optional[dict] = None) -> bool:
        """Admission control; returns True when enqueued.  Rejections
        reply immediately with ``shutting-down`` or ``backpressure``;
        a replayed idempotency key is answered from the dedup window
        (or attached to the in-flight original) without re-executing."""
        rejection = None
        replayed = None
        with self._cond:
            if idem is not None and idem in self._idem_done:
                replayed = dict(self._idem_done[idem], id=req_id)
                self.counters["idem_replays"] = (
                    int(self.counters["idem_replays"]) + 1)
            elif idem is not None and idem in self._idem_waiters:
                self._idem_waiters[idem].append((req_id, reply))
                self.counters["idem_replays"] = (
                    int(self.counters["idem_replays"]) + 1)
                return True
            elif self._draining:
                self.counters["rejected_shutdown"] = (
                    int(self.counters["rejected_shutdown"]) + 1)
                rejection = error_response(
                    req_id, SHUTTING_DOWN,
                    f"server is draining ({self.drain_reason})")
            elif len(self._items) >= self.queue_max:
                self.counters["backpressure"] = (
                    int(self.counters["backpressure"]) + 1)
                rejection = error_response(
                    req_id, BACKPRESSURE,
                    f"request queue full ({self.queue_max}); retry later")
            else:
                self.counters["accepted"] = (
                    int(self.counters["accepted"]) + 1)
                self._items.append(_Pending(req_id, op, params, reply,
                                            time.monotonic(), idem=idem,
                                            trace=trace))
                if idem is not None:
                    self._idem_waiters[idem] = []
                depth = len(self._items)
                self._cond.notify()
        if replayed is not None:
            if _obs.enabled():
                get_metrics().counter("service.idem_replays").inc()
                _obs.event("service.idem_replay", op=op)
            reply(replayed)
            return False
        if rejection is not None:
            if _obs.enabled():
                get_metrics().counter(
                    "service.rejected." + rejection["error"]["code"]).inc()
            reply(rejection)
            return False
        if _obs.enabled():
            get_metrics().gauge("service.queue_depth").set(depth)
        return True

    def request_drain(self, reason: str) -> None:
        """Stop admitting; finish what is queued, then let :meth:`run`
        return.  Safe to call from a signal handler (attribute writes
        only; the processing loop polls)."""
        if not self._draining:
            self._draining = True
            self.drain_reason = reason

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain.  Only possible from the main
        thread; elsewhere (in-process test harnesses) this is a no-op."""
        if threading.current_thread() is not threading.main_thread():
            return
        signal.signal(signal.SIGTERM,
                      lambda s, f: self.request_drain("SIGTERM"))
        signal.signal(signal.SIGINT,
                      lambda s, f: self.request_drain("SIGINT"))

    # -- the processing loop (owning thread) -------------------------------

    def run(self) -> None:
        """Process requests until drained: admitted work is always
        answered, even after drain starts."""
        self._started = time.monotonic()
        self._last_tick = time.monotonic()
        if self.heartbeat_file:
            threading.Thread(target=self._heartbeat_loop,
                             name="service-heartbeat",
                             daemon=True).start()
        while True:
            self._last_tick = time.monotonic()
            batch: List[_Pending] = []
            with self._cond:
                if not self._items:
                    if self._draining:
                        break
                    # Short poll so a signal-handler drain (attribute
                    # write, no notify) is noticed promptly.
                    self._cond.wait(0.1)
                while self._items and len(batch) < self.batch_max:
                    batch.append(self._items.popleft())
                depth = len(self._items)
            if not batch:
                continue
            if _obs.enabled():
                metrics = get_metrics()
                metrics.gauge("service.queue_depth").set(depth)
                metrics.histogram("service.batch_size").observe(len(batch))
            self.counters["batches"] = int(self.counters["batches"]) + 1
            if len(batch) > int(self.counters["max_batch"]):
                self.counters["max_batch"] = len(batch)
            with _obs.span("service.batch", size=len(batch)):
                prefetched = self._prefetch_legality(batch)
                for pending in batch:
                    response = self._handle(pending, prefetched)
                    # The response is recorded in the idem window BEFORE
                    # the send-or-drop decision: a drop models a lost
                    # reply, and the client's replay must find the
                    # completed work waiting for it.
                    waiters = self._finish_idem(pending, response)
                    if _chaos.decide("service.dispatch", "drop"):
                        self.counters["dropped_replies"] = (
                            int(self.counters["dropped_replies"]) + 1)
                        if _obs.enabled():
                            get_metrics().counter(
                                "service.dropped_replies").inc()
                    else:
                        pending.reply(response)
                    for waiter_id, waiter_reply in waiters:
                        waiter_reply(dict(response, id=waiter_id))
            self._maybe_checkpoint(len(batch))
        if self.checkpoint_path:
            self.state.checkpoint(self.checkpoint_path)

    def _finish_idem(self, pending: _Pending, response: dict):
        """Record *response* under the request's idem key and detach any
        replays that arrived while it was in flight.

        Responses carrying a retryable error code are answered but NOT
        recorded: those codes mean the work was refused or lost, not
        completed, and remembering them would replay the transient
        error to every retry of the same key — turning a one-shot
        fault into a permanent failure for that client.
        """
        if pending.idem is None:
            return []
        error = response.get("error") if not response.get("ok") else None
        retryable = (error or {}).get("code") in protocol.RETRYABLE_CODES
        with self._cond:
            if retryable:
                return self._idem_waiters.pop(pending.idem, [])
            self._idem_done[pending.idem] = response
            while len(self._idem_done) > self.IDEM_WINDOW:
                del self._idem_done[next(iter(self._idem_done))]
            return self._idem_waiters.pop(pending.idem, [])

    def _maybe_checkpoint(self, completed: int) -> None:
        if not self.checkpoint_path:
            return
        self._since_checkpoint += completed
        if self._since_checkpoint >= self.checkpoint_every:
            self._since_checkpoint = 0
            self.state.checkpoint(self.checkpoint_path)

    def _heartbeat_loop(self) -> None:
        """Touch the heartbeat file while the processing loop is live.

        The touch is gated on the run loop's last tick: if a request
        hangs the owning thread, the mtime goes stale and the
        supervisor's hang detector fires.  A daemon thread that touched
        unconditionally would mask exactly the failures it exists to
        expose.
        """
        interval = max(self.hang_grace / 4.0, 0.05)
        while True:
            if time.monotonic() - self._last_tick <= self.hang_grace:
                try:
                    with open(self.heartbeat_file, "a"):
                        pass
                    os.utime(self.heartbeat_file, None)
                except OSError:
                    pass
            time.sleep(interval)

    def _handle(self, pending: _Pending, prefetched: Dict[int, object]):
        op, params = pending.op, pending.params
        start = time.monotonic()
        code: Optional[str] = None
        # A request carrying a trace context joins the caller's trace:
        # the request span adopts the remote trace id, and the completed
        # subtree is shipped back on the response for stitching.
        trace_ctx = pending.trace if _obs.enabled() else None
        root_sp = None
        try:
            if trace_ctx is not None:
                cm = _dist.adopt(trace_ctx, "service.request", op=op)
            else:
                cm = _obs.span("service.request", op=op)
            with cm as root_sp:
                # crash/hang kinds act here, on the owning thread: a
                # crash kills the process (the supervisor's problem), a
                # hang stalls the loop until the heartbeat goes stale.
                _chaos.inject("service.dispatch")
                _guards.check_rss()
                handler = self._dispatch[op]
                if op == "legality":
                    fn = lambda: handler(params,  # noqa: E731
                                         prefetched.get(id(pending)))
                else:
                    fn = lambda: handler(params)  # noqa: E731
                budget = self._outer_budget(op, params)
                value, timed_out = call_with_timeout(fn, budget)
                if timed_out:
                    raise ProtocolError(
                        TIMEOUT,
                        f"request overran the server budget ({budget}s)")
            response = ok_response(pending.req_id, value)
        except _chaos.ChaosError as exc:
            code = UNAVAILABLE
            response = error_response(pending.req_id, UNAVAILABLE, str(exc))
        except ProtocolError as exc:
            code = exc.code
            response = error_response(pending.req_id, exc.code, exc.message)
        except ReproError as exc:
            code = BAD_INPUT
            response = error_response(pending.req_id, BAD_INPUT, str(exc))
        except (RecursionError, MemoryError) as exc:
            # The guards should have converted these upstream; if one
            # still escapes, the client gets a typed error, never a
            # raw blowup.
            code = BAD_INPUT
            response = error_response(
                pending.req_id, BAD_INPUT,
                f"request exhausted a resource limit "
                f"({type(exc).__name__}: {exc})")
        except Exception as exc:  # noqa: BLE001 — the server must answer
            code = INTERNAL
            response = error_response(
                pending.req_id, INTERNAL,
                f"{type(exc).__name__}: {exc}")
        if trace_ctx is not None and _obs.enabled():
            tracer = _obs.get_tracer()
            if tracer is not None and isinstance(root_sp, _obs.Span):
                spans, dropped = _dist.ship(
                    tracer, root_sp, trace_ctx,
                    extra=_dist.get_collector().drain(trace_ctx["id"]))
                if spans:
                    response["spans"] = spans
                if dropped:
                    response["spans_dropped"] = dropped
        elapsed_ms = (time.monotonic() - start) * 1000.0
        if code is None:
            self.counters["completed"] = int(self.counters["completed"]) + 1
        else:
            self.counters["errors"] = int(self.counters["errors"]) + 1
            if code == TIMEOUT:
                self.counters["timeouts"] = (
                    int(self.counters["timeouts"]) + 1)
        by_op: Dict[str, int] = self.counters["by_op"]  # type: ignore
        by_op[op] = by_op.get(op, 0) + 1
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("service.requests").inc()
            metrics.counter(f"service.requests.{op}").inc()
            if code is not None:
                metrics.counter(f"service.errors.{code}").inc()
            metrics.histogram(f"service.latency_ms.{op}").observe(elapsed_ms)
        return response

    def _outer_budget(self, op: str, params: dict) -> Optional[float]:
        """The per-request wall-clock budget, or None.

        ``call_with_timeout`` budgets nest (each frame saves and
        re-arms the enclosing itimer), so a search with an explicit
        ``candidate_timeout`` now runs under the server budget too —
        the inner per-candidate timers no longer clobber it.  Pooled
        searches remain exempt: their timers live in worker processes,
        but the parent must keep draining the result queue, and a
        ``SIGALRM`` there would abandon workers mid-protocol.
        """
        if not self.request_timeout:
            return None
        if op == "search" and self.pool is not None:
            return None
        return self.request_timeout

    # -- pooled legality batching ------------------------------------------

    def _prefetch_legality(self, batch) -> Dict[int, object]:
        """Evaluate same-nest legality requests of *batch* together
        through the shared pool; returns ``id(pending) ->
        LegalityReport`` for the subset the workers completed (the
        per-request handler computes the rest — and takes warm-cache
        hits for everything merged here)."""
        if self.pool is None or self.pool.degraded:
            return {}
        groups: Dict[Tuple, List[Tuple[_Pending, object]]] = {}
        for pending in batch:
            if pending.op != "legality":
                continue
            try:
                nest, level = self._nest_level(pending.params)
                transformation = self._steps(pending.params, nest.depth)
            except Exception:
                continue  # the handler will surface the real error
            groups.setdefault((nest, level), []).append(
                (pending, transformation))
        out: Dict[int, object] = {}
        for (nest, level), members in groups.items():
            if len(members) < 2:
                continue
            try:
                deps = self.state.deps(nest, level)
                self.pool.rebind(nest, deps, _zero_score)
                outcomes = self.pool.evaluate_level(
                    0, [t for _, t in members], self.state.legality_cache)
            except Exception:
                continue  # fall back to per-request serial evaluation
            self.counters["batched_legality"] = (
                int(self.counters["batched_legality"]) + len(outcomes))
            if _obs.enabled():
                get_metrics().counter(
                    "service.batched_legality").inc(len(outcomes))
            for idx, (pending, _t) in enumerate(members):
                outcome = outcomes.get(idx)
                if outcome is not None:
                    out[id(pending)] = merge_outcome(
                        self.state.legality_cache, nest, deps, outcome)
        return out

    # -- shared param plumbing ---------------------------------------------

    def _nest_level(self, params: dict):
        text = params.get("text")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError(BAD_INPUT,
                                "params.text must be a non-empty string")
        level = params.get("level", "fm")
        if level not in _LEVELS:
            raise ProtocolError(
                BAD_INPUT,
                f"params.level must be one of {', '.join(_LEVELS)}")
        nest = self.state.nest(text, bool(params.get("sink", False)))
        return nest, level

    def _steps(self, params: dict, depth: int):
        spec = params.get("steps")
        if not isinstance(spec, str) or not spec.strip():
            raise ProtocolError(BAD_INPUT,
                                "params.steps must be a non-empty string")
        return parse_steps(spec, depth)

    # -- operations --------------------------------------------------------

    def _op_ping(self, params: dict) -> dict:
        return {"pong": True, "protocol": PROTOCOL_VERSION,
                "version": __version__}

    def _op_parse(self, params: dict) -> dict:
        nest, _level = self._nest_level(params)
        return {"depth": nest.depth,
                "indices": list(nest.indices),
                "headers": [lp.header() for lp in nest.loops],
                "pretty": nest.pretty()}

    def _op_analyze(self, params: dict) -> dict:
        nest, level = self._nest_level(params)
        deps = self.state.deps(nest, level)
        return {"depth": nest.depth, "level": level,
                "count": len(deps),
                "deps": [str(v) for v in deps]}

    def _op_legality(self, params: dict, prefetched=None) -> dict:
        nest, level = self._nest_level(params)
        transformation = self._steps(params, nest.depth)
        deps = self.state.deps(nest, level)
        report = prefetched
        if report is None:
            report = self.state.legality_cache.legality(
                transformation, nest, deps)
        doc = {"legal": report.legal,
               "sequence": transformation.signature(),
               "spec": transformation.to_spec(),
               "deps": len(deps)}
        if not report.legal:
            doc["reason"] = report.reason
        return doc

    def _op_apply(self, params: dict) -> dict:
        nest, level = self._nest_level(params)
        transformation = self._steps(params, nest.depth)
        emit = params.get("emit", "loop")
        if emit not in ("loop", "c", "python", "pretty"):
            raise ProtocolError(
                BAD_INPUT,
                "params.emit must be one of loop, c, python, pretty")
        if params.get("force"):
            out = transformation.apply(nest, check=False)
            legal = None
        else:
            deps = self.state.deps(nest, level)
            report = self.state.legality_cache.legality(
                transformation, nest, deps)
            if not report.legal:
                raise ProtocolError(ILLEGAL, report.reason or "illegal")
            out = transformation.apply(nest, deps)
            legal = True
        if emit == "c":
            from repro.ir.emit import emit_c
            code = emit_c(out)
        elif emit == "python":
            from repro.deps.analysis.references import inferred_array_names
            from repro.ir.emit import emit_python
            code = emit_python(out, sorted(inferred_array_names(out)))
        elif emit == "pretty":
            from repro.ir.pretty_temps import pretty_with_temps
            code = pretty_with_temps(out)
        else:
            code = out.pretty()
        return {"sequence": transformation.signature(),
                "legal": legal, "emit": emit, "code": code}

    def _op_run(self, params: dict) -> dict:
        nest, level = self._nest_level(params)
        if params.get("steps"):
            transformation = self._steps(params, nest.depth)
            if params.get("force"):
                nest = transformation.apply(nest, check=False)
            else:
                deps = self.state.deps(nest, level)
                report = self.state.legality_cache.legality(
                    transformation, nest, deps)
                if not report.legal:
                    raise ProtocolError(ILLEGAL, report.reason or "illegal")
                nest = transformation.apply(nest, deps)
        symbols = params.get("symbols", {})
        if (not isinstance(symbols, dict)
                or not all(isinstance(k, str) and isinstance(v, int)
                           and not isinstance(v, bool)
                           for k, v in symbols.items())):
            raise ProtocolError(
                BAD_INPUT, "params.symbols must map names to integers")
        engine_name = params.get("engine", self.default_engine)
        if engine_name not in ENGINE_NAMES:
            raise ProtocolError(
                BAD_INPUT,
                f"params.engine must be one of "
                f"{', '.join(ENGINE_NAMES)}, got {engine_name!r}")
        doc: dict = {"depth": nest.depth, "engine": engine_name}
        if engine_name == "interpreter":
            from repro.runtime.interpreter import Interpreter
            result = Interpreter(nest, symbols=symbols).run({})
            doc["warm"] = False
        elif engine_name == "vectorized":
            from repro.runtime.vectorized import numpy_available
            if not numpy_available():
                raise ProtocolError(
                    BAD_REQUEST,
                    "engine 'vectorized' needs NumPy, which this server "
                    "does not have (use 'compiled' or 'interpreter')")
            cache = self.state.vectorized()
            before = cache.hits
            engine = cache.get(nest, symbols=symbols)
            result = engine.run({})
            doc["warm"] = cache.hits > before
            doc["vectorized"] = engine.describe()
        else:
            before = self.state.compiled.hits
            engine = self.state.compiled.get(nest, symbols=symbols)
            result = engine.run({})
            doc["warm"] = self.state.compiled.hits > before
        doc["iterations"] = result.body_count
        return doc

    def _op_search(self, params: dict) -> dict:
        from repro.optimize.search import (SearchConfig, parallelism_score,
                                           search)

        nest, level = self._nest_level(params)
        deps = self.state.deps(nest, level)
        scorer = params.get("scorer", "parallelism")
        if scorer != "parallelism":
            raise ProtocolError(
                BAD_INPUT,
                f"unknown scorer {scorer!r} (the service supports "
                f"'parallelism')")
        depth = params.get("depth", 2)
        beam = params.get("beam", 8)
        if not isinstance(depth, int) or not isinstance(beam, int) \
                or depth < 0 or beam < 1:
            raise ProtocolError(
                BAD_INPUT, "params.depth must be an int >= 0 and "
                "params.beam an int >= 1")
        candidate_timeout = params.get("candidate_timeout")
        if candidate_timeout is not None and (
                not isinstance(candidate_timeout, (int, float))
                or candidate_timeout <= 0):
            raise ProtocolError(
                BAD_INPUT, "params.candidate_timeout must be a positive "
                "number")
        prune = params.get("prune", self.default_prune)
        speculate = params.get("speculate", self.default_speculate)
        if not isinstance(prune, bool) or not isinstance(speculate, bool):
            raise ProtocolError(
                BAD_INPUT,
                "params.prune and params.speculate must be booleans")
        model_name = params.get("model", self.default_model)
        if model_name is not None and model_name not in MODEL_NAMES:
            raise ProtocolError(
                BAD_INPUT,
                f"params.model must be one of "
                f"{', '.join(MODEL_NAMES)}, got {model_name!r}")
        model = (self.state.cost_model(model_name)
                 if model_name is not None else None)
        if self.pool is not None:
            self.pool.candidate_timeout = candidate_timeout
        config = SearchConfig(score=parallelism_score, depth=depth,
                              beam=beam, cache=self.state.legality_cache,
                              candidate_timeout=candidate_timeout,
                              pool=self.pool, prune=prune,
                              speculate=speculate, model=model)
        result = search(nest, deps, config=config)
        winner = result.transformation
        return {
            "winner": winner.signature() if winner else None,
            "spec": winner.to_spec() if winner is not None else None,
            "score": (result.score
                      if result.score != float("-inf") else None),
            "explored": result.explored,
            "legal": result.legal_count,
            "timeouts": result.timeouts,
            "cache_stats": result.cache_stats,
            "parallel": result.parallel,
            "pruned": result.pruned,
            "speculated": result.speculated,
            "evicted": result.evicted,
            "exact_verdicts": result.exact_verdicts,
        }

    def _op_stats(self, params: dict) -> dict:
        with self._cond:
            depth = len(self._items)
        doc = {
            "protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "jobs": self.jobs,
            "draining": self._draining,
            "queue": {
                "depth": depth,
                "max": self.queue_max,
                "accepted": self.counters["accepted"],
                "backpressure": self.counters["backpressure"],
                "rejected_shutdown": self.counters["rejected_shutdown"],
            },
            "requests": {
                "completed": self.counters["completed"],
                "errors": self.counters["errors"],
                "timeouts": self.counters["timeouts"],
                "by_op": dict(self.counters["by_op"]),  # type: ignore
            },
            "batches": {
                "count": self.counters["batches"],
                "max_size": self.counters["max_batch"],
                "batch_max": self.batch_max,
                "batched_legality": self.counters["batched_legality"],
            },
            "resilience": {
                "idem_window": len(self._idem_done),
                "idem_replays": self.counters["idem_replays"],
                "dropped_replies": self.counters["dropped_replies"],
                "chaos": _chaos.snapshot(),
                "checkpoint_path": self.checkpoint_path,
            },
            "caches": self.state.stats(),
            "pool": self.pool.snapshot() if self.pool is not None else None,
        }
        return doc

    def _op_telemetry(self, params: dict) -> dict:
        """One process's observability snapshot: the metrics registry
        plus tracer counters.  The fleet router merges N of these into
        one fleet-wide document (see ``repro stats``)."""
        tracer = _obs.get_tracer()
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "enabled": _obs.enabled(),
            "metrics": get_metrics().snapshot(),
            "tracer": tracer.stats() if tracer is not None else None,
        }

    def _op_shutdown(self, params: dict) -> dict:
        self.request_drain("shutdown request")
        return {"stopping": True, "reason": self.drain_reason}


# -- transports -------------------------------------------------------------

def pump_frames(read_chunk: Callable[[], bytes],
                service: TransformationService,
                reply: Callable[[dict], None]) -> None:
    """Split a byte stream into newline frames and feed them to
    :meth:`TransformationService.ingest_bytes`.

    A frame that outgrows the size cap before its newline arrives gets
    one typed ``bad-request`` and the stream *resyncs* at the next
    newline — the connection survives an oversized (or runaway
    unterminated) frame instead of buffering it without bound.
    """
    buf = b""
    discarding = False
    while True:
        try:
            chunk = read_chunk()
        except OSError:
            break
        if not chunk:
            break
        buf += chunk
        while True:
            nl = buf.find(b"\n")
            if nl < 0:
                cap = protocol.max_frame_bytes()
                if len(buf) > cap:
                    if not discarding:
                        reply(error_response(
                            None, BAD_REQUEST,
                            f"frame exceeds the {cap}-byte limit "
                            f"(REPRO_MAX_FRAME_BYTES); discarding "
                            f"until the next newline"))
                        discarding = True
                    buf = b""
                break
            frame, buf = buf[:nl], buf[nl + 1:]
            if discarding:
                discarding = False  # tail of the oversized frame
                continue
            if frame.strip():
                service.ingest_bytes(frame, reply)
    if buf.strip() and not discarding:
        service.ingest_bytes(buf, reply)


def serve_stdio(service: TransformationService,
                in_stream=None, out_stream=None) -> None:
    """Serve NDJSON over stdio; returns once drained (stdin EOF, a
    signal, or a ``shutdown`` request)."""
    raw_fd = None
    if in_stream is None:
        # Real stdin must be read at the fd level: a thread blocked in
        # sys.stdin.readline() holds the stream's internal lock, and a
        # worker forked by the pool deadlocks in multiprocessing's
        # bootstrap when it tries to sys.stdin.close() under that
        # still-held lock.  os.read() takes no Python-level lock.
        try:
            raw_fd = sys.stdin.fileno()
        except (OSError, ValueError, AttributeError):
            in_stream = sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    write_lock = threading.Lock()

    def reply(obj: dict) -> None:
        with write_lock:
            try:
                out_stream.write(protocol.encode(obj))
                out_stream.flush()
            except (OSError, ValueError):
                pass  # reader went away; keep draining

    def reader() -> None:
        if raw_fd is not None:
            # Real stdin is pumped at the byte level so frame-size and
            # UTF-8 validation happen before JSON decoding.
            pump_frames(lambda: os.read(raw_fd, 65536), service, reply)
        else:
            for line in in_stream:
                if line.strip():
                    service.ingest(line, reply)
        service.request_drain("stdin EOF")

    threading.Thread(target=reader, name="service-stdin",
                     daemon=True).start()
    service.install_signal_handlers()
    service.run()


def serve_tcp(service: TransformationService, host: str = "127.0.0.1",
              port: int = 0,
              bound_callback: Optional[Callable[[str, int], None]] = None,
              ) -> None:
    """Serve NDJSON over TCP; ``port=0`` binds an ephemeral port,
    reported through *bound_callback* (and a stderr line) before
    accepting.  Returns once drained."""
    listener = socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    if bound_callback is not None:
        bound_callback(bound_host, bound_port)
    print(f"repro serve: listening on {bound_host}:{bound_port}",
          file=sys.stderr, flush=True)

    def handle_connection(conn: socket.socket) -> None:
        wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        write_lock = threading.Lock()

        def reply(obj: dict) -> None:
            with write_lock:
                try:
                    wfile.write(protocol.encode(obj))
                    wfile.flush()
                except (OSError, ValueError):
                    pass  # client went away; keep draining

        try:
            # Byte-level pump: oversized / non-UTF-8 frames become
            # typed errors instead of killing the connection.
            pump_frames(lambda: conn.recv(65536), service, reply)
        except (OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def acceptor() -> None:
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed at drain
            threading.Thread(target=handle_connection, args=(conn,),
                             daemon=True).start()

    threading.Thread(target=acceptor, name="service-accept",
                     daemon=True).start()
    service.install_signal_handlers()
    try:
        service.run()
    finally:
        try:
            listener.close()
        except OSError:
            pass
