"""The long-lived transformation server.

One :class:`TransformationService` owns the session's warm state
(:class:`~repro.service.state.WarmState`) and — with ``jobs > 1`` — a
single :class:`~repro.parallel.pool.ShardedPool` that is
:meth:`~repro.parallel.pool.ShardedPool.rebind`-ed to each request's
workload instead of forked fresh per request.

Threading model
---------------

Transports (the stdio reader, TCP connection readers) run on daemon
threads and only *admit* work: decode the line, run admission control,
enqueue.  All request **processing** happens on the thread that calls
:meth:`TransformationService.run` — the main thread under the CLI — so
per-request budgets can reuse the ``SIGALRM``-based
:func:`~repro.parallel.worker.call_with_timeout` and the forked pool
keeps its fork-from-the-owner discipline.

Admission control
-----------------

The request queue is bounded (``queue_max``).  A request arriving at a
full queue is answered *immediately* with a typed ``backpressure``
error — the server never blocks a transport on its own queue, and the
client can tell "retry later" apart from a failure.  After drain starts
(SIGTERM, SIGINT, stdin EOF, or a ``shutdown`` request) new requests
are refused with ``shutting-down`` while everything already admitted is
still processed and answered.

Batching
--------

The processing loop drains up to ``batch_max`` queued requests per
cycle.  Legality requests within a batch that target the same
``(nest, level)`` are evaluated together through the shared pool
(one fork per *batch group*, not per request); their content-keyed
cache deltas merge back into the warm legality cache, so a later
identical request is a pure cache hit.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.core.spec import parse_steps
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.parallel.merge import merge_outcome
from repro.parallel.worker import call_with_timeout
from repro.service import protocol
from repro.service.protocol import (
    BACKPRESSURE,
    BAD_INPUT,
    BAD_REQUEST,
    ILLEGAL,
    INTERNAL,
    PROTOCOL_VERSION,
    SHUTTING_DOWN,
    TIMEOUT,
    ProtocolError,
    error_response,
    ok_response,
)
from repro.service.state import WarmState
from repro.util.errors import ReproError

_LEVELS = ("gcd", "banerjee", "fm")


def _zero_score(transformation, nest, deps) -> float:
    """Scoring stub for pooled legality batches: legality is the whole
    question, so every legal candidate scores alike."""
    return 0.0


class _Pending:
    """One admitted request waiting in the queue."""

    __slots__ = ("req_id", "op", "params", "reply", "admitted")

    def __init__(self, req_id, op, params, reply, admitted):
        self.req_id = req_id
        self.op = op
        self.params = params
        self.reply = reply
        self.admitted = admitted


class TransformationService:
    """Warm-state request processor behind ``repro serve``."""

    def __init__(self, *, jobs: int = 1, queue_max: int = 64,
                 batch_max: int = 8,
                 request_timeout: Optional[float] = None,
                 cache_max_entries: Optional[int] = 4096,
                 compiled_max_entries: int = 128):
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        self.jobs = max(1, int(jobs))
        self.queue_max = queue_max
        self.batch_max = max(1, int(batch_max))
        self.request_timeout = request_timeout
        self.state = WarmState(legality_max_entries=cache_max_entries,
                               compiled_max_entries=compiled_max_entries)
        self.pool = None
        if self.jobs > 1:
            from repro.parallel.pool import ShardedPool
            self.pool = ShardedPool(None, None, _zero_score, self.jobs)
        self._cond = threading.Condition()
        self._items: deque = deque()
        self._draining = False
        self.drain_reason: Optional[str] = None
        self._started = time.monotonic()
        self.counters: Dict[str, object] = {
            "accepted": 0, "completed": 0, "errors": 0, "timeouts": 0,
            "backpressure": 0, "rejected_shutdown": 0,
            "batches": 0, "max_batch": 0, "batched_legality": 0,
            "by_op": {},
        }
        self._dispatch: Dict[str, Callable] = {
            "ping": self._op_ping,
            "parse": self._op_parse,
            "analyze": self._op_analyze,
            "legality": self._op_legality,
            "apply": self._op_apply,
            "run": self._op_run,
            "search": self._op_search,
            "stats": self._op_stats,
            "shutdown": self._op_shutdown,
        }

    # -- admission (transport threads) -------------------------------------

    def ingest(self, line: str, reply: Callable[[dict], None]) -> None:
        """Decode one request line and admit it; rejections (malformed,
        backpressure, draining) are answered immediately on the
        transport's thread."""
        try:
            req_id, op, params = protocol.decode_request(line)
        except ProtocolError as exc:
            reply(error_response(getattr(exc, "request_id", None),
                                 exc.code, exc.message))
            return
        self.submit(req_id, op, params, reply)

    def submit(self, req_id, op, params,
               reply: Callable[[dict], None]) -> bool:
        """Admission control; returns True when enqueued.  Rejections
        reply immediately with ``shutting-down`` or ``backpressure``."""
        rejection = None
        with self._cond:
            if self._draining:
                self.counters["rejected_shutdown"] = (
                    int(self.counters["rejected_shutdown"]) + 1)
                rejection = error_response(
                    req_id, SHUTTING_DOWN,
                    f"server is draining ({self.drain_reason})")
            elif len(self._items) >= self.queue_max:
                self.counters["backpressure"] = (
                    int(self.counters["backpressure"]) + 1)
                rejection = error_response(
                    req_id, BACKPRESSURE,
                    f"request queue full ({self.queue_max}); retry later")
            else:
                self.counters["accepted"] = (
                    int(self.counters["accepted"]) + 1)
                self._items.append(_Pending(req_id, op, params, reply,
                                            time.monotonic()))
                depth = len(self._items)
                self._cond.notify()
        if rejection is not None:
            if _obs.enabled():
                get_metrics().counter(
                    "service.rejected." + rejection["error"]["code"]).inc()
            reply(rejection)
            return False
        if _obs.enabled():
            get_metrics().gauge("service.queue_depth").set(depth)
        return True

    def request_drain(self, reason: str) -> None:
        """Stop admitting; finish what is queued, then let :meth:`run`
        return.  Safe to call from a signal handler (attribute writes
        only; the processing loop polls)."""
        if not self._draining:
            self._draining = True
            self.drain_reason = reason

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain.  Only possible from the main
        thread; elsewhere (in-process test harnesses) this is a no-op."""
        if threading.current_thread() is not threading.main_thread():
            return
        signal.signal(signal.SIGTERM,
                      lambda s, f: self.request_drain("SIGTERM"))
        signal.signal(signal.SIGINT,
                      lambda s, f: self.request_drain("SIGINT"))

    # -- the processing loop (owning thread) -------------------------------

    def run(self) -> None:
        """Process requests until drained: admitted work is always
        answered, even after drain starts."""
        self._started = time.monotonic()
        while True:
            batch: List[_Pending] = []
            with self._cond:
                if not self._items:
                    if self._draining:
                        break
                    # Short poll so a signal-handler drain (attribute
                    # write, no notify) is noticed promptly.
                    self._cond.wait(0.1)
                while self._items and len(batch) < self.batch_max:
                    batch.append(self._items.popleft())
                depth = len(self._items)
            if not batch:
                continue
            if _obs.enabled():
                metrics = get_metrics()
                metrics.gauge("service.queue_depth").set(depth)
                metrics.histogram("service.batch_size").observe(len(batch))
            self.counters["batches"] = int(self.counters["batches"]) + 1
            if len(batch) > int(self.counters["max_batch"]):
                self.counters["max_batch"] = len(batch)
            with _obs.span("service.batch", size=len(batch)):
                prefetched = self._prefetch_legality(batch)
                for pending in batch:
                    pending.reply(self._handle(pending, prefetched))

    def _handle(self, pending: _Pending, prefetched: Dict[int, object]):
        op, params = pending.op, pending.params
        start = time.monotonic()
        code: Optional[str] = None
        try:
            with _obs.span("service.request", op=op):
                handler = self._dispatch[op]
                if op == "legality":
                    fn = lambda: handler(params,  # noqa: E731
                                         prefetched.get(id(pending)))
                else:
                    fn = lambda: handler(params)  # noqa: E731
                budget = self._outer_budget(op, params)
                value, timed_out = call_with_timeout(fn, budget)
                if timed_out:
                    raise ProtocolError(
                        TIMEOUT,
                        f"request overran the server budget ({budget}s)")
            response = ok_response(pending.req_id, value)
        except ProtocolError as exc:
            code = exc.code
            response = error_response(pending.req_id, exc.code, exc.message)
        except ReproError as exc:
            code = BAD_INPUT
            response = error_response(pending.req_id, BAD_INPUT, str(exc))
        except Exception as exc:  # noqa: BLE001 — the server must answer
            code = INTERNAL
            response = error_response(
                pending.req_id, INTERNAL,
                f"{type(exc).__name__}: {exc}")
        elapsed_ms = (time.monotonic() - start) * 1000.0
        if code is None:
            self.counters["completed"] = int(self.counters["completed"]) + 1
        else:
            self.counters["errors"] = int(self.counters["errors"]) + 1
            if code == TIMEOUT:
                self.counters["timeouts"] = (
                    int(self.counters["timeouts"]) + 1)
        by_op: Dict[str, int] = self.counters["by_op"]  # type: ignore
        by_op[op] = by_op.get(op, 0) + 1
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("service.requests").inc()
            metrics.counter(f"service.requests.{op}").inc()
            if code is not None:
                metrics.counter(f"service.errors.{code}").inc()
            metrics.histogram(f"service.latency_ms.{op}").observe(elapsed_ms)
        return response

    def _outer_budget(self, op: str, params: dict) -> Optional[float]:
        """The per-request wall-clock budget, or None.

        ``call_with_timeout`` is ``SIGALRM``-based and does not nest: a
        search that installs its own per-candidate timers (explicit
        ``candidate_timeout``, or pooled workers the parent must keep
        draining) would clobber the outer timer, so those requests run
        under their candidate budgets instead of the server budget.
        """
        if not self.request_timeout:
            return None
        if op == "search" and (params.get("candidate_timeout")
                               or self.pool is not None):
            return None
        return self.request_timeout

    # -- pooled legality batching ------------------------------------------

    def _prefetch_legality(self, batch) -> Dict[int, object]:
        """Evaluate same-nest legality requests of *batch* together
        through the shared pool; returns ``id(pending) ->
        LegalityReport`` for the subset the workers completed (the
        per-request handler computes the rest — and takes warm-cache
        hits for everything merged here)."""
        if self.pool is None or self.pool.degraded:
            return {}
        groups: Dict[Tuple, List[Tuple[_Pending, object]]] = {}
        for pending in batch:
            if pending.op != "legality":
                continue
            try:
                nest, level = self._nest_level(pending.params)
                transformation = self._steps(pending.params, nest.depth)
            except Exception:
                continue  # the handler will surface the real error
            groups.setdefault((nest, level), []).append(
                (pending, transformation))
        out: Dict[int, object] = {}
        for (nest, level), members in groups.items():
            if len(members) < 2:
                continue
            try:
                deps = self.state.deps(nest, level)
                self.pool.rebind(nest, deps, _zero_score)
                outcomes = self.pool.evaluate_level(
                    0, [t for _, t in members], self.state.legality_cache)
            except Exception:
                continue  # fall back to per-request serial evaluation
            self.counters["batched_legality"] = (
                int(self.counters["batched_legality"]) + len(outcomes))
            if _obs.enabled():
                get_metrics().counter(
                    "service.batched_legality").inc(len(outcomes))
            for idx, (pending, _t) in enumerate(members):
                outcome = outcomes.get(idx)
                if outcome is not None:
                    out[id(pending)] = merge_outcome(
                        self.state.legality_cache, nest, deps, outcome)
        return out

    # -- shared param plumbing ---------------------------------------------

    def _nest_level(self, params: dict):
        text = params.get("text")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError(BAD_INPUT,
                                "params.text must be a non-empty string")
        level = params.get("level", "fm")
        if level not in _LEVELS:
            raise ProtocolError(
                BAD_INPUT,
                f"params.level must be one of {', '.join(_LEVELS)}")
        nest = self.state.nest(text, bool(params.get("sink", False)))
        return nest, level

    def _steps(self, params: dict, depth: int):
        spec = params.get("steps")
        if not isinstance(spec, str) or not spec.strip():
            raise ProtocolError(BAD_INPUT,
                                "params.steps must be a non-empty string")
        return parse_steps(spec, depth)

    # -- operations --------------------------------------------------------

    def _op_ping(self, params: dict) -> dict:
        return {"pong": True, "protocol": PROTOCOL_VERSION,
                "version": __version__}

    def _op_parse(self, params: dict) -> dict:
        nest, _level = self._nest_level(params)
        return {"depth": nest.depth,
                "indices": list(nest.indices),
                "headers": [lp.header() for lp in nest.loops],
                "pretty": nest.pretty()}

    def _op_analyze(self, params: dict) -> dict:
        nest, level = self._nest_level(params)
        deps = self.state.deps(nest, level)
        return {"depth": nest.depth, "level": level,
                "count": len(deps),
                "deps": [str(v) for v in deps]}

    def _op_legality(self, params: dict, prefetched=None) -> dict:
        nest, level = self._nest_level(params)
        transformation = self._steps(params, nest.depth)
        deps = self.state.deps(nest, level)
        report = prefetched
        if report is None:
            report = self.state.legality_cache.legality(
                transformation, nest, deps)
        doc = {"legal": report.legal,
               "sequence": transformation.signature(),
               "spec": transformation.to_spec(),
               "deps": len(deps)}
        if not report.legal:
            doc["reason"] = report.reason
        return doc

    def _op_apply(self, params: dict) -> dict:
        nest, level = self._nest_level(params)
        transformation = self._steps(params, nest.depth)
        emit = params.get("emit", "loop")
        if emit not in ("loop", "c", "python", "pretty"):
            raise ProtocolError(
                BAD_INPUT,
                "params.emit must be one of loop, c, python, pretty")
        if params.get("force"):
            out = transformation.apply(nest, check=False)
            legal = None
        else:
            deps = self.state.deps(nest, level)
            report = self.state.legality_cache.legality(
                transformation, nest, deps)
            if not report.legal:
                raise ProtocolError(ILLEGAL, report.reason or "illegal")
            out = transformation.apply(nest, deps)
            legal = True
        if emit == "c":
            from repro.ir.emit import emit_c
            code = emit_c(out)
        elif emit == "python":
            from repro.deps.analysis.references import inferred_array_names
            from repro.ir.emit import emit_python
            code = emit_python(out, sorted(inferred_array_names(out)))
        elif emit == "pretty":
            from repro.ir.pretty_temps import pretty_with_temps
            code = pretty_with_temps(out)
        else:
            code = out.pretty()
        return {"sequence": transformation.signature(),
                "legal": legal, "emit": emit, "code": code}

    def _op_run(self, params: dict) -> dict:
        nest, level = self._nest_level(params)
        if params.get("steps"):
            transformation = self._steps(params, nest.depth)
            if params.get("force"):
                nest = transformation.apply(nest, check=False)
            else:
                deps = self.state.deps(nest, level)
                report = self.state.legality_cache.legality(
                    transformation, nest, deps)
                if not report.legal:
                    raise ProtocolError(ILLEGAL, report.reason or "illegal")
                nest = transformation.apply(nest, deps)
        symbols = params.get("symbols", {})
        if (not isinstance(symbols, dict)
                or not all(isinstance(k, str) and isinstance(v, int)
                           and not isinstance(v, bool)
                           for k, v in symbols.items())):
            raise ProtocolError(
                BAD_INPUT, "params.symbols must map names to integers")
        before = self.state.compiled.hits
        engine = self.state.compiled.get(nest, symbols=symbols)
        result = engine.run({})
        return {"iterations": result.body_count,
                "depth": nest.depth,
                "warm": self.state.compiled.hits > before}

    def _op_search(self, params: dict) -> dict:
        from repro.optimize.search import parallelism_score, search

        nest, level = self._nest_level(params)
        deps = self.state.deps(nest, level)
        scorer = params.get("scorer", "parallelism")
        if scorer != "parallelism":
            raise ProtocolError(
                BAD_INPUT,
                f"unknown scorer {scorer!r} (the service supports "
                f"'parallelism')")
        depth = params.get("depth", 2)
        beam = params.get("beam", 8)
        if not isinstance(depth, int) or not isinstance(beam, int) \
                or depth < 0 or beam < 1:
            raise ProtocolError(
                BAD_INPUT, "params.depth must be an int >= 0 and "
                "params.beam an int >= 1")
        candidate_timeout = params.get("candidate_timeout")
        if candidate_timeout is not None and (
                not isinstance(candidate_timeout, (int, float))
                or candidate_timeout <= 0):
            raise ProtocolError(
                BAD_INPUT, "params.candidate_timeout must be a positive "
                "number")
        kwargs = dict(score=parallelism_score, depth=depth, beam=beam,
                      cache=self.state.legality_cache,
                      candidate_timeout=candidate_timeout)
        if self.pool is not None:
            self.pool.candidate_timeout = candidate_timeout
            result = search(nest, deps, pool=self.pool, **kwargs)
        else:
            result = search(nest, deps, **kwargs)
        winner = result.transformation
        return {
            "winner": winner.signature() if winner else None,
            "spec": winner.to_spec() if winner is not None else None,
            "score": (result.score
                      if result.score != float("-inf") else None),
            "explored": result.explored,
            "legal": result.legal_count,
            "timeouts": result.timeouts,
            "cache_stats": result.cache_stats,
            "parallel": result.parallel,
        }

    def _op_stats(self, params: dict) -> dict:
        with self._cond:
            depth = len(self._items)
        doc = {
            "protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "jobs": self.jobs,
            "draining": self._draining,
            "queue": {
                "depth": depth,
                "max": self.queue_max,
                "accepted": self.counters["accepted"],
                "backpressure": self.counters["backpressure"],
                "rejected_shutdown": self.counters["rejected_shutdown"],
            },
            "requests": {
                "completed": self.counters["completed"],
                "errors": self.counters["errors"],
                "timeouts": self.counters["timeouts"],
                "by_op": dict(self.counters["by_op"]),  # type: ignore
            },
            "batches": {
                "count": self.counters["batches"],
                "max_size": self.counters["max_batch"],
                "batch_max": self.batch_max,
                "batched_legality": self.counters["batched_legality"],
            },
            "caches": self.state.stats(),
            "pool": self.pool.snapshot() if self.pool is not None else None,
        }
        return doc

    def _op_shutdown(self, params: dict) -> dict:
        self.request_drain("shutdown request")
        return {"stopping": True, "reason": self.drain_reason}


# -- transports -------------------------------------------------------------

def serve_stdio(service: TransformationService,
                in_stream=None, out_stream=None) -> None:
    """Serve NDJSON over stdio; returns once drained (stdin EOF, a
    signal, or a ``shutdown`` request)."""
    raw_fd = None
    if in_stream is None:
        # Real stdin must be read at the fd level: a thread blocked in
        # sys.stdin.readline() holds the stream's internal lock, and a
        # worker forked by the pool deadlocks in multiprocessing's
        # bootstrap when it tries to sys.stdin.close() under that
        # still-held lock.  os.read() takes no Python-level lock.
        try:
            raw_fd = sys.stdin.fileno()
        except (OSError, ValueError, AttributeError):
            in_stream = sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    write_lock = threading.Lock()

    def reply(obj: dict) -> None:
        with write_lock:
            try:
                out_stream.write(protocol.encode(obj))
                out_stream.flush()
            except (OSError, ValueError):
                pass  # reader went away; keep draining

    def fd_lines():
        buf = b""
        while True:
            try:
                chunk = os.read(raw_fd, 65536)
            except OSError:
                break
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                yield line.decode("utf-8", errors="replace")
        if buf:
            yield buf.decode("utf-8", errors="replace")

    def reader() -> None:
        lines = fd_lines() if raw_fd is not None else in_stream
        for line in lines:
            if line.strip():
                service.ingest(line, reply)
        service.request_drain("stdin EOF")

    threading.Thread(target=reader, name="service-stdin",
                     daemon=True).start()
    service.install_signal_handlers()
    service.run()


def serve_tcp(service: TransformationService, host: str = "127.0.0.1",
              port: int = 0,
              bound_callback: Optional[Callable[[str, int], None]] = None,
              ) -> None:
    """Serve NDJSON over TCP; ``port=0`` binds an ephemeral port,
    reported through *bound_callback* (and a stderr line) before
    accepting.  Returns once drained."""
    listener = socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    if bound_callback is not None:
        bound_callback(bound_host, bound_port)
    print(f"repro serve: listening on {bound_host}:{bound_port}",
          file=sys.stderr, flush=True)

    def handle_connection(conn: socket.socket) -> None:
        rfile = conn.makefile("r", encoding="utf-8", newline="\n")
        wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        write_lock = threading.Lock()

        def reply(obj: dict) -> None:
            with write_lock:
                try:
                    wfile.write(protocol.encode(obj))
                    wfile.flush()
                except (OSError, ValueError):
                    pass  # client went away; keep draining

        try:
            for line in rfile:
                if line.strip():
                    service.ingest(line, reply)
        except (OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def acceptor() -> None:
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed at drain
            threading.Thread(target=handle_connection, args=(conn,),
                             daemon=True).start()

    threading.Thread(target=acceptor, name="service-accept",
                     daemon=True).start()
    service.install_signal_handlers()
    try:
        service.run()
    finally:
        try:
            listener.close()
        except OSError:
            pass
