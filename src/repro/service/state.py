"""Warm per-session state shared across service requests.

A one-shot CLI invocation pays the full pipeline every time: parse the
nest, analyze its dependences, evaluate legality from scratch.  The
service amortizes all three across the requests of a session:

* a parse memo keyed by ``(text, sink)`` — request texts repeat
  verbatim in replay-style workloads;
* a dependence-analysis memo keyed by ``(nest, level)`` —
  :class:`~repro.ir.loopnest.LoopNest` equality is structural, so two
  differently-formatted texts of the same nest share one analysis;
* the shared bounded :class:`~repro.core.legality_cache.LegalityCache`
  every legality/search request funnels through;
* a :class:`~repro.runtime.compiled.CompiledNestCache` so repeated
  ``run`` requests over equal nests reuse the exec-compiled engine;
* a lazily created :class:`~repro.runtime.vectorized.VectorizedNestCache`
  for ``run`` requests that select the NumPy engine (lazy because NumPy
  is optional — a service without it never pays the import and answers
  such requests with a typed error instead).

All memos are bounded LRU (plain-dict insertion order; a hit reinserts,
overflow evicts the oldest) so a long-lived server's memory stays
proportional to its caps, not to its request history.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Optional, Tuple

from repro.core.legality_cache import LegalityCache
from repro.deps.analysis import analyze
from repro.deps.vector import DepSet
from repro.ir import parse_imperfect, parse_nest, sink
from repro.ir.loopnest import LoopNest
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.runtime.compiled import CompiledNestCache

#: Bumped when the checkpoint payload shape changes; a file with any
#: other version is ignored (cold start) rather than misread.
CHECKPOINT_VERSION = 1

_CHECKPOINT_MAGIC = b"repro-warmstate"


class WarmState:
    """The caches a transformation service keeps warm between requests."""

    def __init__(self, legality_max_entries: Optional[int] = 4096,
                 compiled_max_entries: int = 128,
                 memo_max_entries: int = 256):
        if memo_max_entries < 1:
            raise ValueError(
                f"memo_max_entries must be >= 1, got {memo_max_entries}")
        self.legality_cache = LegalityCache(max_entries=legality_max_entries)
        self.compiled = CompiledNestCache(max_entries=compiled_max_entries)
        self.compiled_max_entries = compiled_max_entries
        self._vectorized = None
        self.memo_max_entries = memo_max_entries
        self._parse_memo: Dict[Tuple[str, bool], LoopNest] = {}
        self._analysis_memo: Dict[Tuple[LoopNest, str], DepSet] = {}
        self.parse_hits = 0
        self.parse_misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        #: Per-name cost models for model-guided search requests: the
        #: same model object serves every request naming it, so its
        #: observed legality outcomes accumulate across the session.
        self._models: Dict[str, object] = {}
        #: Entries brought back by the last :meth:`restore` (0 = cold).
        self.restored_entries = 0
        self.checkpoints_written = 0

    # -- bounded-LRU plumbing ----------------------------------------------

    def _memo_get(self, memo: Dict, key):
        value = memo.get(key)
        if value is not None:
            memo[key] = memo.pop(key)  # LRU touch
        return value

    def _memo_put(self, memo: Dict, key, value) -> None:
        memo[key] = value
        while len(memo) > self.memo_max_entries:
            del memo[next(iter(memo))]

    # -- the warm pipeline stages ------------------------------------------

    def nest(self, text: str, sink_imperfect: bool = False) -> LoopNest:
        """Parse *text* (optionally sinking an imperfect nest), memoized."""
        key = (text, bool(sink_imperfect))
        cached = self._memo_get(self._parse_memo, key)
        if cached is not None:
            self.parse_hits += 1
            if _obs.enabled():
                get_metrics().counter("service.cache.parse_hits").inc()
            return cached
        self.parse_misses += 1
        if _obs.enabled():
            get_metrics().counter("service.cache.parse_misses").inc()
        nest = (sink(parse_imperfect(text)) if sink_imperfect
                else parse_nest(text))
        self._memo_put(self._parse_memo, key, nest)
        return nest

    def deps(self, nest: LoopNest, level: str = "fm") -> DepSet:
        """Dependence set of *nest* at test-ladder tier *level*, memoized."""
        key = (nest, level)
        cached = self._memo_get(self._analysis_memo, key)
        if cached is not None:
            self.analysis_hits += 1
            if _obs.enabled():
                get_metrics().counter("service.cache.analysis_hits").inc()
            return cached
        self.analysis_misses += 1
        if _obs.enabled():
            get_metrics().counter("service.cache.analysis_misses").inc()
        deps = analyze(nest, level=level)
        self._memo_put(self._analysis_memo, key, deps)
        return deps

    def cost_model(self, name: str):
        """The session's cost model for *name* (see
        :data:`repro.optimize.model.MODEL_NAMES`), created on first use
        and kept warm so its observed legality outcomes accumulate
        across requests.  An ``evidence`` model samples the obs
        counters and legality-cache stats at creation time.
        """
        model = self._models.get(name)
        if model is None:
            from repro.optimize.model import resolve_model
            model = resolve_model(name, cache=self.legality_cache)
            self._models[name] = model
        return model

    def vectorized(self):
        """The vectorized-engine cache, created on first use.

        Raises :class:`~repro.util.errors.ReproError` when NumPy is
        absent — callers turn that into a typed ``bad-request`` rather
        than an ImportError crash.
        """
        if self._vectorized is None:
            from repro.runtime.vectorized import VectorizedNestCache
            self._vectorized = VectorizedNestCache(
                max_entries=self.compiled_max_entries)
        return self._vectorized

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self, path: str) -> bool:
        """Persist the warm state to *path* (versioned pickle, written
        atomically via a temp file + rename so a crash mid-write leaves
        the previous checkpoint intact).

        Persisted: the parse and analysis memos and the legality
        cache's content-keyed tables.  **Not** persisted: the compiled
        cache (its variants are ``exec``-compiled closures, which do
        not pickle) — a restored service re-compiles on first use but
        never re-proves legality it already proved.

        Returns True on success; a payload that fails to pickle (e.g.
        an exotic template pinned in a cache key) is skipped without
        raising — checkpointing is an optimization, never a crash.
        """
        payload = {
            "version": CHECKPOINT_VERSION,
            "parse_memo": self._parse_memo,
            "analysis_memo": self._analysis_memo,
            "legality": self.legality_cache,
            # Additive key (older checkpoints simply lack it): the warm
            # cost models, so a restarted service keeps its calibrated
            # per-template legality rates.
            "models": self._models,
        }
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(_CHECKPOINT_MAGIC)
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            return False
        self.checkpoints_written += 1
        if _obs.enabled():
            get_metrics().counter("service.checkpoints").inc()
        return True

    def restore(self, path: str) -> int:
        """Load a checkpoint written by :meth:`checkpoint`; returns the
        number of warm entries brought back (0 = cold start).

        A missing, truncated, corrupt or version-mismatched file is a
        silent cold start: the supervisor must be able to restart into
        *some* service even when the checkpoint was torn by the crash
        that triggered the restart.
        """
        try:
            with open(path, "rb") as fh:
                magic = fh.read(len(_CHECKPOINT_MAGIC))
                if magic != _CHECKPOINT_MAGIC:
                    return 0
                payload = pickle.loads(fh.read())
        except Exception:
            return 0
        if not isinstance(payload, dict) or \
                payload.get("version") != CHECKPOINT_VERSION:
            return 0
        # A right-version dict can still be malformed (a checkpoint
        # torn across the version bump, or hand-edited): missing or
        # wrong-typed entries are a cold start too, never a KeyError
        # that kills the restarting worker.
        parse_memo = payload.get("parse_memo")
        analysis_memo = payload.get("analysis_memo")
        legality = payload.get("legality")
        if (not isinstance(parse_memo, dict)
                or not isinstance(analysis_memo, dict)
                or not isinstance(legality, LegalityCache)):
            return 0
        self._parse_memo = parse_memo
        self._analysis_memo = analysis_memo
        self.legality_cache = legality
        models = payload.get("models")
        if isinstance(models, dict):
            self._models = models
        self.restored_entries = (len(self._parse_memo)
                                 + len(self._analysis_memo)
                                 + self.legality_cache.entry_count())
        if _obs.enabled():
            get_metrics().gauge("service.restored_entries").set(
                self.restored_entries)
        return self.restored_entries

    # -- reporting ---------------------------------------------------------

    def reuse_ratio(self) -> float:
        """Fraction of pipeline-stage lookups served from warm state
        (parse + analysis memos and the legality verdict cache)."""
        leg = self.legality_cache.stats
        hits = self.parse_hits + self.analysis_hits + leg["hits"]
        total = (hits + self.parse_misses + self.analysis_misses
                 + leg["misses"])
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "parse": {"hits": self.parse_hits,
                      "misses": self.parse_misses,
                      "entries": len(self._parse_memo)},
            "analysis": {"hits": self.analysis_hits,
                         "misses": self.analysis_misses,
                         "entries": len(self._analysis_memo)},
            "legality": dict(self.legality_cache.stats),
            "compiled": dict(self.compiled.stats),
            "vectorized": (dict(self._vectorized.stats)
                           if self._vectorized is not None else None),
            "reuse_ratio": round(self.reuse_ratio(), 6),
            "restored_entries": self.restored_entries,
            "checkpoints_written": self.checkpoints_written,
            "models": {name: model.snapshot()
                       for name, model in sorted(self._models.items())},
        }
        if _obs.enabled():
            get_metrics().gauge("service.cache.reuse_ratio").set(
                doc["reuse_ratio"])  # type: ignore[arg-type]
        return doc

    def clear(self) -> None:
        self.legality_cache.clear()
        self.compiled.clear()
        if self._vectorized is not None:
            self._vectorized.clear()
        self._parse_memo.clear()
        self._analysis_memo.clear()
        self._models.clear()
        self.parse_hits = self.parse_misses = 0
        self.analysis_hits = self.analysis_misses = 0
