"""Long-lived transformation service: warm caches, one pool, NDJSON.

A one-shot CLI run re-pays parsing, dependence analysis, legality
mapping and process startup on every invocation.  ``repro serve``
instead keeps a :class:`~repro.service.server.TransformationService`
alive across a *session* of requests:

* warm state (:mod:`repro.service.state`) — the bounded
  :class:`~repro.core.legality_cache.LegalityCache`, a
  :class:`~repro.runtime.compiled.CompiledNestCache`, and memoized
  parse/analysis stages shared by every request;
* one :class:`~repro.parallel.pool.ShardedPool` rebound per request
  instead of forked per request, with same-batch legality requests
  evaluated together (:mod:`repro.service.server`);
* a newline-delimited JSON protocol over stdio or TCP with typed
  errors, bounded-queue admission control and graceful drain
  (:mod:`repro.service.protocol`);
* a synchronous client (:mod:`repro.service.client`) used by
  ``repro client``, the lifecycle tests and the replay benchmark.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
)
from repro.service.server import (
    TransformationService,
    serve_stdio,
    serve_tcp,
)
from repro.service.state import WarmState

__all__ = [
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "TransformationService",
    "WarmState",
    "serve_stdio",
    "serve_tcp",
]
