"""The service wire protocol: newline-delimited JSON requests.

One request per line, one response line per request, in processing
order (which may differ from arrival order only for requests rejected
at admission — backpressure and shutting-down errors are written
immediately).  Clients therefore match responses to requests by ``id``.

Request::

    {"id": <string|int>, "op": <operation>, "params": {...}}

Success response::

    {"id": ..., "ok": true, "result": {...}}

Error response::

    {"id": ..., "ok": false, "error": {"code": <code>, "message": ...}}

Operations (the parameter schemas are documented op-by-op in
``docs/API.md``): ``ping``, ``parse``, ``analyze``, ``legality``,
``apply``, ``run``, ``search``, ``stats``, ``telemetry``,
``shutdown``.

Requests may carry an optional ``trace`` object — a distributed-tracing
context ``{"id": <trace id>, "parent": <qualified span id>}`` (see
:mod:`repro.obs.distributed`).  A server with tracing enabled adopts
the context and piggybacks its completed span subtree on the response
as ``spans`` (bounded; overflow counted in ``spans_dropped``), so the
originating process can stitch one span tree across every hop.  With
tracing disabled both fields are absent and the wire format is
unchanged.

Error codes:

``bad-request``
    The line was not valid JSON, not an object, missing ``id``/``op``,
    or named an unknown operation.
``bad-input``
    The operation's parameters were malformed — an unparsable nest, a
    bad step spec, an unknown scorer (the CLI's exit-code-2 class).
``illegal``
    ``apply`` (without ``force``) refused an illegal sequence; the
    message carries the legality report's reason.
``timeout``
    The request overran the server's per-request budget.
``backpressure``
    The admission queue was full; retry later.
``shutting-down``
    The server is draining; no new work is admitted.
``unavailable``
    A transient server-side fault (an injected chaos error, a worker
    that died mid-request); safe to retry — the request had no durable
    effect, and a retry carrying the same ``idem`` key is answered from
    the dedup window if the original did complete.
``internal``
    An unexpected server-side failure.

Requests may carry an optional ``idem`` string — an idempotency key.
The server remembers the response to each keyed request in a bounded
dedup window; a replay of the same key (a client retrying after a
dropped connection or a lost reply) is answered from the window
instead of re-executed, which is what makes at-least-once retries
exactly-once.

Frames are limited to :data:`MAX_FRAME_BYTES`
(``REPRO_MAX_FRAME_BYTES``); oversized, non-UTF-8 or truncated frames
get a typed ``bad-request`` and the connection stays alive.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple, Union

#: Bumped when the request/response shapes change incompatibly.
#: (`idem`, the `unavailable` code, the `trace`/`spans` tracing fields
#: and the `telemetry` op are backward-compatible additions, so
#: version 1 still describes this wire format.)
PROTOCOL_VERSION = 1

BAD_REQUEST = "bad-request"
BAD_INPUT = "bad-input"
ILLEGAL = "illegal"
TIMEOUT = "timeout"
BACKPRESSURE = "backpressure"
SHUTTING_DOWN = "shutting-down"
UNAVAILABLE = "unavailable"
INTERNAL = "internal"

ERROR_CODES = (BAD_REQUEST, BAD_INPUT, ILLEGAL, TIMEOUT, BACKPRESSURE,
               SHUTTING_DOWN, UNAVAILABLE, INTERNAL)

#: Codes a client may retry without changing the request: the server
#: refused or lost the work, it did not reject it.
RETRYABLE_CODES = (BACKPRESSURE, UNAVAILABLE)


def max_frame_bytes() -> int:
    """The frame-size cap (one NDJSON line, newline excluded)."""
    from repro.resilience.guards import limits
    return limits().max_frame_bytes

OPS = ("ping", "parse", "analyze", "legality", "apply", "run", "search",
       "stats", "telemetry", "shutdown")

RequestId = Union[str, int]


class ProtocolError(Exception):
    """A request the server rejects with a typed error response."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class ServiceError(ProtocolError):
    """Client-side surfacing of an error response.

    ``code`` is one of :data:`ERROR_CODES`, so callers can react to
    e.g. backpressure (``exc.code == BACKPRESSURE``) without string
    matching on messages.
    """


def encode(obj: Dict[str, Any]) -> str:
    """One protocol line (newline included), deterministically keyed."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def decode_request(line: str) -> Tuple[Optional[RequestId], str,
                                       Dict[str, Any], Optional[str],
                                       Optional[Dict[str, Any]]]:
    """Parse one request line into ``(id, op, params, idem, trace)``.

    ``idem`` is the optional idempotency key (None when absent);
    ``trace`` the optional distributed-tracing context ``{"id": ...,
    "parent": ...}`` (see :mod:`repro.obs.distributed`).  Raises
    :class:`ProtocolError` (``bad-request``) on malformed input; the
    ``id`` is recovered when possible so the error response can still
    be correlated.
    """
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(BAD_REQUEST, f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(BAD_REQUEST,
                            "request must be a JSON object")
    req_id = obj.get("id")
    if req_id is None or not isinstance(req_id, (str, int)):
        raise ProtocolError(BAD_REQUEST,
                            "request needs a string or integer 'id'")
    op = obj.get("op")
    if not isinstance(op, str):
        exc = ProtocolError(BAD_REQUEST, "request needs a string 'op'")
        exc.request_id = req_id  # type: ignore[attr-defined]
        raise exc
    if op not in OPS:
        exc = ProtocolError(
            BAD_REQUEST, f"unknown op {op!r}; expected one of "
            + ", ".join(OPS))
        exc.request_id = req_id  # type: ignore[attr-defined]
        raise exc
    params = obj.get("params", {})
    if not isinstance(params, dict):
        exc = ProtocolError(BAD_REQUEST, "'params' must be an object")
        exc.request_id = req_id  # type: ignore[attr-defined]
        raise exc
    idem = obj.get("idem")
    if idem is not None and not isinstance(idem, str):
        exc = ProtocolError(BAD_REQUEST,
                            "'idem' must be a string when present")
        exc.request_id = req_id  # type: ignore[attr-defined]
        raise exc
    trace = obj.get("trace")
    if trace is not None and not (isinstance(trace, dict)
                                  and isinstance(trace.get("id"), str)):
        exc = ProtocolError(
            BAD_REQUEST, "'trace' must be an object with a string 'id' "
            "when present")
        exc.request_id = req_id  # type: ignore[attr-defined]
        raise exc
    return req_id, op, params, idem, trace


def ok_response(req_id: Optional[RequestId],
                result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": req_id, "ok": True, "result": result}


def error_response(req_id: Optional[RequestId], code: str,
                   message: str) -> Dict[str, Any]:
    return {"id": req_id, "ok": False,
            "error": {"code": code, "message": message}}
