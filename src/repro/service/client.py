"""A small synchronous client for the transformation service.

Two transports, one API::

    with ServiceClient.spawn() as svc:              # stdio subprocess
        report = svc.request("legality", text=SRC,
                             steps="interchange(1,2)")

    with ServiceClient.connect("127.0.0.1", 7341) as svc:   # TCP
        result = svc.request("search", text=SRC, depth=2)

:meth:`ServiceClient.request` returns the response's ``result`` object
or raises :class:`~repro.service.protocol.ServiceError` carrying the
typed error code — so backpressure is ``exc.code == "backpressure"``,
not a string match.  Responses are matched to requests by ``id``
(admission rejections arrive out of order), so the client also works
over a pipelined connection.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.service import protocol
from repro.service.protocol import ServiceError


class ServiceClient:
    """Synchronous NDJSON client over a stdio subprocess or TCP."""

    def __init__(self, rfile, wfile, proc: Optional[subprocess.Popen] = None,
                 sock: Optional[socket.socket] = None):
        self._rfile = rfile
        self._wfile = wfile
        self._proc = proc
        self._sock = sock
        self._next_id = 0
        self._pending: Dict[Any, dict] = {}
        self._closed = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def spawn(cls, serve_args: Sequence[str] = (),
              python: Optional[str] = None,
              env: Optional[Dict[str, str]] = None) -> "ServiceClient":
        """Start ``python -m repro serve --stdio`` as a child process and
        attach to its pipes.  Extra ``serve_args`` (e.g. ``["--jobs",
        "2"]``) go through verbatim."""
        cmd = [python or sys.executable, "-m", "repro", "serve",
               "--stdio", *serve_args]
        proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env if env is not None else os.environ.copy())
        return cls(proc.stdout, proc.stdin, proc=proc)

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: Optional[float] = 10.0) -> "ServiceClient":
        """Connect to a ``repro serve --tcp`` server."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        rfile = sock.makefile("r", encoding="utf-8", newline="\n")
        wfile = sock.makefile("w", encoding="utf-8", newline="\n")
        return cls(rfile, wfile, sock=sock)

    # -- request plumbing --------------------------------------------------

    def send(self, op: str, params: Optional[Dict[str, Any]] = None,
             req_id: Optional[Any] = None,
             idem: Optional[str] = None,
             trace: Optional[Dict[str, Any]] = None) -> Any:
        """Write one request line (no wait); returns its id.  *idem* is
        an optional idempotency key (see :mod:`repro.resilience.retry`);
        the server answers a replayed key from its dedup window.
        *trace* is an optional distributed-tracing context (see
        :mod:`repro.obs.distributed`) the server will adopt."""
        if req_id is None:
            self._next_id += 1
            req_id = self._next_id
        message: Dict[str, Any] = {"id": req_id, "op": op,
                                   "params": params or {}}
        if idem is not None:
            message["idem"] = idem
        if trace is not None:
            message["trace"] = trace
        self._wfile.write(protocol.encode(message))
        self._wfile.flush()
        return req_id

    def recv(self, req_id: Any) -> dict:
        """The raw response for *req_id*, reading (and stashing) lines
        until it arrives."""
        if req_id in self._pending:
            return self._pending.pop(req_id)
        for line in self._rfile:
            if not line.strip():
                continue
            response = json.loads(line)
            if response.get("id") == req_id:
                return response
            self._pending[response.get("id")] = response
        raise ServiceError(protocol.INTERNAL,
                           f"connection closed before response {req_id!r}")

    def request_raw(self, op: str,
                    params: Optional[Dict[str, Any]] = None) -> dict:
        """One round-trip; returns the raw response object."""
        return self.recv(self.send(op, params))

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One round-trip; returns ``result`` or raises
        :class:`ServiceError` with the response's typed code."""
        response = self.request_raw(op, params)
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServiceError(error.get("code", protocol.INTERNAL),
                           error.get("message", "unknown error"))

    def replay(self, requests: Iterable[dict]) -> List[dict]:
        """Send a script of ``{"op": ..., "params": {...}}`` objects
        (ids are assigned when absent) and return the raw responses in
        script order."""
        ids = [self.send(req["op"], req.get("params"), req.get("id"))
               for req in requests]
        return [self.recv(req_id) for req_id in ids]

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> Optional[dict]:
        """Ask the server to drain and stop; returns its acknowledgement
        (None if the connection is already gone)."""
        try:
            return self.request("shutdown")
        except (ServiceError, OSError, ValueError):
            return None

    def close(self, shutdown: bool = True,
              timeout: Optional[float] = 10.0) -> Optional[int]:
        """Close the transport (optionally requesting shutdown first);
        for a spawned server, waits and returns its exit code."""
        if self._closed:
            return self._proc.returncode if self._proc else None
        if shutdown:
            self.shutdown()
        self._closed = True
        for stream in (self._wfile, self._rfile):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._proc is not None:
            try:
                return self._proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
                return self._proc.returncode
        return None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
