"""repro — a reproduction of Sarkar & Thekkath,
"A General Framework for Iteration-Reordering Loop Transformations"
(PLDI 1992).

Quickstart::

    from repro import parse_nest, analyze, Transformation
    from repro.core.derived import skew_and_interchange

    nest = parse_nest('''
    do i = 2, n-1
      do j = 2, n-1
        a(i, j) = (a(i, j) + a(i-1, j) + a(i, j-1)
                   + a(i+1, j) + a(i, j+1)) / 5
      enddo
    enddo
    ''')
    deps = analyze(nest)                       # {(1, 0), (0, 1)}
    T = skew_and_interchange(names=["jj", "ii"])
    print(T.legality(nest, deps).legal)        # True
    print(T.apply(nest, deps).pretty())        # Figure 1(b)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.expr` — symbolic bounds expressions & the type lattice
* :mod:`repro.ir` — perfect loop nests, parser, printer
* :mod:`repro.deps` — dependence vectors, Table 2 rules, analysis
* :mod:`repro.core` — templates, sequences, legality, code generation
* :mod:`repro.runtime` — interpreter and semantic oracles
* :mod:`repro.cache` — cache simulator for the locality benches
* :mod:`repro.baselines` — the unimodular-only comparator
* :mod:`repro.optimize` — hyperplane/parallelize/tile/search drivers
"""

from repro.core import (
    Block,
    BoundsMatrix,
    Coalesce,
    Interleave,
    KERNEL_SET,
    LegalityReport,
    Parallelize,
    ReversePermute,
    Template,
    Transformation,
    Unimodular,
    derived,
)
from repro.deps import DepEntry, DepSet, DepVector, depset, depv
from repro.deps.analysis import DependenceAnalyzer, analyze
from repro.expr import BoundType, Expr, parse_expr
from repro.ir import (
    Loop,
    LoopNest,
    parse_imperfect,
    parse_nest,
    pretty_with_temps,
    sink,
)
from repro.runtime import (
    Array,
    Schedule,
    check_dependence_order,
    check_equivalence,
    run_nest,
    simulate_makespan,
)
from repro.util import IllegalTransformationError, PreconditionViolation

__version__ = "1.0.0"

__all__ = [
    "Block", "BoundsMatrix", "Coalesce", "Interleave", "KERNEL_SET",
    "LegalityReport", "Parallelize", "ReversePermute", "Template",
    "Transformation", "Unimodular", "derived",
    "DepEntry", "DepSet", "DepVector", "depset", "depv",
    "DependenceAnalyzer", "analyze",
    "BoundType", "Expr", "parse_expr",
    "Loop", "LoopNest", "parse_nest", "parse_imperfect", "sink",
    "pretty_with_temps",
    "Array", "Schedule", "check_dependence_order", "check_equivalence",
    "run_nest", "simulate_makespan",
    "IllegalTransformationError", "PreconditionViolation",
    "__version__",
]
