"""Rendering observability data: per-phase profile table + JSON document.

Aggregates a tracer's spans by name into phases (call count, total/mean/
max wall time, total CPU time), renders them as a fixed-width text table
for ``--profile`` output, and bundles phases + metrics snapshot into one
machine-readable document for the ``profile`` CLI command and the bench
harness.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Metrics, get_metrics
from repro.obs.trace import Tracer, get_tracer

__all__ = ["aggregate_phases", "profile_table", "profile_document",
           "load_trace"]


def aggregate_phases(tracer: Optional[Tracer] = None) -> List[Dict[str, Any]]:
    """Spans grouped by name, sorted by total wall time (descending)."""
    tracer = tracer or get_tracer()
    if tracer is None:
        return []
    phases: Dict[str, Dict[str, Any]] = {}
    for sp in tracer.spans():
        ph = phases.get(sp.name)
        if ph is None:
            ph = phases[sp.name] = {
                "phase": sp.name, "count": 0,
                "wall_s": 0.0, "cpu_s": 0.0, "max_s": 0.0, "errors": 0,
            }
        ph["count"] += 1
        ph["wall_s"] += sp.wall
        ph["cpu_s"] += sp.cpu
        if sp.wall > ph["max_s"]:
            ph["max_s"] = sp.wall
        if sp.error is not None:
            ph["errors"] += 1
    out = sorted(phases.values(), key=lambda p: -p["wall_s"])
    for ph in out:
        ph["mean_s"] = ph["wall_s"] / ph["count"]
        for key in ("wall_s", "cpu_s", "max_s", "mean_s"):
            ph[key] = round(ph[key], 9)
    return out


def profile_table(tracer: Optional[Tracer] = None) -> str:
    """The per-phase profile as a fixed-width text table."""
    phases = aggregate_phases(tracer)
    if not phases:
        return "(no spans recorded)"
    header = (f"{'phase':<28} {'calls':>7} {'wall ms':>10} "
              f"{'mean ms':>10} {'max ms':>10} {'cpu ms':>10}")
    lines = [header, "-" * len(header)]
    for ph in phases:
        lines.append(
            f"{ph['phase']:<28} {ph['count']:>7} "
            f"{ph['wall_s'] * 1e3:>10.3f} {ph['mean_s'] * 1e3:>10.3f} "
            f"{ph['max_s'] * 1e3:>10.3f} {ph['cpu_s'] * 1e3:>10.3f}")
    total_wall = sum(ph["wall_s"] for ph in phases)
    lines.append("-" * len(header))
    lines.append(f"{'total (by phase)':<28} {'':>7} {total_wall * 1e3:>10.3f}")
    return "\n".join(lines)


def profile_document(tracer: Optional[Tracer] = None,
                     metrics: Optional[Metrics] = None) -> Dict[str, Any]:
    """The machine-readable profile: phases, metrics, span accounting."""
    tracer = tracer or get_tracer()
    metrics = metrics or get_metrics()
    doc: Dict[str, Any] = {
        "phases": aggregate_phases(tracer),
        "metrics": metrics.snapshot(),
    }
    if tracer is not None:
        doc["spans"] = {
            "completed": tracer.completed,
            "buffered": len(tracer.spans()),
            "dropped": tracer.dropped,
            "ring_size": tracer.ring_size,
        }
    else:
        doc["spans"] = {"completed": 0, "buffered": 0, "dropped": 0,
                        "ring_size": 0}
    return doc


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a ``--trace-json`` JSON-lines file back into span records."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
