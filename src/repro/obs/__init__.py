"""repro.obs — tracing, metrics and profiling for the whole pipeline.

One switch drives everything::

    from repro import obs

    tracer = obs.enable()          # fresh tracer + cleared metrics
    ...run searches, legality tests, compiled nests...
    print(obs.profile_table())     # per-phase wall/CPU table
    doc = obs.profile_document()   # JSON-ready phases + metrics snapshot
    tracer.export_jsonl("trace.jsonl")
    obs.disable()

While disabled (the default) every instrumentation site degrades to a
single global ``None`` check: :func:`repro.obs.trace.span` hands back a
shared no-op context manager and the metrics registry is never touched,
so the instrumented hot paths (compiled execution, memoized legality,
cache simulation) pay nothing measurable.

See :mod:`repro.obs.trace`, :mod:`repro.obs.metrics` and
:mod:`repro.obs.report` for the pieces; ``docs/API.md`` has the span
name inventory and the JSON schemas.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import trace as _trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    get_metrics,
)
from repro.obs.report import (
    aggregate_phases,
    load_trace,
    profile_document,
    profile_table,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    enabled,
    get_tracer,
    span,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "Metrics", "Span", "Tracer",
    "NULL_SPAN",
    "aggregate_phases", "disable", "enable", "enabled", "get_metrics",
    "get_tracer", "load_trace", "profile_document", "profile_table",
    "span",
]


def enable(ring_size: int = 65536) -> Tracer:
    """Turn every instrumentation site on: install a fresh tracer,
    clear the global metrics registry and the distributed span
    collector.  Returns the tracer."""
    from repro.obs import distributed as _distributed

    get_metrics().clear()
    _distributed.get_collector().clear()
    return _trace.install(Tracer(ring_size=ring_size))


def disable() -> Optional[Tracer]:
    """Back to no-op mode.  The tracer (returned), the metrics registry
    and the span collector keep their data, so reports — including a
    stitched cross-process trace — can still be rendered."""
    return _trace.uninstall()
