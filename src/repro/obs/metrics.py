"""A zero-dependency metrics registry: counters, gauges, histograms.

Instrumented code gets instruments from the process-global registry
(:func:`get_metrics`) *only after checking* :func:`repro.obs.trace.enabled`,
so the registry stays empty — no names registered, no values — while
observability is off.  :meth:`Metrics.snapshot` renders everything as a
plain JSON-serializable dict for reports and ``bench_smoke.json``.

Histograms are log-bucketed base 2: an observation ``v > 0`` lands in
the bucket whose key is the smallest power of two ``>= v``; zero and
negative observations land in the ``"<=0"`` bucket.  Exact count, sum,
min and max are kept alongside, so the buckets only ever add resolution.
:meth:`Histogram.to_dict` adds p50/p95/p99 estimates interpolated within
the winning bucket, and :func:`merge_histogram_dicts` merges snapshots
from several processes bucket-wise (the fleet aggregator's primitive).

Mutation is thread-safe: each instrument guards its updates with a lock
(the service heartbeat, dispatcher pool, and worker pumps all increment
concurrently), and the registry locks instrument creation and snapshots.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Optional, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "Metrics", "get_metrics",
    "bucket_key", "bucket_bounds", "estimate_percentiles",
    "merge_histogram_dicts",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        with self._lock:
            self.value += n

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, v: Number) -> None:
        # a single attribute store is atomic under the GIL; last write
        # wins is exactly the gauge contract, so no lock is needed
        self.value = v

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value})"


def bucket_key(v: Number) -> str:
    """The histogram bucket label for observation *v* (see module doc)."""
    if v <= 0:
        return "<=0"
    mantissa, exponent = math.frexp(float(v))  # v = mantissa * 2**exponent
    if mantissa == 0.5:  # exact power of two: its own upper bound
        exponent -= 1
    upper = 2.0 ** exponent
    return str(int(upper)) if upper >= 1 else str(upper)


def bucket_bounds(key: str) -> tuple:
    """``(lower, upper)`` of the half-open value range a bucket covers.

    ``"<=0"`` returns ``(None, 0.0)`` — its lower edge is unbounded;
    callers substitute the histogram's exact minimum.
    """
    if key == "<=0":
        return (None, 0.0)
    upper = float(key)
    return (upper / 2.0, upper)


def estimate_percentiles(count: int, vmin: Optional[Number],
                         vmax: Optional[Number], buckets: Dict[str, int],
                         qs: Iterable[float] = (0.5, 0.95, 0.99),
                         ) -> Dict[str, Optional[float]]:
    """Percentile estimates from log2 buckets (nearest-rank, linearly
    interpolated inside the winning bucket, clamped to exact min/max).

    The error is bounded by the winning bucket's width — good enough for
    SLO dashboards, and the best any fixed-bucket scheme can do after
    the raw samples are gone.
    """
    out: Dict[str, Optional[float]] = {}
    ordered = sorted(buckets.items(), key=lambda kv: bucket_bounds(kv[0])[1])
    for q in qs:
        label = "p" + format(q * 100, "g")
        if count <= 0:
            out[label] = None
            continue
        rank = max(1, math.ceil(q * count))
        cum = 0
        est: float = float(vmax) if vmax is not None else 0.0
        for key, n in ordered:
            if cum + n >= rank:
                lo, hi = bucket_bounds(key)
                if lo is None:
                    lo = float(min(vmin, 0)) if vmin is not None else 0.0
                est = lo + (hi - lo) * ((rank - cum) / n)
                break
            cum += n
        if vmin is not None:
            est = max(est, float(vmin))
        if vmax is not None:
            est = min(est, float(vmax))
        out[label] = est
    return out


def merge_histogram_dicts(dicts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge :meth:`Histogram.to_dict` snapshots from several processes.

    Counts and sums add, min/max combine, buckets merge key-wise (the
    bucketing is identical everywhere, so merging loses nothing), and
    the percentile estimates are recomputed over the merged buckets.
    """
    count = 0
    total: Number = 0
    vmin: Optional[Number] = None
    vmax: Optional[Number] = None
    buckets: Dict[str, int] = {}
    for d in dicts:
        count += d["count"]
        total += d["sum"]
        if d["min"] is not None and (vmin is None or d["min"] < vmin):
            vmin = d["min"]
        if d["max"] is not None and (vmax is None or d["max"] > vmax):
            vmax = d["max"]
        for key, n in d["buckets"].items():
            buckets[key] = buckets.get(key, 0) + n
    merged = {"count": count, "sum": total, "min": vmin, "max": vmax,
              "buckets": buckets}
    merged.update(estimate_percentiles(count, vmin, vmax, buckets))
    return merged


class Histogram:
    """Log-bucketed (base 2) distribution with exact count/sum/min/max."""

    __slots__ = ("name", "count", "sum", "min", "max", "buckets", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(self, v: Number) -> None:
        with self._lock:
            self.count += 1
            self.sum += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            key = bucket_key(v)
            self.buckets[key] = self.buckets.get(key, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            d: Dict[str, Any] = {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "buckets": dict(self.buckets),
            }
        d.update(estimate_percentiles(d["count"], d["min"], d["max"],
                                      d["buckets"]))
        return d

    def __repr__(self):
        return f"Histogram({self.name!r}, count={self.count})"


class Metrics:
    """Named instruments, created on first use.

    A name belongs to exactly one instrument kind; asking for the same
    name as a different kind raises, which catches typo'd dashboards at
    the instrumentation site instead of at read time.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"{name!r} is already a {other_kind}, not a {kind}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.get(name)
                if c is None:
                    self._check_free(name, "counter")
                    c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.get(name)
                if g is None:
                    self._check_free(name, "gauge")
                    g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    self._check_free(name, "histogram")
                    h = self._histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as a plain JSON-serializable dict."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.to_dict() for n, h in histograms},
        }

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = Metrics()


def get_metrics() -> Metrics:
    """The process-global registry (see the module doc for the
    enabled-gate convention instrumented code must follow)."""
    return _REGISTRY
