"""A zero-dependency metrics registry: counters, gauges, histograms.

Instrumented code gets instruments from the process-global registry
(:func:`get_metrics`) *only after checking* :func:`repro.obs.trace.enabled`,
so the registry stays empty — no names registered, no values — while
observability is off.  :meth:`Metrics.snapshot` renders everything as a
plain JSON-serializable dict for reports and ``bench_smoke.json``.

Histograms are log-bucketed base 2: an observation ``v > 0`` lands in
the bucket whose key is the smallest power of two ``>= v``; zero and
negative observations land in the ``"<=0"`` bucket.  Exact count, sum,
min and max are kept alongside, so the buckets only ever add resolution.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "get_metrics"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        self.value += n

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, v: Number) -> None:
        self.value = v

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value})"


def bucket_key(v: Number) -> str:
    """The histogram bucket label for observation *v* (see module doc)."""
    if v <= 0:
        return "<=0"
    mantissa, exponent = math.frexp(float(v))  # v = mantissa * 2**exponent
    if mantissa == 0.5:  # exact power of two: its own upper bound
        exponent -= 1
    upper = 2.0 ** exponent
    return str(int(upper)) if upper >= 1 else str(upper)


class Histogram:
    """Log-bucketed (base 2) distribution with exact count/sum/min/max."""

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[str, int] = {}

    def observe(self, v: Number) -> None:
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        key = bucket_key(v)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }

    def __repr__(self):
        return f"Histogram({self.name!r}, count={self.count})"


class Metrics:
    """Named instruments, created on first use.

    A name belongs to exactly one instrument kind; asking for the same
    name as a different kind raises, which catches typo'd dashboards at
    the instrumentation site instead of at read time.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"{name!r} is already a {other_kind}, not a {kind}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, "counter")
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, "gauge")
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, "histogram")
            h = self._histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as a plain JSON-serializable dict."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_REGISTRY = Metrics()


def get_metrics() -> Metrics:
    """The process-global registry (see the module doc for the
    enabled-gate convention instrumented code must follow)."""
    return _REGISTRY
