"""Span tracing for the search/legality/execution pipeline.

A :class:`Tracer` records *spans*: named context-manager scopes with
wall-clock and CPU time, a tag dict, and parent nesting (a span opened
inside another span records it as its parent).  Completed spans land in
a bounded ring buffer and can be exported as JSON lines
(:meth:`Tracer.export_jsonl`) or aggregated into a per-phase profile
(:mod:`repro.obs.report`).

The module-level switch is the whole enable story: instrumented code
calls :func:`span` (and checks :func:`enabled` before touching the
metrics registry).  While no tracer is installed — the default —
:func:`span` returns a shared no-op context manager and instrumented
functions record nothing, so the cost of shipping instrumentation in a
hot path is one global read per call.  Install a tracer with
:func:`repro.obs.enable` (or :func:`install` directly) to turn every
site on at once.

The tracer keeps one open-span stack *per thread* (``threading.local``):
the core pipeline is single-threaded, but the service heartbeat thread,
the fleet dispatcher pool, and the per-worker pumps all open spans
concurrently, and each thread's spans must parent to that thread's own
enclosing span.  Span-id allocation and the completion counter are
guarded by a lock so concurrent closes never lose counts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, IO, List, Optional, Union

__all__ = [
    "Span", "Tracer", "NULL_SPAN",
    "span", "event", "enabled", "get_tracer", "install", "uninstall",
]


class Span:
    """One timed scope.  Use as a context manager via :meth:`Tracer.span`.

    Durations are filled in at ``__exit__``: ``wall`` and ``cpu`` are
    seconds; ``start`` is seconds since the owning tracer's epoch, so
    sorting by it reconstructs open order.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "tags",
                 "start", "wall", "cpu", "error",
                 "_tracer", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]):
        self.name = name
        self.tags = tags
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start = 0.0
        self.wall = 0.0
        self.cpu = 0.0
        self.error: Optional[str] = None
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach tags from inside the ``with`` body (e.g. a score that
        is only known after the work ran)."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._close(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-lines record for this span."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": round(self.start, 9),
            "wall": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
            "tags": self.tags,
            "error": self.error,
        }

    def __repr__(self):
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, wall={self.wall:.6f})")


class _NullSpan:
    """Shared do-nothing stand-in returned by :func:`span` when no
    tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into a bounded ring buffer.

    *ring_size* bounds memory: once full, the oldest completed spans are
    dropped (counted in :attr:`dropped`).  Spans are buffered in
    completion order; ``start`` timestamps give open order.

    Open-span stacks are per-thread: a span opened on the dispatcher
    thread parents to the dispatcher's enclosing span, never to a span
    another thread happens to have open.  *tag* is a short random hex
    string identifying this tracer (hence this process) when spans are
    shipped across process boundaries (:mod:`repro.obs.distributed`).
    """

    def __init__(self, ring_size: int = 65536):
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.ring_size = ring_size
        self.epoch = time.perf_counter()
        self.tag = os.urandom(4).hex()
        self._buffer: Deque[Span] = deque(maxlen=ring_size)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.completed = 0
        self._next_id = 1

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle (called by Span) -----------------------------------

    def _open(self, sp: Span) -> None:
        with self._lock:
            sp.span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        if stack:
            sp.parent_id = stack[-1].span_id
            sp.depth = stack[-1].depth + 1
        sp.start = time.perf_counter() - self.epoch
        stack.append(sp)

    def _close(self, sp: Span) -> None:
        # Tolerate exits out of order (an exception unwinding through
        # several spans closes them innermost-first, which is in order;
        # anything stranger just drops the stranded entries).
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is sp:
                break
        with self._lock:
            self.completed += 1
            self._buffer.append(sp)

    # -- public API --------------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a new span; use as ``with tracer.span("phase"): ...``."""
        return Span(self, name, tags)

    def current(self) -> Optional[Span]:
        """The innermost span open on the *calling* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def open_spans(self) -> List[Span]:
        """The calling thread's open spans, outermost first."""
        return list(self._stack())

    @property
    def dropped(self) -> int:
        return self.completed - len(self._buffer)

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for telemetry: completions, drops, buffer."""
        with self._lock:
            return {
                "tag": self.tag,
                "completed": self.completed,
                "buffered": len(self._buffer),
                "dropped": self.completed - len(self._buffer),
            }

    def spans(self) -> List[Span]:
        """Completed spans currently in the ring buffer."""
        return list(self._buffer)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [sp.to_dict() for sp in self._buffer]

    def export_jsonl(self, dest: Union[str, IO[str]]) -> int:
        """Write one JSON object per completed span to *dest* (a path or
        a text file object); returns the number of spans written."""
        records = self.to_dicts()
        if isinstance(dest, str):
            with open(dest, "w") as fh:
                for rec in records:
                    fh.write(json.dumps(rec, sort_keys=True) + "\n")
        else:
            for rec in records:
                dest.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()
            self._local = threading.local()
            self.completed = 0
            self._next_id = 1
            self.epoch = time.perf_counter()


# ---------------------------------------------------------------------------
# the module-level switch
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def enabled() -> bool:
    """True when a tracer is installed (instrumentation is live)."""
    return _ACTIVE is not None


def get_tracer() -> Optional[Tracer]:
    return _ACTIVE


def install(tracer: Tracer) -> Tracer:
    """Make *tracer* the destination of every :func:`span` call."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Remove the active tracer (back to no-op mode); returns it."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def span(name: str, **tags: Any):
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **tags)


def event(name: str, **tags: Any) -> None:
    """Record a zero-duration annotation span (a structured lifecycle
    event: a supervisor restart, a chaos firing, a fleet failover).  It
    parents to the calling thread's open span like any other span, so
    events land inside the request tree they belong to."""
    tracer = _ACTIVE
    if tracer is None:
        return
    with tracer.span(name, **tags):
        pass
