"""Span tracing for the search/legality/execution pipeline.

A :class:`Tracer` records *spans*: named context-manager scopes with
wall-clock and CPU time, a tag dict, and parent nesting (a span opened
inside another span records it as its parent).  Completed spans land in
a bounded ring buffer and can be exported as JSON lines
(:meth:`Tracer.export_jsonl`) or aggregated into a per-phase profile
(:mod:`repro.obs.report`).

The module-level switch is the whole enable story: instrumented code
calls :func:`span` (and checks :func:`enabled` before touching the
metrics registry).  While no tracer is installed — the default —
:func:`span` returns a shared no-op context manager and instrumented
functions record nothing, so the cost of shipping instrumentation in a
hot path is one global read per call.  Install a tracer with
:func:`repro.obs.enable` (or :func:`install` directly) to turn every
site on at once.

The tracer keeps its open-span stack as a plain list, matching the
single-threaded execution model of the rest of the package.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Deque, Dict, IO, List, Optional, Union

__all__ = [
    "Span", "Tracer", "NULL_SPAN",
    "span", "enabled", "get_tracer", "install", "uninstall",
]


class Span:
    """One timed scope.  Use as a context manager via :meth:`Tracer.span`.

    Durations are filled in at ``__exit__``: ``wall`` and ``cpu`` are
    seconds; ``start`` is seconds since the owning tracer's epoch, so
    sorting by it reconstructs open order.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "tags",
                 "start", "wall", "cpu", "error",
                 "_tracer", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]):
        self.name = name
        self.tags = tags
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start = 0.0
        self.wall = 0.0
        self.cpu = 0.0
        self.error: Optional[str] = None
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach tags from inside the ``with`` body (e.g. a score that
        is only known after the work ran)."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._close(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-lines record for this span."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": round(self.start, 9),
            "wall": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
            "tags": self.tags,
            "error": self.error,
        }

    def __repr__(self):
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, wall={self.wall:.6f})")


class _NullSpan:
    """Shared do-nothing stand-in returned by :func:`span` when no
    tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into a bounded ring buffer.

    *ring_size* bounds memory: once full, the oldest completed spans are
    dropped (counted in :attr:`dropped`).  Spans are buffered in
    completion order; ``start`` timestamps give open order.
    """

    def __init__(self, ring_size: int = 65536):
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.ring_size = ring_size
        self.epoch = time.perf_counter()
        self._buffer: Deque[Span] = deque(maxlen=ring_size)
        self._stack: List[Span] = []
        self.completed = 0
        self._next_id = 1

    # -- span lifecycle (called by Span) -----------------------------------

    def _open(self, sp: Span) -> None:
        sp.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            sp.parent_id = self._stack[-1].span_id
            sp.depth = self._stack[-1].depth + 1
        sp.start = time.perf_counter() - self.epoch
        self._stack.append(sp)

    def _close(self, sp: Span) -> None:
        # Tolerate exits out of order (an exception unwinding through
        # several spans closes them innermost-first, which is in order;
        # anything stranger just drops the stranded entries).
        while self._stack:
            top = self._stack.pop()
            if top is sp:
                break
        self.completed += 1
        self._buffer.append(sp)

    # -- public API --------------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a new span; use as ``with tracer.span("phase"): ...``."""
        return Span(self, name, tags)

    @property
    def dropped(self) -> int:
        return self.completed - len(self._buffer)

    def spans(self) -> List[Span]:
        """Completed spans currently in the ring buffer."""
        return list(self._buffer)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [sp.to_dict() for sp in self._buffer]

    def export_jsonl(self, dest: Union[str, IO[str]]) -> int:
        """Write one JSON object per completed span to *dest* (a path or
        a text file object); returns the number of spans written."""
        records = self.to_dicts()
        if isinstance(dest, str):
            with open(dest, "w") as fh:
                for rec in records:
                    fh.write(json.dumps(rec, sort_keys=True) + "\n")
        else:
            for rec in records:
                dest.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)

    def clear(self) -> None:
        self._buffer.clear()
        self._stack.clear()
        self.completed = 0
        self._next_id = 1
        self.epoch = time.perf_counter()


# ---------------------------------------------------------------------------
# the module-level switch
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def enabled() -> bool:
    """True when a tracer is installed (instrumentation is live)."""
    return _ACTIVE is not None


def get_tracer() -> Optional[Tracer]:
    return _ACTIVE


def install(tracer: Tracer) -> Tracer:
    """Make *tracer* the destination of every :func:`span` call."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Remove the active tracer (back to no-op mode); returns it."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def span(name: str, **tags: Any):
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **tags)
