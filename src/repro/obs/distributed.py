"""Distributed tracing: one stitched span tree across processes.

A request that crosses process boundaries — CLI client → fleet front
end → router → worker service → forked pool child — carries a *trace
context* on the wire: ``{"id": <trace id>, "parent": <qualified span
id>}``.  Each hop :func:`adopt`-s the context (opening a local span
tagged with the trace id), does its work under the ordinary
:mod:`repro.obs.trace` instrumentation, and — when replying — calls
:func:`ship` to extract its completed subtree, rewrite the local span
ids into globally unique *qualified* ids (``"<tracer tag>-<local
id>"``), re-parent the subtree root under the caller's span, and
piggyback the records on the response.  The originating process folds
every hop's shipped spans together and ends up with a single tree under
one ``trace_id`` — no collector daemon, no clock synchronization (the
tree is structural; ``start`` offsets are only comparable within one
process).

Shipping is bounded (:data:`SHIP_LIMIT` spans per response, innermost
kept, overflow counted in ``spans_dropped``) so a pathological request
cannot turn its response into a span dump.

Everything here follows the package's one-switch convention: while
:func:`repro.obs.trace.enabled` is False, no context is attached to
outgoing requests, incoming contexts are ignored, and no cross-process
state exists at all — the wire format is byte-identical to an
uninstrumented build.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import trace as _trace
from repro.obs.metrics import merge_histogram_dicts

__all__ = [
    "SHIP_LIMIT", "SpanCollector",
    "adopt", "current_context", "export_stitched", "get_collector",
    "merge_metric_snapshots", "new_trace_id", "qualify", "ship",
    "start_trace", "stitched_records",
]

#: Most spans one response will carry (its own subtree plus everything
#: forwarded from downstream hops); the rest are counted, not sent.
SHIP_LIMIT = 256


def new_trace_id() -> str:
    """A fresh 16-hex trace id (W3C-style, shortened)."""
    return os.urandom(8).hex()


def qualify(tag: str, span_id: int) -> str:
    """The globally unique wire form of a local span id."""
    return f"{tag}-{span_id}"


# ---------------------------------------------------------------------------
# context propagation
# ---------------------------------------------------------------------------

def start_trace(name: str, **tags: Any):
    """Open a span that roots a *new* trace (fresh trace id).  The
    no-op span when tracing is disabled."""
    if not _trace.enabled():
        return _trace.NULL_SPAN
    return _trace.span(name, trace=new_trace_id(), **tags)


def adopt(ctx: Dict[str, Any], name: str, **tags: Any):
    """Open a span joined to a remote caller's trace: it carries the
    caller's trace id, and :func:`ship` will re-parent it under
    ``ctx["parent"]``.  The no-op span when tracing is disabled."""
    if not _trace.enabled():
        return _trace.NULL_SPAN
    return _trace.span(name, trace=ctx.get("id") or new_trace_id(),
                       **tags)


def current_context() -> Optional[Dict[str, str]]:
    """The trace context to attach to an outgoing request, derived from
    the calling thread's innermost open span: ``parent`` is that span's
    qualified id, ``id`` the nearest enclosing span's trace id (a fresh
    one is minted — and tagged onto the innermost span — when no
    enclosing span carries one).  None when tracing is disabled or no
    span is open (nothing to stitch to)."""
    tracer = _trace.get_tracer()
    if tracer is None:
        return None
    stack = tracer.open_spans()
    if not stack:
        return None
    top = stack[-1]
    trace_id = None
    for sp in reversed(stack):
        trace_id = sp.tags.get("trace")
        if trace_id is not None:
            break
    if trace_id is None:
        trace_id = new_trace_id()
        top.tags["trace"] = trace_id
    return {"id": trace_id, "parent": qualify(tracer.tag, top.span_id)}


# ---------------------------------------------------------------------------
# shipping completed subtrees across the wire
# ---------------------------------------------------------------------------

def _subtree(tracer: _trace.Tracer, root: _trace.Span) -> List[_trace.Span]:
    """Completed spans in the tracer's buffer whose parent chain reaches
    *root* (root included), in completion order."""
    spans = tracer.spans()
    members = {root.span_id}
    out: List[_trace.Span] = []
    # The buffer is in completion order (children before parents), so
    # one reverse pass sees each span's parent decided before the span.
    for sp in reversed(spans):
        if sp.span_id in members or sp.parent_id in members:
            members.add(sp.span_id)
            out.append(sp)
    if root not in out:
        out.append(root)
    out.reverse()
    return out


def ship(tracer: _trace.Tracer, root: _trace.Span, ctx: Dict[str, Any],
         extra: Optional[List[Dict[str, Any]]] = None,
         limit: int = SHIP_LIMIT) -> Tuple[List[Dict[str, Any]], int]:
    """The wire records for a completed request: *root*'s subtree with
    qualified ids, the subtree root re-parented under ``ctx["parent"]``,
    plus *extra* already-qualified records forwarded from downstream
    hops.  Returns ``(records, dropped)`` with the total bounded by
    *limit* (truncation drops oldest records first, so this hop's own
    subtree — and its root in particular — survives longest)."""
    tag = tracer.tag
    trace_id = ctx.get("id")
    local: List[Dict[str, Any]] = []
    for sp in _subtree(tracer, root):
        rec = sp.to_dict()
        rec["id"] = qualify(tag, sp.span_id)
        if sp is root:
            rec["parent"] = ctx.get("parent")
        elif sp.parent_id is not None:
            rec["parent"] = qualify(tag, sp.parent_id)
        rec["trace"] = trace_id
        rec["proc"] = tag
        local.append(rec)
    records = list(extra or ()) + local  # local subtree last: kept first
    dropped = 0
    if len(records) > limit:
        dropped = len(records) - limit
        records = records[-limit:]
    return records, dropped


# ---------------------------------------------------------------------------
# collecting shipped spans at the originating side
# ---------------------------------------------------------------------------

class SpanCollector:
    """Remote span records grouped by trace id, bounded in total.

    The originating process (the CLI client, or a fleet front end acting
    as trace root) adds every ``spans`` list it receives; when a bound
    is hit the newest records win and the loss is counted in
    :attr:`dropped` — a telemetry sink must never grow without bound.
    """

    def __init__(self, limit: int = 16384):
        self.limit = limit
        self.dropped = 0
        self._by_trace: Dict[str, List[Dict[str, Any]]] = {}
        self._total = 0

    def add(self, records: Optional[List[Dict[str, Any]]],
            dropped: int = 0) -> None:
        self.dropped += int(dropped)
        for rec in records or ():
            trace_id = rec.get("trace") or "?"
            if self._total >= self.limit:
                self.dropped += 1
                continue
            self._by_trace.setdefault(trace_id, []).append(rec)
            self._total += 1

    def drain(self, trace_id: str) -> List[Dict[str, Any]]:
        """Remove and return the records collected for *trace_id*."""
        records = self._by_trace.pop(trace_id, [])
        self._total -= len(records)
        return records

    def all_records(self) -> List[Dict[str, Any]]:
        return [rec for records in self._by_trace.values()
                for rec in records]

    def trace_ids(self) -> List[str]:
        return sorted(self._by_trace)

    def __len__(self) -> int:
        return self._total

    def clear(self) -> None:
        self._by_trace.clear()
        self._total = 0
        self.dropped = 0


_COLLECTOR = SpanCollector()


def get_collector() -> SpanCollector:
    """The process-global collector for spans shipped back to us."""
    return _COLLECTOR


# ---------------------------------------------------------------------------
# stitching: local spans + collected remote spans, one document
# ---------------------------------------------------------------------------

def stitched_records(tracer: Optional[_trace.Tracer] = None,
                     collector: Optional[SpanCollector] = None,
                     ) -> List[Dict[str, Any]]:
    """Every local completed span (qualified ids, trace ids inherited
    down the local parent chain) merged with every collected remote
    record — the export form of the stitched cross-process trace."""
    tracer = tracer if tracer is not None else _trace.get_tracer()
    collector = collector if collector is not None else _COLLECTOR
    records: List[Dict[str, Any]] = []
    if tracer is not None:
        tag = tracer.tag
        trace_of: Dict[int, Optional[str]] = {}
        spans = sorted(tracer.spans(), key=lambda sp: sp.start)
        for sp in spans:  # parents open before children
            trace_of[sp.span_id] = (sp.tags.get("trace")
                                    or trace_of.get(sp.parent_id))
        for sp in spans:
            rec = sp.to_dict()
            rec["id"] = qualify(tag, sp.span_id)
            if sp.parent_id is not None:
                rec["parent"] = qualify(tag, sp.parent_id)
            rec["trace"] = trace_of.get(sp.span_id)
            rec["proc"] = tag
            records.append(rec)
    records.extend(collector.all_records())
    return records


def export_stitched(path: str,
                    tracer: Optional[_trace.Tracer] = None,
                    collector: Optional[SpanCollector] = None) -> int:
    """Write the stitched trace as JSON lines; returns the record
    count."""
    import json

    records = stitched_records(tracer, collector)
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(records)


# ---------------------------------------------------------------------------
# fleet-wide metric aggregation
# ---------------------------------------------------------------------------

def merge_metric_snapshots(snapshots: List[Dict[str, Any]],
                           labels: Optional[List[str]] = None,
                           ) -> Dict[str, Any]:
    """Merge N processes' :meth:`~repro.obs.metrics.Metrics.snapshot`
    documents: counters sum, gauges keep each process's last write
    tagged by its label, histograms merge bucket-wise (with p50/p95/p99
    re-estimated over the merged buckets)."""
    if labels is None:
        labels = [f"w{i}" for i in range(len(snapshots))]
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, List[Dict[str, Any]]] = {}
    for label, snap in zip(labels, snapshots):
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            gauges.setdefault(name, {})[label] = value
        for name, hist in (snap.get("histograms") or {}).items():
            histograms.setdefault(name, []).append(hist)
    return {
        "sources": list(labels),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {name: merge_histogram_dicts(dicts)
                       for name, dicts in sorted(histograms.items())},
    }
