"""Loop parallelization drivers built on the uniform legality test.

Because Parallelize is "just another template", deciding which loops may
run in parallel is a legality query, not a bespoke analysis: loop *k* is
parallelizable iff ``Parallelize(n, e_k)`` passes the dependence-vector
test (equivalently: no dependence can be carried at level *k*).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.sequence import Transformation
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.deps.vector import DepSet
from repro.ir.loopnest import LoopNest


def parallelizable_loops(deps: DepSet, n: int) -> List[int]:
    """1-based loop numbers that may individually become ``pardo``."""
    out = []
    for k in range(1, n + 1):
        flags = [False] * n
        flags[k - 1] = True
        mapped = Parallelize(n, flags).map_dep_set(deps)
        if not mapped.can_be_lex_negative():
            out.append(k)
    return out


def maximal_parallelize(nest: LoopNest, deps: DepSet) -> Transformation:
    """The largest jointly-legal Parallelize instantiation.

    Starts from the individually-legal set and drops loops innermost
    first until the joint mapping passes (joint legality can be stricter
    because parallelizing an outer loop erases the positive entries that
    justified parallelizing an inner one).
    """
    n = nest.depth
    candidates = parallelizable_loops(deps, n)
    flags = [k in candidates for k in range(1, n + 1)]
    while any(flags):
        mapped = Parallelize(n, flags).map_dep_set(deps)
        if not mapped.can_be_lex_negative():
            break
        # Drop the innermost flagged loop and retry.
        for k in range(n - 1, -1, -1):
            if flags[k]:
                flags[k] = False
                break
    transformation = Transformation.of(Parallelize(n, flags)).reduced()
    return transformation


def outermost_parallel(nest: LoopNest, deps: DepSet
                       ) -> Optional[Transformation]:
    """Find a permutation placing a parallelizable loop outermost.

    Searches all loop orders (ReversePermute only — cheap, reuses index
    names), preferring (a) more parallel loops in outer positions and
    (b) the identity-most permutation; returns None when no order makes
    any loop parallel.  Demonstrates the paper's "search and undo": the
    nest is never modified while alternatives are evaluated.
    """
    n = nest.depth
    best: Optional[Tuple[Tuple[int, ...], int, Transformation]] = None
    for order in itertools.permutations(range(1, n + 1)):
        perm = [0] * n
        for position, loop_number in enumerate(order, start=1):
            perm[loop_number - 1] = position
        rp = ReversePermute(n, [False] * n, perm)
        base = Transformation.of(rp)
        mapped = base.map_dep_set(deps)
        if mapped.can_be_lex_negative():
            continue
        # How many outermost loops can be parallel in this order?
        score = 0
        flags = [False] * n
        for k in range(1, n + 1):
            flags[k - 1] = True
            joint = Parallelize(n, flags).map_dep_set(mapped)
            if joint.can_be_lex_negative():
                flags[k - 1] = False
                break
            score += 1
        if score == 0:
            continue
        candidate = base.then(Parallelize(n, flags), reduce=False)
        if not candidate.legality(nest, deps).legal:
            continue
        key = (order, )
        if best is None or score > best[1] or (
                score == best[1] and order < best[0]):
            best = (order, score, candidate)
    return best[2] if best else None
