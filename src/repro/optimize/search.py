"""Transformation search with undo — Section 5's headline advantage.

Because a :class:`~repro.core.sequence.Transformation` is a value
independent of any loop nest, an optimizer can enumerate arbitrarily
many candidate sequences, test each for legality and score the good
ones, all without touching the nest; code is generated once, for the
winner.  This module provides a small beam search over a candidate menu
plus two ready-made scoring functions (static parallelism, simulated
cache locality).
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from contextlib import nullcontext
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.simulator import CacheConfig, Layout, simulate_trace
from repro.core.legality_cache import LegalityCache
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.core.templates.block import Block
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.deps.vector import DepSet
from repro.ir.loopnest import LoopNest, PARDO
from repro.optimize.prune import prune_step
from repro.runtime.compiled import run_compiled
from repro.util.errors import ReproError

Score = Callable[[Transformation, LoopNest, DepSet], float]


def coerce_score(s: float) -> float:
    """Normalize a user scoring function's return value at the search
    boundary: ``NaN`` becomes ``-inf``.

    ``NaN`` would otherwise poison the beam silently — ``s > best_score``
    is always false for it, and ``list.sort`` over a key containing NaN
    leaves the frontier in an undefined order — so "unscorable" is
    canonicalized to the same value failed candidates use.
    """
    s = float(s)
    return float("-inf") if math.isnan(s) else s


def default_candidates(n: int, tile_size: int = 16) -> List[Template]:
    """A menu of single-step candidates for nests of size *n*: all
    adjacent interchanges, single-loop reversals, single-loop
    parallelizations, and full-range tiling."""
    menu: List[Template] = []
    for a in range(1, n):
        perm = list(range(1, n + 1))
        perm[a - 1], perm[a] = perm[a], perm[a - 1]
        menu.append(ReversePermute(n, [False] * n, perm))
    for k in range(1, n + 1):
        rev = [False] * n
        rev[k - 1] = True
        menu.append(ReversePermute(n, rev, list(range(1, n + 1))))
        flags = [False] * n
        flags[k - 1] = True
        menu.append(Parallelize(n, flags))
    if n >= 2:
        menu.append(Block(n, 1, n, [tile_size] * n))
    return menu


def parallelism_score(transformation: Transformation, nest: LoopNest,
                      deps: DepSet) -> float:
    """Static score: pardo loops weighted by how far out they sit."""
    try:
        loops = transformation.loop_trace(nest)[-1]
    except Exception:
        return float("-inf")
    total = 0.0
    depth = len(loops)
    for position, lp in enumerate(loops):
        if lp.kind == PARDO:
            total += depth - position
    return total


def make_locality_score(arrays, symbols, layout: Layout,
                        config: Optional[CacheConfig] = None,
                        trace_source: Optional[LoopNest] = None) -> Score:
    """A scoring function that *runs* the transformed nest through the
    compiled execution engine and cache simulator; higher is better
    (negated misses).  The compiled engine emits the same address trace
    as the interpreter oracle (enforced by the differential tests), so
    scores are unchanged — only faster."""

    def score(transformation: Transformation, nest: LoopNest,
              deps: DepSet) -> float:
        try:
            out = transformation.apply(nest, deps)
            result = run_compiled(out, arrays, symbols=symbols,
                                  trace_addresses=True)
            stats = simulate_trace(result.address_trace, layout, config)
            return -float(stats.misses)
        except ReproError:
            # Domain rejections only: illegal/unmappable candidates and
            # runtime guards (iteration bound, zero step, codegen) score
            # -inf.  Genuine programming errors — a typo'd symbol dict
            # (NameError), a malformed layout (KeyError), a non-numeric
            # array (TypeError) — propagate instead of masquerading as
            # bad candidates.
            return float("-inf")

    return score


def make_time_score(arrays, symbols, engine: str = "vectorized",
                    funcs=None, repeats: int = 1,
                    max_iterations: int = 10_000_000) -> Score:
    """A scoring function that *times* the transformed nest under the
    named execution engine; higher is better (negated best-of-*repeats*
    wall clock in seconds).

    Unlike :func:`make_locality_score` this measures real time, so it
    can see effects the cache simulator cannot — kernel launch counts
    under the vectorized engine, thread-pool pardo chunking — at the
    cost of being machine-dependent.  *engine* is any
    :data:`repro.runtime.ENGINE_NAMES` entry; resolution failures
    (unknown name, NumPy missing for ``"vectorized"``) raise
    immediately rather than per candidate.
    """
    import time as _time

    from repro.runtime import resolve_engine

    engine_cls = resolve_engine(engine)
    repeats = max(1, int(repeats))

    def score(transformation: Transformation, nest: LoopNest,
              deps: DepSet) -> float:
        try:
            out = transformation.apply(nest, deps)
            runner = engine_cls(out, symbols=symbols, funcs=funcs,
                                max_iterations=max_iterations)
            best = float("inf")
            for _ in range(repeats):
                start = _time.perf_counter()
                runner.run(arrays)
                best = min(best, _time.perf_counter() - start)
            return -best
        except ReproError:
            # Same contract as make_locality_score: domain rejections
            # score -inf, programming errors propagate.
            return float("-inf")

    return score


class SearchResult:
    __slots__ = ("transformation", "score", "explored", "legal_count",
                 "cache_stats", "timeouts", "parallel", "pruned",
                 "prune_reasons", "speculated", "evicted", "exact_verdicts")

    def __init__(self, transformation: Optional[Transformation],
                 score: float, explored: int, legal_count: int,
                 cache_stats: Optional[Dict[str, int]] = None,
                 timeouts: int = 0,
                 parallel: Optional[Dict[str, object]] = None,
                 pruned: int = 0,
                 prune_reasons: Optional[Dict[str, int]] = None,
                 speculated: int = 0,
                 evicted: int = 0,
                 exact_verdicts: int = 0):
        self.transformation = transformation
        self.score = score
        self.explored = explored
        self.legal_count = legal_count
        #: The legality cache's hit/miss/eval counters at the end of the
        #: search (``LegalityCache.stats``), so beam-search efficiency is
        #: visible to callers; None when the supplied cache has no stats.
        self.cache_stats = cache_stats
        #: Candidates whose scoring overran ``candidate_timeout`` (they
        #: scored ``-inf`` but still count toward ``explored``).
        self.timeouts = timeouts
        #: ``ShardedPool.snapshot()`` when the search ran with
        #: ``jobs > 1`` (worker/crash/requeue/fallback accounting);
        #: ``None`` for a serial search.
        self.parallel = parallel
        #: Candidates discarded algebraically before any legality work
        #: (they still count toward ``explored``), and the histogram of
        #: :data:`repro.optimize.prune.PRUNE_REASONS` that caught them.
        self.pruned = pruned
        self.prune_reasons = dict(prune_reasons or {})
        #: Candidates admitted to the beam on the dep-only verdict.
        self.speculated = speculated
        #: Misspeculations caught by exact re-verification at the beam
        #: frontier and evicted.
        self.evicted = evicted
        #: Exact legality verdicts computed during this search (the
        #: legality cache's ``misses`` delta) — the denominator of the
        #: model-guided speedup claim.
        self.exact_verdicts = exact_verdicts

    def __repr__(self):
        sig = self.transformation.signature() if self.transformation else None
        return (f"SearchResult({sig}, score={self.score}, "
                f"explored={self.explored}, legal={self.legal_count}, "
                f"pruned={self.pruned}, speculated={self.speculated}, "
                f"evicted={self.evicted}, "
                f"exact_verdicts={self.exact_verdicts}, "
                f"cache_stats={self.cache_stats})")


@dataclasses.dataclass(frozen=True)
class SearchConfig:
    """Tuning for :func:`search`, replacing its historical sprawl of
    keyword arguments.

    The first seven fields are the historical tuning surface unchanged;
    the last three select the model-guided paths:

    * ``prune`` — discard algebraically-illegal candidates before any
      legality work (:mod:`repro.optimize.prune`);
    * ``speculate`` — admit model-favored candidates to the beam on the
      cheap dep-only verdict, deferring the exact FM/bounds check until
      a candidate reaches the beam frontier;
    * ``model`` — a :class:`repro.optimize.model.CostModel` gating
      speculative admission (a default one is created when ``speculate``
      is set and this is None).

    Frozen so a config can be shared across calls and threads; build
    variants with :func:`dataclasses.replace`.
    """

    score: Score = parallelism_score
    depth: int = 2
    beam: int = 8
    cache: Optional[LegalityCache] = None
    jobs: int = 1
    candidate_timeout: Optional[float] = None
    pool: Optional[object] = None
    prune: bool = False
    speculate: bool = False
    model: Optional[object] = None


_CONFIG_FIELDS = tuple(f.name for f in dataclasses.fields(SearchConfig))
_DEFAULT_CONFIG = SearchConfig()


def search(nest: LoopNest, deps: DepSet,
           candidates: Optional[Sequence[Template]] = None,
           config: Optional[SearchConfig] = None,
           *args, **kwargs) -> SearchResult:
    """Beam search over candidate transformation sequences.

    See :func:`_search` for the full contract.  Tuning is a
    :class:`SearchConfig` passed as ``config=``; the historical keyword
    arguments (``score=..., depth=..., ...``) still work for one release
    via a ``DeprecationWarning`` shim that folds them into a config.
    Positional tuning arguments (removed) and mixing ``config=`` with
    legacy keywords are errors.
    """
    if args or (config is not None and
                not isinstance(config, SearchConfig)):
        raise TypeError(
            "search() positional tuning arguments were removed; pass "
            "config=SearchConfig(...)")
    if config is not None:
        if kwargs:
            raise TypeError(
                "search() got both config= and legacy keyword arguments: "
                + ", ".join(sorted(kwargs)))
        return _search(nest, deps, candidates, config)
    if kwargs:
        unknown = sorted(set(kwargs) - set(_CONFIG_FIELDS))
        if unknown:
            raise TypeError(
                "search() got unexpected keyword argument(s): "
                + ", ".join(unknown))
        warnings.warn(
            "passing search() tuning as keyword arguments is deprecated; "
            "pass config=SearchConfig(...)",
            DeprecationWarning, stacklevel=2)
        return _search(nest, deps, candidates, SearchConfig(**kwargs))
    return _search(nest, deps, candidates, _DEFAULT_CONFIG)


def _search(nest: LoopNest, deps: DepSet,
            candidates: Optional[Sequence[Template]],
            config: SearchConfig) -> SearchResult:
    """Beam search over sequences of up to ``config.depth`` menu steps.

    Every candidate sequence is legality-tested and scored against the
    *unmodified* nest; ties keep the shorter sequence.  The identity
    transformation seeds the beam, so "do nothing" wins when nothing
    scores better.  A scoring function returning ``NaN`` is treated as
    "unscorable": the value is coerced to ``-inf`` at the boundary
    (:func:`coerce_score`) so it can neither win nor scramble the beam
    ordering.

    With ``jobs > 1`` each level's candidate evaluations are sharded
    across forked worker processes (:mod:`repro.parallel`); the workers'
    legality-cache deltas are merged back in serial candidate order, so
    the result — winner, score, ``explored``, ``legal_count``,
    ``cache_stats`` and the pruning/speculation counters — is identical
    to ``jobs=1`` (pruning and all cost-model decisions run parent-side,
    before and after sharding).  Worker crashes requeue the lost
    candidates once, then degrade to in-process evaluation; the
    accounting lands on :attr:`SearchResult.parallel`.
    ``candidate_timeout`` bounds each candidate's scoring wall-clock in
    *both* modes: an overrunning candidate scores ``-inf`` and is
    counted on :attr:`SearchResult.timeouts`.

    **Model-guided paths.**  With ``config.prune`` each surviving base's
    exact mapped dependence set and folded loop headers feed
    :func:`repro.optimize.prune.prune_step`, which discards provably
    illegal extensions before any legality work; pruning is sound-only,
    so the winner (and ``legal_count``) match brute search exactly.
    With ``config.speculate`` candidates are admitted to the beam on the
    cheap dep-only verdict when the cost model favors them; unfavored
    candidates pay the exact verdict up-front, exactly as brute search
    would.  The exact FM/bounds check is deferred until a candidate
    reaches the beam frontier: expanding a base whose bounds fold fails
    evicts it, and the final winner is re-verified with the exact test
    in rank order — misspeculations are evicted
    (:attr:`SearchResult.evicted`) until an exactly-legal winner
    remains, so the returned winner is always exactly legal.  For
    scoring functions that give every exactly-legal candidate a finite
    score and illegal ones ``-inf`` (all the built-ins, by
    construction), speculative fillers rank strictly below legal
    candidates and only occupy otherwise-free beam slots, so the winner
    and score are differentially identical to brute search.  Both paths
    silently disable themselves when a substituted cache lacks the
    dep-only tier (``dep_legality``/``prefix_loops``).

    Legality tests run through a :class:`LegalityCache` (a fresh one per
    call unless ``config.cache`` is supplied), so the shared prefixes
    the beam generates are each mapped and bounds-checked once; before
    each level's expansion the surviving beam's prefixes are re-seeded
    into the cache, so shared prefixes hit even under a bounded cache's
    eviction.  Pass any object with a compatible
    ``legality(transformation, nest, deps)`` method to substitute a
    different policy (parallel mode additionally needs the delta
    protocol and falls back to serial without it).  A long-lived caller
    can likewise pass ``config.pool`` — a
    :class:`~repro.parallel.pool.ShardedPool` to reuse across calls; it
    is rebound to this call's workload instead of forking a fresh pool
    per request (the transformation service does exactly this).  The
    cache's hit/miss counters come back on
    :attr:`SearchResult.cache_stats`; under ``repro.obs`` the search
    additionally records spans (``search``, ``search.level``,
    ``search.candidate``, and ``search.shard``/``search.merge`` when
    parallel) and metrics (explored/legal/pruned/speculated/evicted
    counters, beam gauges, a score histogram, legality-cache gauges,
    parallel timeout/crash/requeue/fallback counters).
    """
    from repro.parallel.worker import call_with_timeout

    score = config.score
    depth, beam = config.depth, config.beam
    cache = config.cache
    candidate_timeout = config.candidate_timeout
    pool = config.pool
    n = nest.depth
    menu = list(candidates) if candidates is not None else default_candidates(n)
    if cache is None:
        cache = LegalityCache()
    prune = bool(config.prune)
    speculate = bool(config.speculate)
    if (prune or speculate) and not (hasattr(cache, "dep_legality")
                                     and hasattr(cache, "prefix_loops")):
        prune = speculate = False
    model = config.model
    if speculate and model is None:
        from repro.optimize.model import CostModel
        model = CostModel()
    if pool is not None:
        pool.rebind(nest, deps, score, menu=menu, speculate=speculate)
        effective_jobs = pool.jobs
    else:
        effective_jobs = int(config.jobs) if config.jobs else 1
        if effective_jobs > 1:
            from repro.parallel.pool import ShardedPool
            pool = ShardedPool(nest, deps, score, effective_jobs,
                               candidate_timeout=candidate_timeout,
                               menu=menu, speculate=speculate)
    identity = Transformation.identity(n)
    observing = _obs.enabled()
    timeouts = 0
    pruned = 0
    prune_reasons: Dict[str, int] = {}
    speculated = 0
    evicted = 0
    start_stats = getattr(cache, "stats", None)
    start_misses = (start_stats.get("misses", 0)
                    if isinstance(start_stats, dict) else 0)
    with _obs.span("search", nest_depth=n, depth=depth, beam=beam,
                   menu=len(menu), jobs=effective_jobs,
                   prune=prune, speculate=speculate):
        value, timed_out = call_with_timeout(
            lambda: score(identity, nest, deps), candidate_timeout)
        if timed_out:
            timeouts += 1
        seed = float("-inf") if timed_out else coerce_score(value)
        frontier: List[Tuple[float, Transformation]] = [(seed, identity)]
        best_score, best = frontier[0]
        explored = 1
        legal_count = 1
        # Every admitted candidate ranked exactly as the brute update
        # rule would (score desc, shorter first, earlier first), for the
        # speculative winner re-verification pass.
        admitted: List[Tuple[float, int, int, Transformation]] = [
            (seed, 0, 0, identity)]
        admit_order = 1
        evicted_ids: set = set()
        if observing:
            metrics = get_metrics()
            score_hist = metrics.histogram("search.score")
            metrics.gauge("search.depth").set(depth)
            metrics.gauge("search.beam_width").set(len(frontier))
        for _level in range(depth):
            nxt: List[Tuple[float, Transformation]] = []
            with _obs.span("search.level", level=_level,
                           frontier=len(frontier)):
                # Expand the surviving beam.  Each base with steps is
                # re-seeded into the shared cache first (so the shared
                # prefixes of this level's candidates hit even after
                # bounded-cache eviction); in guided modes its exact
                # mapped dependence set and folded loop headers feed the
                # pruning rules, and in speculative mode a base whose
                # bounds fold fails has reached the frontier as a
                # misspeculation: it is evicted here, since every
                # extension of a bounds-illegal prefix is illegal too.
                level_candidates: List[Transformation] = []
                for _, base in frontier:
                    base_deps = deps
                    base_loops = nest.loops
                    if base.steps:
                        report = (cache.dep_legality(base, nest, deps)
                                  if speculate
                                  else cache.legality(base, nest, deps))
                        if prune or speculate:
                            base_deps = getattr(report, "final_deps", None)
                            base_loops = cache.prefix_loops(base, nest)
                            if speculate and base_loops is None:
                                evicted += 1
                                evicted_ids.add(id(base))
                                continue
                    for step in menu:
                        if step.n != base.output_depth:
                            continue
                        explored += 1
                        if prune:
                            reason = prune_step(step, base_deps, base_loops)
                            if reason is not None:
                                pruned += 1
                                prune_reasons[reason] = \
                                    prune_reasons.get(reason, 0) + 1
                                continue
                        level_candidates.append(
                            base.then(step, reduce=False))
                outcomes = (pool.evaluate_level(_level, level_candidates,
                                                cache)
                            if pool is not None else {})
                merge_span = (_obs.span("search.merge", level=_level,
                                        worker_results=len(outcomes))
                              if pool is not None else nullcontext())
                with merge_span:
                    for idx, candidate in enumerate(level_candidates):
                        outcome = outcomes.get(idx)
                        if outcome is None:
                            # Serial mode — or a candidate no worker
                            # finished (degraded pool / crashed worker):
                            # evaluate in-process.
                            if pool is not None:
                                pool.stats["parent_evals"] = (
                                    int(pool.stats["parent_evals"]) + 1)
                            with _obs.span("search.candidate") as sp:
                                report = (cache.dep_legality(candidate,
                                                             nest, deps)
                                          if speculate
                                          else cache.legality(candidate,
                                                              nest, deps))
                                if not report.legal:
                                    sp.tag(legal=False)
                                    continue
                                value, timed_out = call_with_timeout(
                                    lambda: score(candidate, nest, deps),
                                    candidate_timeout)
                                if timed_out:
                                    timeouts += 1
                                s = (float("-inf") if timed_out
                                     else coerce_score(value))
                                sp.tag(legal=True, score=s)
                        else:
                            report = cache.merge_delta(nest, deps,
                                                       outcome.delta)
                            if report is None or not report.legal:
                                continue
                            if outcome.timed_out:
                                timeouts += 1
                                s = float("-inf")
                            else:
                                s = coerce_score(outcome.value)
                        if speculate:
                            # Parent-side admission control, in serial
                            # candidate order in both modes: favored
                            # candidates ride the dep-only verdict;
                            # unfavored ones pay the exact verdict now,
                            # exactly as brute search would.
                            step = candidate.steps[-1]
                            if model.favored(step, candidate, report):
                                speculated += 1
                            else:
                                exact = cache.legality(candidate, nest,
                                                       deps)
                                model.observe(step, exact.legal)
                                if not exact.legal:
                                    continue
                        legal_count += 1
                        if observing and s != float("-inf"):
                            score_hist.observe(s)
                        nxt.append((s, candidate))
                        if speculate:
                            admitted.append((s, len(candidate),
                                             admit_order, candidate))
                            admit_order += 1
                        elif s > best_score or (s == best_score and
                                                len(candidate) < len(best)):
                            best_score, best = s, candidate
            nxt.sort(key=lambda p: -p[0])
            frontier = nxt[:beam]
            if observing:
                metrics.gauge("search.beam_width").set(len(frontier))
            if not frontier:
                break
        if speculate:
            # The winner must be exactly legal: walk the admitted
            # candidates in brute rank order, paying one exact verdict
            # per rank until one survives.  The identity (rank ties
            # broken toward shorter-then-earlier put it ahead of any
            # equal-scoring candidate) is always legal, so this
            # terminates.  Candidates already evicted at the frontier
            # are skipped without re-counting.
            admitted.sort(key=lambda t: (-t[0], t[1], t[2]))
            for s, _length, _order, candidate in admitted:
                if id(candidate) in evicted_ids:
                    continue
                if not candidate.steps:
                    best_score, best = s, candidate
                    break
                with _obs.span("search.verify") as sp:
                    exact = cache.legality(candidate, nest, deps)
                    sp.tag(legal=exact.legal)
                model.observe(candidate.steps[-1], exact.legal)
                if exact.legal:
                    best_score, best = s, candidate
                    break
                evicted += 1
        stats = getattr(cache, "stats", None)
        exact_verdicts = (stats.get("misses", 0) - start_misses
                          if isinstance(stats, dict) else 0)
        if observing:
            metrics.counter("search.calls").inc()
            metrics.counter("search.explored").inc(explored)
            metrics.counter("search.legal").inc(legal_count)
            if timeouts:
                metrics.counter("search.timeouts").inc(timeouts)
            if pruned:
                metrics.counter("search.pruned").inc(pruned)
            if speculated:
                metrics.counter("search.speculated").inc(speculated)
            if evicted:
                metrics.counter("search.evicted").inc(evicted)
            if stats is not None:
                for key in ("hits", "misses", "dep_map_evals",
                            "bounds_step_evals"):
                    metrics.gauge(f"legality_cache.{key}").set(stats[key])
    return SearchResult(best, best_score, explored, legal_count,
                        cache_stats=dict(stats) if stats is not None else None,
                        timeouts=timeouts,
                        parallel=pool.snapshot() if pool is not None else None,
                        pruned=pruned, prune_reasons=prune_reasons,
                        speculated=speculated, evicted=evicted,
                        exact_verdicts=exact_verdicts)
