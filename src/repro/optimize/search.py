"""Transformation search with undo — Section 5's headline advantage.

Because a :class:`~repro.core.sequence.Transformation` is a value
independent of any loop nest, an optimizer can enumerate arbitrarily
many candidate sequences, test each for legality and score the good
ones, all without touching the nest; code is generated once, for the
winner.  This module provides a small beam search over a candidate menu
plus two ready-made scoring functions (static parallelism, simulated
cache locality).
"""

from __future__ import annotations

import itertools
import math
import warnings
from contextlib import nullcontext
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.simulator import CacheConfig, Layout, simulate_trace
from repro.core.legality_cache import LegalityCache
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.core.templates.block import Block
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.deps.vector import DepSet
from repro.ir.loopnest import LoopNest, PARDO
from repro.runtime.compiled import run_compiled
from repro.util.errors import ReproError

Score = Callable[[Transformation, LoopNest, DepSet], float]


def coerce_score(s: float) -> float:
    """Normalize a user scoring function's return value at the search
    boundary: ``NaN`` becomes ``-inf``.

    ``NaN`` would otherwise poison the beam silently — ``s > best_score``
    is always false for it, and ``list.sort`` over a key containing NaN
    leaves the frontier in an undefined order — so "unscorable" is
    canonicalized to the same value failed candidates use.
    """
    s = float(s)
    return float("-inf") if math.isnan(s) else s


def default_candidates(n: int, tile_size: int = 16) -> List[Template]:
    """A menu of single-step candidates for nests of size *n*: all
    adjacent interchanges, single-loop reversals, single-loop
    parallelizations, and full-range tiling."""
    menu: List[Template] = []
    for a in range(1, n):
        perm = list(range(1, n + 1))
        perm[a - 1], perm[a] = perm[a], perm[a - 1]
        menu.append(ReversePermute(n, [False] * n, perm))
    for k in range(1, n + 1):
        rev = [False] * n
        rev[k - 1] = True
        menu.append(ReversePermute(n, rev, list(range(1, n + 1))))
        flags = [False] * n
        flags[k - 1] = True
        menu.append(Parallelize(n, flags))
    if n >= 2:
        menu.append(Block(n, 1, n, [tile_size] * n))
    return menu


def parallelism_score(transformation: Transformation, nest: LoopNest,
                      deps: DepSet) -> float:
    """Static score: pardo loops weighted by how far out they sit."""
    try:
        loops = transformation.loop_trace(nest)[-1]
    except Exception:
        return float("-inf")
    total = 0.0
    depth = len(loops)
    for position, lp in enumerate(loops):
        if lp.kind == PARDO:
            total += depth - position
    return total


def make_locality_score(arrays, symbols, layout: Layout,
                        config: Optional[CacheConfig] = None,
                        trace_source: Optional[LoopNest] = None) -> Score:
    """A scoring function that *runs* the transformed nest through the
    compiled execution engine and cache simulator; higher is better
    (negated misses).  The compiled engine emits the same address trace
    as the interpreter oracle (enforced by the differential tests), so
    scores are unchanged — only faster."""

    def score(transformation: Transformation, nest: LoopNest,
              deps: DepSet) -> float:
        try:
            out = transformation.apply(nest, deps)
            result = run_compiled(out, arrays, symbols=symbols,
                                  trace_addresses=True)
            stats = simulate_trace(result.address_trace, layout, config)
            return -float(stats.misses)
        except ReproError:
            # Domain rejections only: illegal/unmappable candidates and
            # runtime guards (iteration bound, zero step, codegen) score
            # -inf.  Genuine programming errors — a typo'd symbol dict
            # (NameError), a malformed layout (KeyError), a non-numeric
            # array (TypeError) — propagate instead of masquerading as
            # bad candidates.
            return float("-inf")

    return score


def make_time_score(arrays, symbols, engine: str = "vectorized",
                    funcs=None, repeats: int = 1,
                    max_iterations: int = 10_000_000) -> Score:
    """A scoring function that *times* the transformed nest under the
    named execution engine; higher is better (negated best-of-*repeats*
    wall clock in seconds).

    Unlike :func:`make_locality_score` this measures real time, so it
    can see effects the cache simulator cannot — kernel launch counts
    under the vectorized engine, thread-pool pardo chunking — at the
    cost of being machine-dependent.  *engine* is any
    :data:`repro.runtime.ENGINE_NAMES` entry; resolution failures
    (unknown name, NumPy missing for ``"vectorized"``) raise
    immediately rather than per candidate.
    """
    import time as _time

    from repro.runtime import resolve_engine

    engine_cls = resolve_engine(engine)
    repeats = max(1, int(repeats))

    def score(transformation: Transformation, nest: LoopNest,
              deps: DepSet) -> float:
        try:
            out = transformation.apply(nest, deps)
            runner = engine_cls(out, symbols=symbols, funcs=funcs,
                                max_iterations=max_iterations)
            best = float("inf")
            for _ in range(repeats):
                start = _time.perf_counter()
                runner.run(arrays)
                best = min(best, _time.perf_counter() - start)
            return -best
        except ReproError:
            # Same contract as make_locality_score: domain rejections
            # score -inf, programming errors propagate.
            return float("-inf")

    return score


class SearchResult:
    __slots__ = ("transformation", "score", "explored", "legal_count",
                 "cache_stats", "timeouts", "parallel")

    def __init__(self, transformation: Optional[Transformation],
                 score: float, explored: int, legal_count: int,
                 cache_stats: Optional[Dict[str, int]] = None,
                 timeouts: int = 0,
                 parallel: Optional[Dict[str, object]] = None):
        self.transformation = transformation
        self.score = score
        self.explored = explored
        self.legal_count = legal_count
        #: The legality cache's hit/miss/eval counters at the end of the
        #: search (``LegalityCache.stats``), so beam-search efficiency is
        #: visible to callers; None when the supplied cache has no stats.
        self.cache_stats = cache_stats
        #: Candidates whose scoring overran ``candidate_timeout`` (they
        #: scored ``-inf`` but still count toward ``explored``).
        self.timeouts = timeouts
        #: ``ShardedPool.snapshot()`` when the search ran with
        #: ``jobs > 1`` (worker/crash/requeue/fallback accounting);
        #: ``None`` for a serial search.
        self.parallel = parallel

    def __repr__(self):
        sig = self.transformation.signature() if self.transformation else None
        return (f"SearchResult({sig}, score={self.score}, "
                f"explored={self.explored}, legal={self.legal_count}, "
                f"cache_stats={self.cache_stats})")


#: Old positional order of the tuning parameters, for the deprecation
#: shim in :func:`search`.
_SEARCH_TUNING = ("score", "depth", "beam", "cache", "jobs",
                  "candidate_timeout")


def search(nest: LoopNest, deps: DepSet,
           candidates: Optional[Sequence[Template]] = None,
           *args, **kwargs) -> SearchResult:
    """Beam search over candidate transformation sequences.

    See :func:`_search` for the full contract.  The tuning parameters —
    ``score``, ``depth``, ``beam``, ``cache``, ``jobs``,
    ``candidate_timeout`` (and ``pool``) — are keyword-only; passing
    them positionally still works for one release via this shim, which
    maps them to their historical order and emits a
    ``DeprecationWarning``.
    """
    if args:
        if len(args) > len(_SEARCH_TUNING):
            raise TypeError(
                f"search() takes at most {3 + len(_SEARCH_TUNING)} "
                f"positional arguments ({3 + len(args)} given)")
        names = _SEARCH_TUNING[:len(args)]
        warnings.warn(
            "positional tuning arguments to search() are deprecated; "
            "pass " + "/".join(names) + " by keyword",
            DeprecationWarning, stacklevel=2)
        for name, value in zip(names, args):
            if name in kwargs:
                raise TypeError(
                    f"search() got multiple values for argument {name!r}")
            kwargs[name] = value
    return _search(nest, deps, candidates, **kwargs)


def _search(nest: LoopNest, deps: DepSet,
            candidates: Optional[Sequence[Template]] = None, *,
            score: Score = parallelism_score,
            depth: int = 2, beam: int = 8,
            cache: Optional[LegalityCache] = None,
            jobs: int = 1,
            candidate_timeout: Optional[float] = None,
            pool: Optional["object"] = None) -> SearchResult:
    """Beam search over sequences of up to *depth* menu steps.

    Every candidate sequence is legality-tested and scored against the
    *unmodified* nest; ties keep the shorter sequence.  The identity
    transformation seeds the beam, so "do nothing" wins when nothing
    scores better.  A scoring function returning ``NaN`` is treated as
    "unscorable": the value is coerced to ``-inf`` at the boundary
    (:func:`coerce_score`) so it can neither win nor scramble the beam
    ordering.

    With ``jobs > 1`` each level's candidate evaluations are sharded
    across forked worker processes (:mod:`repro.parallel`); the workers'
    legality-cache deltas are merged back in serial candidate order, so
    the result — winner, score, ``explored``, ``legal_count`` and
    ``cache_stats`` — is identical to ``jobs=1``.  Worker crashes
    requeue the lost candidates once, then degrade to in-process
    evaluation; the accounting lands on :attr:`SearchResult.parallel`.
    ``candidate_timeout`` bounds each candidate's scoring wall-clock in
    *both* modes: an overrunning candidate scores ``-inf`` and is
    counted on :attr:`SearchResult.timeouts`.

    Legality tests run through a :class:`LegalityCache` (a fresh one per
    call unless *cache* is supplied), so the shared prefixes the beam
    generates are each mapped and bounds-checked once.  Pass any object
    with a compatible ``legality(transformation, nest, deps)`` method to
    substitute a different policy (parallel mode additionally needs the
    delta protocol and falls back to serial without it).  A long-lived
    caller can likewise pass *pool* — a
    :class:`~repro.parallel.pool.ShardedPool` to reuse across calls;
    it is rebound to this call's workload instead of forking a fresh
    pool per request (the transformation service does exactly this).
    The cache's
    hit/miss counters come back on :attr:`SearchResult.cache_stats`;
    under ``repro.obs`` the search additionally records spans
    (``search``, ``search.level``, ``search.candidate``, and
    ``search.shard``/``search.merge`` when parallel) and metrics
    (explored/legal counters, beam gauges, a score histogram,
    legality-cache gauges, parallel timeout/crash/requeue/fallback
    counters).
    """
    from repro.parallel.worker import call_with_timeout

    n = nest.depth
    menu = list(candidates) if candidates is not None else default_candidates(n)
    if cache is None:
        cache = LegalityCache()
    if pool is not None:
        pool.rebind(nest, deps, score, menu=menu)
        effective_jobs = pool.jobs
    else:
        effective_jobs = int(jobs) if jobs else 1
        if effective_jobs > 1:
            from repro.parallel.pool import ShardedPool
            pool = ShardedPool(nest, deps, score, effective_jobs,
                               candidate_timeout=candidate_timeout,
                               menu=menu)
    identity = Transformation.identity(n)
    observing = _obs.enabled()
    timeouts = 0
    with _obs.span("search", nest_depth=n, depth=depth, beam=beam,
                   menu=len(menu), jobs=effective_jobs):
        value, timed_out = call_with_timeout(
            lambda: score(identity, nest, deps), candidate_timeout)
        if timed_out:
            timeouts += 1
        seed = float("-inf") if timed_out else coerce_score(value)
        frontier: List[Tuple[float, Transformation]] = [(seed, identity)]
        best_score, best = frontier[0]
        explored = 1
        legal_count = 1
        if observing:
            metrics = get_metrics()
            score_hist = metrics.histogram("search.score")
            metrics.gauge("search.depth").set(depth)
            metrics.gauge("search.beam_width").set(len(frontier))
        for _level in range(depth):
            nxt: List[Tuple[float, Transformation]] = []
            with _obs.span("search.level", level=_level,
                           frontier=len(frontier)):
                level_candidates: List[Transformation] = []
                for _, base in frontier:
                    for step in menu:
                        if step.n != base.output_depth:
                            continue
                        level_candidates.append(
                            base.then(step, reduce=False))
                explored += len(level_candidates)
                outcomes = (pool.evaluate_level(_level, level_candidates,
                                                cache)
                            if pool is not None else {})
                merge_span = (_obs.span("search.merge", level=_level,
                                        worker_results=len(outcomes))
                              if pool is not None else nullcontext())
                with merge_span:
                    for idx, candidate in enumerate(level_candidates):
                        outcome = outcomes.get(idx)
                        if outcome is None:
                            # Serial mode — or a candidate no worker
                            # finished (degraded pool / crashed worker):
                            # evaluate in-process.
                            if pool is not None:
                                pool.stats["parent_evals"] = (
                                    int(pool.stats["parent_evals"]) + 1)
                            with _obs.span("search.candidate") as sp:
                                report = cache.legality(candidate, nest,
                                                        deps)
                                if not report.legal:
                                    sp.tag(legal=False)
                                    continue
                                legal_count += 1
                                value, timed_out = call_with_timeout(
                                    lambda: score(candidate, nest, deps),
                                    candidate_timeout)
                                if timed_out:
                                    timeouts += 1
                                s = (float("-inf") if timed_out
                                     else coerce_score(value))
                                sp.tag(legal=True, score=s)
                        else:
                            report = cache.merge_delta(nest, deps,
                                                       outcome.delta)
                            if report is None or not report.legal:
                                continue
                            legal_count += 1
                            if outcome.timed_out:
                                timeouts += 1
                                s = float("-inf")
                            else:
                                s = coerce_score(outcome.value)
                        if observing and s != float("-inf"):
                            score_hist.observe(s)
                        nxt.append((s, candidate))
                        if s > best_score or (s == best_score and
                                              len(candidate) < len(best)):
                            best_score, best = s, candidate
            nxt.sort(key=lambda p: -p[0])
            frontier = nxt[:beam]
            if observing:
                metrics.gauge("search.beam_width").set(len(frontier))
            if not frontier:
                break
        stats = getattr(cache, "stats", None)
        if observing:
            metrics.counter("search.calls").inc()
            metrics.counter("search.explored").inc(explored)
            metrics.counter("search.legal").inc(legal_count)
            if timeouts:
                metrics.counter("search.timeouts").inc(timeouts)
            if stats is not None:
                for key in ("hits", "misses", "dep_map_evals",
                            "bounds_step_evals"):
                    metrics.gauge(f"legality_cache.{key}").set(stats[key])
    return SearchResult(best, best_score, explored, legal_count,
                        cache_stats=dict(stats) if stats is not None else None,
                        timeouts=timeouts,
                        parallel=pool.snapshot() if pool is not None else None)
