"""Lamport's hyperplane method on top of the framework.

The paper cites Lamport [9] as the origin of dependence-vector-based
iteration reordering; here the hyperplane method is *derived* inside the
framework: find a schedule vector ``pi`` with ``pi . d >= 1`` for every
dependence vector ``d``, complete it to a unimodular matrix ``M`` whose
first row is ``pi``, and emit the sequence

    < Unimodular(n, M), Parallelize(n, [F, T, T, ...]) >

— after ``M``, every dependence is carried by the outermost loop, so all
inner loops are parallel, and the framework's uniform legality test
confirms it (no bespoke proof needed).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.sequence import Transformation
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.unimodular import Unimodular
from repro.deps.entry import DepEntry
from repro.deps.vector import DepSet
from repro.util.errors import ReproError
from repro.util.intmath import extended_gcd, gcd_many
from repro.util.matrices import IntMatrix


def schedule_dot(pi: Sequence[int], vec) -> DepEntry:
    """``pi . d`` with interval arithmetic over the entries."""
    acc = DepEntry.distance(0)
    for c, e in zip(pi, vec):
        if c != 0:
            acc = acc.add(e.scale(c))
    return acc


def find_schedule(deps: DepSet, max_coeff: int = 3) -> Optional[List[int]]:
    """Smallest schedule vector (by max-coefficient, then L1 norm) with
    ``pi . d`` definitely positive for every dependence vector.

    Coefficients are searched in ``[0, max_coeff]`` — nonnegative
    schedules suffice for lexicographically positive dependence sets.
    Returns None when no schedule exists within the budget.
    """
    n = deps.depth
    if n == 0:
        return None
    best: Optional[List[int]] = None

    def cost(pi):
        return (max(pi), sum(pi))

    for pi in itertools.product(range(max_coeff + 1), repeat=n):
        if all(c == 0 for c in pi):
            continue
        if all(schedule_dot(pi, v).definitely_positive() for v in deps):
            cand = list(pi)
            if best is None or cost(cand) < cost(best):
                best = cand
    return best


def complete_to_unimodular(pi: Sequence[int]) -> IntMatrix:
    """A unimodular matrix whose first row is *pi* (requires gcd 1).

    Construction: reduce *pi* to ``e_1`` by elementary unimodular column
    operations (pairwise extended gcd); the inverse of the accumulated
    column-operation matrix has *pi* as its first row.
    """
    pi = [int(c) for c in pi]
    n = len(pi)
    if gcd_many(pi) != 1:
        raise ReproError(
            f"schedule {pi} has gcd {gcd_many(pi)} != 1; cannot complete "
            "to a unimodular matrix")
    # V accumulates column operations such that pi @ V == e_1.
    v = [[1 if r == c else 0 for c in range(n)] for r in range(n)]
    current = list(pi)
    for j in range(1, n):
        a, b = current[0], current[j]
        if b == 0:
            continue
        g, x, y = extended_gcd(a, b)
        # New col0 = x*col0 + y*colj ; new colj = -(b/g)*col0 + (a/g)*colj.
        for r in range(n):
            c0, cj = v[r][0], v[r][j]
            v[r][0] = x * c0 + y * cj
            v[r][j] = -(b // g) * c0 + (a // g) * cj
        current[0], current[j] = g, 0
    if current[0] == -1:
        for r in range(n):
            v[r][0] = -v[r][0]
        current[0] = 1
    assert current[0] == 1 and all(c == 0 for c in current[1:])
    vm = IntMatrix(v)
    m = vm.inverse_unimodular()
    assert list(m.row(0)) == list(pi)
    return m


class HyperplaneResult:
    """Outcome of :func:`hyperplane_method`."""

    __slots__ = ("schedule", "matrix", "transformation")

    def __init__(self, schedule: List[int], matrix: IntMatrix,
                 transformation: Transformation):
        self.schedule = schedule
        self.matrix = matrix
        self.transformation = transformation

    def __repr__(self):
        return (f"HyperplaneResult(schedule={self.schedule}, "
                f"T={self.transformation.signature()})")


def hyperplane_method(deps: DepSet, n: Optional[int] = None,
                      max_coeff: int = 3,
                      names: Optional[Sequence[str]] = None
                      ) -> Optional[HyperplaneResult]:
    """Find a wavefront transformation making loops 2..n parallel.

    Returns None when no schedule exists within the coefficient budget
    (e.g. the dependence set admits no strictly positive schedule).
    """
    depth = deps.depth if not deps.is_empty() else n
    if depth is None:
        raise ValueError("need the nest size for an empty dependence set")
    if deps.is_empty():
        pi: Optional[List[int]] = [1] + [0] * (depth - 1)
    else:
        pi = find_schedule(deps, max_coeff=max_coeff)
    if pi is None:
        return None
    matrix = complete_to_unimodular(pi)
    flags = [False] + [True] * (depth - 1)
    transformation = Transformation.of(
        Unimodular(depth, matrix, names=names),
        Parallelize(depth, flags))
    return HyperplaneResult(pi, matrix, transformation)
