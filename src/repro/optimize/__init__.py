"""Optimization drivers: hyperplane, parallelization, tiling, search."""

from repro.optimize.hyperplane import (
    HyperplaneResult,
    complete_to_unimodular,
    find_schedule,
    hyperplane_method,
    schedule_dot,
)
from repro.optimize.parallelizer import (
    maximal_parallelize,
    outermost_parallel,
    parallelizable_loops,
)
from repro.optimize.search import (
    SearchResult,
    default_candidates,
    make_locality_score,
    parallelism_score,
    search,
)
from repro.optimize.locality_model import (
    best_loop_order,
    loop_cost,
    rank_loop_orders,
    reference_cost,
)
from repro.optimize.tiler import auto_tile, tilable_ranges
from repro.optimize.vectorizer import (
    VectorizationResult,
    cheapest_permutation,
    vectorize_innermost,
)

__all__ = [
    "VectorizationResult", "cheapest_permutation", "vectorize_innermost",
    "best_loop_order", "loop_cost", "rank_loop_orders", "reference_cost",
    "HyperplaneResult", "complete_to_unimodular", "find_schedule",
    "hyperplane_method", "schedule_dot",
    "maximal_parallelize", "outermost_parallel", "parallelizable_loops",
    "SearchResult", "default_candidates", "make_locality_score",
    "parallelism_score", "search",
    "auto_tile", "tilable_ranges",
]
