"""Cost model for model-guided beam search.

The model answers one question per candidate: is this step likely
enough to be exactly legal that the beam should admit it on the cheap
dependence half alone (speculative admission), deferring the exact
FM/bounds verdict until the candidate reaches the beam frontier?

It is fed by the evidence the ``repro.obs`` layer already collects —
dependence-test tier refutation counters (``deps.refuted.*``), legality
cache statistics, and the cache simulator's hit-ratio gauge — plus an
online per-template-kind legality rate it calibrates from every exact
verdict the search pays.  Two named models are exposed:

* ``static`` — structural priors only (no metrics snapshot taken);
* ``evidence`` — additionally snapshots the live metrics registry at
  construction (a no-op when observability is off).

Both are deterministic: same evidence + same observation sequence gives
the same favored/unfavored decisions, which is what keeps ``jobs=N``
model-guided search field-identical to ``jobs=1`` (all model queries
and updates happen parent-side, in serial candidate order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics

#: Model names accepted by the CLI ``--model`` flag and the service's
#: ``params.model`` — mirror of the engine-name registry pattern.
MODEL_NAMES = ("evidence", "static")

_REFUTATION_TIERS = ("gcd", "banerjee", "fm")


class Evidence:
    """A point-in-time snapshot of the observability signals the cost
    model conditions on.  All fields tolerate absence (empty dicts /
    None): evidence improves the priors, it is never required."""

    __slots__ = ("refuted", "legality", "cachesim_hit_ratio")

    def __init__(self, refuted: Optional[Dict[str, int]] = None,
                 legality: Optional[Dict[str, int]] = None,
                 cachesim_hit_ratio: Optional[float] = None):
        self.refuted = dict(refuted or {})
        self.legality = dict(legality or {})
        self.cachesim_hit_ratio = cachesim_hit_ratio

    @classmethod
    def collect(cls, cache=None) -> "Evidence":
        """Snapshot the live metrics registry (only when observability
        is enabled — the gate every instrumented site honors) and,
        optionally, a legality cache's counters."""
        refuted: Dict[str, int] = {}
        hit_ratio: Optional[float] = None
        if _obs.enabled():
            snap = get_metrics().snapshot()
            counters = snap.get("counters", {})
            for tier in _REFUTATION_TIERS:
                count = counters.get(f"deps.refuted.{tier}")
                if count:
                    refuted[tier] = count
            hit_ratio = snap.get("gauges", {}).get("cachesim.hit_ratio")
        legality = {}
        if cache is not None and hasattr(cache, "stats"):
            legality = dict(cache.stats)
        return cls(refuted, legality, hit_ratio)

    def snapshot(self) -> Dict[str, object]:
        return {
            "refuted": dict(self.refuted),
            "legality": dict(self.legality),
            "cachesim_hit_ratio": self.cachesim_hit_ratio,
        }


class CostModel:
    """Scores candidate steps before legality ever runs.

    ``favored(step, ...)`` gates speculative admission: a favored
    candidate enters the beam on its dep-only verdict; an unfavored one
    pays the exact verdict up-front, exactly as brute search would —
    so a maximally skeptical model degrades to brute behavior, never
    below it.  ``observe(step, legal)`` feeds every exact verdict back
    into a Laplace-smoothed per-template-kind legality rate, so a kind
    that keeps failing its bounds check eventually loses speculative
    admission and stops wasting beam slots.
    """

    #: Smoothing pseudo-counts: the prior starts at 8/9 ~ 0.89 (beam
    #: search menus are dominated by legal steps) and needs a sustained
    #: run of observed failures to drop below any sane threshold.
    _PRIOR_LEGAL = 8.0
    _PRIOR_TOTAL = 9.0

    def __init__(self, evidence: Optional[Evidence] = None,
                 threshold: float = 0.25, name: str = "static"):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {threshold!r}")
        self.evidence = evidence if evidence is not None else Evidence()
        self.threshold = threshold
        self.name = name
        # kind -> [exact-legal count, exact-verdict count]
        self._outcomes: Dict[str, List[int]] = {}
        self.queries = 0
        self.observations = 0

    @classmethod
    def from_evidence(cls, cache=None, threshold: float = 0.25) -> "CostModel":
        return cls(Evidence.collect(cache), threshold=threshold,
                   name="evidence")

    # -- scoring -----------------------------------------------------------

    def prior(self, kind: str) -> float:
        """Smoothed exact-legality rate observed for *kind* so far."""
        legal, total = self._outcomes.get(kind, (0, 0))
        return (legal + self._PRIOR_LEGAL) / (total + self._PRIOR_TOTAL)

    def score_step(self, step, base=None, report=None) -> float:
        """A [0, 1] score for appending *step*; higher means more likely
        to be exactly legal and worth a beam slot.  *report* is the
        candidate's dep-only legality report when available (its
        ``final_deps`` are already exact) — unused by the default
        structural terms but part of the stable signature."""
        kind = getattr(step, "kernel_name", type(step).__name__)
        score = self.prior(kind)
        if kind == "Parallelize":
            # Deeper dep-test tiers having refuted dependences means the
            # analyzed sets are sparser than syntax suggests: outer
            # parallelization is likelier to survive.
            refuted = self.evidence.refuted
            if refuted.get("banerjee") or refuted.get("fm"):
                score += 0.05
        elif kind in ("Block", "Interleave"):
            # A poor simulated cache hit ratio is the signal tiling is
            # worth speculating on at all.
            ratio = self.evidence.cachesim_hit_ratio
            if ratio is not None and ratio < 0.9:
                score += 0.05
        return min(1.0, score)

    def favored(self, step, base=None, report=None) -> bool:
        """Should *step* be admitted speculatively?  Pure with respect
        to model state — only :meth:`observe` mutates it."""
        self.queries += 1
        return self.score_step(step, base, report) >= self.threshold

    # -- online calibration ------------------------------------------------

    def observe(self, step, legal: bool) -> None:
        """Feed back one exact legality verdict for *step*'s kind."""
        kind = getattr(step, "kernel_name", type(step).__name__)
        counts = self._outcomes.setdefault(kind, [0, 0])
        if legal:
            counts[0] += 1
        counts[1] += 1
        self.observations += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "threshold": self.threshold,
            "queries": self.queries,
            "observations": self.observations,
            "outcomes": {k: tuple(v) for k, v in sorted(
                self._outcomes.items())},
            "evidence": self.evidence.snapshot(),
        }


def resolve_model(name: str, cache=None) -> CostModel:
    """A fresh :class:`CostModel` for a registered name, mirroring
    :func:`repro.runtime.engines.resolve_engine`.  *cache* (a
    :class:`~repro.core.legality_cache.LegalityCache`) feeds its
    counters into an ``evidence`` model's snapshot."""
    if name not in MODEL_NAMES:
        raise ValueError(
            f"unknown cost model {name!r} "
            f"(choose from {', '.join(MODEL_NAMES)})")
    if name == "evidence":
        return CostModel.from_evidence(cache)
    return CostModel()
