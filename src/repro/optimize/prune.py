"""Algebraic pruning rules for model-guided beam search.

Brute beam search pays a full legality test for nearly every candidate
it explores.  Most rejections are decidable far more cheaply from the
*base* sequence's already-known state — its exact mapped dependence set
and its folded loop headers — without running the candidate's own
dependence mapping or Fortran-Murtagh bounds fold at all:

* a ``Parallelize`` step is illegal exactly when some flagged loop can
  carry a dependence of the base set (its ``parmap`` turns that entry
  into ``*``, which admits a lex-negative tuple);
* a ``ReversePermute`` step's mapped set is a per-entry shuffle of the
  base set, so its lex-negative scan runs inline on the base entries;
* a ``Block``/``Interleave`` step whose anchor dims can't match any
  dependence-free dimension widens some entry to ``(*, *)`` behind a
  zero-capable prefix — lex-negative algebraically;
* any step whose bounds preconditions fail on the base's folded headers
  (a type-lattice check, no FM elimination) is bounds-illegal.

Every rule is *sound-only*: it discards a candidate only when the full
test provably rejects it, never one brute search would admit — that is
what keeps pruned search differentially identical to brute search.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.templates.block import Block
from repro.core.templates.interleave import Interleave
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.deps.rules import reverse
from repro.deps.vector import DepSet
from repro.ir.loopnest import Loop
from repro.util.errors import PreconditionViolation

#: Reason slugs prune_step can return, in rule order (documented so the
#: ``SearchResult.prune_reasons`` histogram is self-describing).
PRUNE_REASONS = ("parallel-carried", "permute-lex-negative",
                 "anchor-widening", "precondition-type")


def _parallel_carried(step: Parallelize, base_deps: DepSet) -> bool:
    """True when some flagged loop can carry a dependence of *base_deps*.

    ``parmap`` maps the carrying entry to ``*`` while every earlier
    entry stays zero-capable (0 maps to 0; a zero-capable mixed entry
    maps to ``*``), so the mapped vector admits a lex-negative tuple —
    exactly the full test's rejection.  Because Parallelize has no
    bounds preconditions, this rule plus the lex-negative scan *is* the
    complete legality decision for the step.
    """
    for k, flagged in enumerate(step.parflag, start=1):
        if flagged and any(v.could_be_carried_at(k) for v in base_deps):
            return True
    return False


def _permute_lex_negative(step: ReversePermute, base_deps: DepSet) -> bool:
    """Inline lex-negative scan of the permuted/reversed base entries
    (the mapped set, without allocating it)."""
    n = step.n
    for vec in base_deps:
        mapped = [None] * n
        for k in range(n):
            entry = vec[k]
            mapped[step.perm[k] - 1] = reverse(entry) if step.rev[k] else entry
        for i, e in enumerate(mapped):
            if e.can_be_negative() and \
                    all(prev.can_be_zero() for prev in mapped[:i]):
                return True
    return False


def _anchor_widening(step, base_deps: DepSet,
                     base_loops: Sequence[Loop]) -> bool:
    """True when the anchored Block/Interleave decomposition provably
    widens some dimension into a lex-negative position.

    The widened dimension's pair becomes ``(*, *)``; when every base
    entry before it is zero-capable, so is every mapped component
    before the widened pair (a zero distance decomposes to ``(0, 0)``),
    and the mapped set admits a lex-negative tuple.  Dimension-matching
    in the Acharya–Bondhugula sense: the anchor dims must line up with
    a dependence-free prefix, or the step is discarded algebraically.
    """
    ctx = step.dep_context(base_loops)
    if ctx is None:
        return False
    for vec in base_deps:
        for k, hs in ctx:
            if all(vec.entry(h).is_zero() for h in hs):
                continue  # anchor invariant for this vector: no widening
            if all(vec.entry(h).can_be_zero() for h in range(1, k)):
                return True
    return False


def prune_step(step, base_deps: Optional[DepSet],
               base_loops: Optional[Tuple[Loop, ...]]) -> Optional[str]:
    """Decide whether appending *step* to a base with exact mapped
    dependence set *base_deps* and folded loop headers *base_loops* is
    provably illegal without evaluating it.

    Returns the reason slug (see :data:`PRUNE_REASONS`) or None when the
    candidate must be evaluated.  *base_loops* is None when the base's
    bounds fold failed or is unknown — the loop-header rules are skipped
    then (soundness never depends on having them).
    """
    if base_deps is not None:
        if isinstance(step, Parallelize):
            if _parallel_carried(step, base_deps):
                return "parallel-carried"
        elif isinstance(step, ReversePermute):
            if _permute_lex_negative(step, base_deps):
                return "permute-lex-negative"
        elif isinstance(step, (Block, Interleave)) and base_loops is not None:
            if _anchor_widening(step, base_deps, base_loops):
                return "anchor-widening"
    if base_loops is not None:
        try:
            step.check_preconditions(base_loops)
        except PreconditionViolation:
            return "precondition-type"
    return None
