"""Vectorization driver: make the *innermost* loop parallel.

Vector execution was the paper's first motivation ("used extensively by
restructuring compilers for optimizing vector execution...").  A loop is
vectorizable when its iterations are independent — i.e. Parallelize of
the innermost loop passes the uniform legality test.  This driver
searches loop orders (cheap ReversePermute first, Unimodular when the
bounds require it) for one whose innermost loop is parallel, preferring
orders that also keep longer parallel suffixes (more inner loops to
vectorize/unroll).

Also exports :func:`cheapest_permutation`, the embodiment of
Section 4.2's guidance: "for cases in which ReversePermute and
Unimodular can achieve the same result, it is preferable to use
ReversePermute" — it tries the cheap template's preconditions first and
falls back to the permutation matrix.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.core.templates.parallelize import Parallelize
from repro.core.templates.reverse_permute import ReversePermute
from repro.core.templates.unimodular import Unimodular
from repro.deps.vector import DepSet
from repro.ir.loopnest import Loop, LoopNest
from repro.util.errors import PreconditionViolation
from repro.util.matrices import IntMatrix


def cheapest_permutation(loops: Sequence[Loop],
                         order: Sequence[int]) -> Template:
    """Loop permutation as ReversePermute when legal, else Unimodular.

    *order* lists 1-based input loop numbers outermost-first for the
    output.  Raises :class:`PreconditionViolation` when neither template
    accepts the bounds.
    """
    n = len(loops)
    if sorted(order) != list(range(1, n + 1)):
        raise ValueError(f"order must be a permutation of 1..{n}")
    perm = [0] * n
    for position, loop_number in enumerate(order, start=1):
        perm[loop_number - 1] = position
    rp = ReversePermute(n, [False] * n, perm)
    try:
        rp.check_preconditions(loops)
        return rp
    except PreconditionViolation:
        pass
    uni = Unimodular(n, IntMatrix.permutation([p - 1 for p in perm]))
    uni.check_preconditions(loops)  # may raise; caller decides
    return uni


class VectorizationResult:
    """Outcome of :func:`vectorize_innermost`."""

    __slots__ = ("transformation", "order", "parallel_suffix")

    def __init__(self, transformation: Transformation,
                 order: Tuple[int, ...], parallel_suffix: int):
        self.transformation = transformation
        self.order = order
        self.parallel_suffix = parallel_suffix

    def __repr__(self):
        return (f"VectorizationResult(order={self.order}, "
                f"suffix={self.parallel_suffix}, "
                f"T={self.transformation.signature()})")


def vectorize_innermost(nest: LoopNest,
                        deps: DepSet) -> Optional[VectorizationResult]:
    """Find a loop order whose innermost loop(s) are parallel.

    Prefers (a) the longest parallel suffix, (b) identity-closest
    orders, (c) the cheap ReversePermute template.  Returns None when no
    order yields a parallel innermost loop.
    """
    n = nest.depth
    best: Optional[Tuple[int, Tuple[int, ...], Transformation]] = None
    for order in itertools.permutations(range(1, n + 1)):
        try:
            permute = cheapest_permutation(nest.loops, order)
        except PreconditionViolation:
            continue
        base = Transformation.of(permute)
        mapped = base.map_dep_set(deps)
        if mapped.can_be_lex_negative():
            continue
        # Longest parallel suffix: flag innermost loops until illegal.
        flags = [False] * n
        suffix = 0
        for k in range(n, 0, -1):
            flags[k - 1] = True
            joint = Parallelize(n, flags).map_dep_set(mapped)
            if joint.can_be_lex_negative():
                flags[k - 1] = False
                break
            suffix += 1
        if suffix == 0:
            continue
        candidate = base.then(Parallelize(n, flags), reduce=False)
        if not candidate.legality(nest, deps).legal:
            continue
        key = (suffix, tuple(-abs(o - p - 1) for p, o in enumerate(order)))
        if best is None or suffix > best[0] or (
                suffix == best[0] and order < best[1]):
            best = (suffix, tuple(order), candidate)
    if best is None:
        return None
    return VectorizationResult(best[2], best[1], best[0])
