"""A static locality cost model for ranking loop orders.

The cache simulator measures a specific execution; optimizers want a
*static* estimate they can evaluate for every candidate order without
running anything.  This is the classic innermost-reuse model (in the
spirit of Carr & McKinley): for a candidate loop order, each array
reference costs, per innermost iteration,

* ``0``        when the innermost index does not appear in any subscript
               (loop-invariant reuse — register/cache resident);
* ``1/L``      when the innermost index appears with coefficient ±1 in
               the fastest-varying subscript only (unit stride; ``L`` =
               elements per cache line);
* ``1``        otherwise (large stride or indexed — a new line every
               iteration).

The per-iteration costs are summed over references; since every order
executes the same iteration count, ranking by per-iteration cost ranks
total misses.  :func:`best_loop_order` filters candidates through the
framework's legality test, so the returned permutation is always safe.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.sequence import Transformation
from repro.core.templates.reverse_permute import ReversePermute
from repro.deps.analysis.references import collect_accesses
from repro.deps.vector import DepSet
from repro.expr.linear import affine_form
from repro.expr.nodes import free_vars
from repro.ir.loopnest import LoopNest
from repro.util.errors import PreconditionViolation

#: Cost of a large-stride access, in line-misses per iteration.
STRIDE_MISS = 1.0


def reference_cost(subscripts, innermost: str, line_elements: int,
                   order: str = "row") -> float:
    """Per-innermost-iteration miss cost of one array reference."""
    if not subscripts:
        return 0.0
    used = [innermost in free_vars(s) for s in subscripts]
    if not any(used):
        return 0.0  # loop-invariant reuse
    fastest = len(subscripts) - 1 if order == "row" else 0
    others = [u for d, u in enumerate(used) if d != fastest]
    if any(others):
        return STRIDE_MISS  # innermost index strides a slow dimension
    form = affine_form(subscripts[fastest], (innermost,))
    if form is not None and abs(form.coefficient(innermost)) == 1:
        return 1.0 / line_elements  # unit stride
    return STRIDE_MISS


_NON_ARRAY_CALLS = {"le", "ge", "lt", "gt", "eq", "abs", "sgn"}


def _all_memory_names(nest: LoopNest) -> set:
    """Every callee in the body that plausibly touches memory: written
    arrays plus read-only arrays (and indexed lookups, which cost like
    arrays for this model's purposes)."""
    from repro.deps.analysis.references import inferred_array_names
    from repro.expr.nodes import Call, children
    from repro.ir.loopnest import Assign, If, InitStmt

    names = set(inferred_array_names(nest))

    def scan(e):
        if isinstance(e, Call) and e.func not in _NON_ARRAY_CALLS:
            names.add(e.func)
        for c in children(e):
            scan(c)

    def visit(stmt):
        if isinstance(stmt, Assign):
            scan(stmt.expr)
            for s in stmt.target.subscripts:
                scan(s)
        elif isinstance(stmt, If):
            scan(stmt.cond)
            visit(stmt.then)
        elif isinstance(stmt, InitStmt):
            scan(stmt.expr)

    for stmt in nest.body:
        visit(stmt)
    return names


def loop_cost(nest: LoopNest, innermost: str,
              line_elements: int = 8, order: str = "row") -> float:
    """Total per-iteration miss cost of *nest* with *innermost* as the
    innermost loop index (references deduplicated per array+subscripts)."""
    seen = set()
    total = 0.0
    for access in collect_accesses(nest, arrays=_all_memory_names(nest)):
        key = (access.array, access.subscripts)
        if key in seen:
            continue
        seen.add(key)
        total += reference_cost(access.subscripts, innermost,
                                line_elements, order)
    return total


def rank_loop_orders(nest: LoopNest, line_elements: int = 8,
                     order: str = "row"
                     ) -> List[Tuple[Tuple[int, ...], float]]:
    """All loop orders (1-based, outermost first) ranked by cost
    (cheapest first; ties keep identity-closest order)."""
    n = nest.depth
    results = []
    for perm_order in itertools.permutations(range(1, n + 1)):
        innermost = nest.loops[perm_order[-1] - 1].index
        cost = loop_cost(nest, innermost, line_elements, order)
        results.append((perm_order, cost))
    results.sort(key=lambda p: (p[1], p[0]))
    return results


def best_loop_order(nest: LoopNest, deps: DepSet,
                    line_elements: int = 8, order: str = "row"
                    ) -> Optional[Transformation]:
    """The cheapest *legal* loop order as a ReversePermute step.

    Returns None when even the identity order is somehow illegal (it
    never is for a valid input nest); returns the identity transformation
    when the original order is already best.
    """
    n = nest.depth
    for perm_order, _cost in rank_loop_orders(nest, line_elements, order):
        if perm_order == tuple(range(1, n + 1)):
            return Transformation.identity(n)
        perm = [0] * n
        for position, loop_number in enumerate(perm_order, start=1):
            perm[loop_number - 1] = position
        step = ReversePermute(n, [False] * n, perm)
        try:
            step.check_preconditions(nest.loops)
        except PreconditionViolation:
            continue
        candidate = Transformation.of(step)
        if candidate.legality(nest, deps).legal:
            return candidate
    return None
