"""Automatic tiling for data locality.

Finds the largest contiguous loop range whose Block preconditions hold
and whose tiling passes the uniform legality test, then instantiates
Block with the requested (or default) tile sizes.  The cache benchmarks
use this driver to show the locality win the paper motivates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.sequence import Transformation
from repro.core.templates.block import Block, SizeLike
from repro.deps.vector import DepSet
from repro.ir.loopnest import LoopNest
from repro.util.errors import PreconditionViolation


def tilable_ranges(nest: LoopNest, deps: DepSet,
                   probe_size: int = 2) -> List[Tuple[int, int]]:
    """All contiguous 1-based ranges ``(i, j)`` that Block accepts,
    widest first.  *probe_size* is the dummy block size used for the
    legality probe (legality does not depend on the size)."""
    n = nest.depth
    out: List[Tuple[int, int]] = []
    for width in range(n, 0, -1):
        for i in range(1, n - width + 2):
            j = i + width - 1
            block = Block(n, i, j, [probe_size] * width)
            try:
                block.check_preconditions(nest.loops)
            except PreconditionViolation:
                continue
            mapped = block.map_dep_set(deps)
            if mapped.can_be_lex_negative():
                continue
            out.append((i, j))
    return out


def auto_tile(nest: LoopNest, deps: DepSet,
              sizes: Union[int, Sequence[SizeLike]] = 16,
              prefer: Optional[Tuple[int, int]] = None
              ) -> Optional[Transformation]:
    """Tile the widest legal range (or *prefer*, when given and legal).

    *sizes* is either one size for every loop in the range or an explicit
    per-loop list matching the chosen range's width.  Returns None when
    no range can be tiled.
    """
    ranges = tilable_ranges(nest, deps)
    if not ranges:
        return None
    if prefer is not None:
        if prefer not in ranges:
            return None
        i, j = prefer
    else:
        i, j = ranges[0]
    width = j - i + 1
    if isinstance(sizes, int):
        bsize: Sequence[SizeLike] = [sizes] * width
    else:
        if len(sizes) != width:
            raise ValueError(
                f"need {width} sizes for range {i}..{j}, got {len(sizes)}")
        bsize = sizes
    transformation = Transformation.of(Block(nest.depth, i, j, bsize))
    report = transformation.legality(nest, deps)
    if not report.legal:
        return None
    return transformation
