"""Sharded parallel evaluation for the beam search.

:func:`repro.optimize.search.search` accepts ``jobs=N``; when ``N > 1``
it shards each level's candidate evaluations across forked worker
processes via :class:`~repro.parallel.pool.ShardedPool`.  Candidates
cross the process boundary as step-spec wire forms (see
:mod:`repro.parallel.worker`), results come back with content-keyed
legality-cache deltas that the parent replays in serial candidate order
(:mod:`repro.parallel.merge`), which makes the parallel search
bit-identical to the serial one — same winner, same score, same
``explored``/``legal_count``, same ``cache_stats``.

Robustness: a crashed worker's unfinished candidates are requeued once
onto a fresh worker; a second failure degrades the search to in-process
evaluation for the rest of the call.  Per-candidate wall-clock budgets
(``candidate_timeout``) score overrunning candidates ``-inf`` in both
serial and parallel modes.  :mod:`repro.parallel.faults` injects worker
crashes and hangs for the robustness tests.
"""

from repro.parallel.merge import Outcome, merge_outcome
from repro.parallel.pool import ShardedPool
from repro.parallel.worker import (
    call_with_timeout,
    candidate_from_spec,
    candidate_to_spec,
    step_from_spec,
    step_roundtrips,
    step_to_spec,
)

__all__ = [
    "Outcome",
    "ShardedPool",
    "call_with_timeout",
    "candidate_from_spec",
    "candidate_to_spec",
    "merge_outcome",
    "step_from_spec",
    "step_roundtrips",
    "step_to_spec",
]


def __getattr__(name: str):
    """Deprecated ``*_wire`` aliases; :mod:`repro.parallel.worker` owns
    the warning text and the mapping to the ``*_spec`` names."""
    if name in ("step_to_wire", "step_from_wire",
                "candidate_to_wire", "candidate_from_wire"):
        from repro.parallel import worker
        return getattr(worker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
