"""Deterministic folding of worker results into the parent search.

Why parallel equals serial, exactly
-----------------------------------

The pool forks workers at the start of each level, so every worker's
cache copy is the parent cache at level start — which already holds the
map/bounds entries for every frontier base (each base was merged or
evaluated in the previous level).  A worker therefore evaluates only
what the serial search would have evaluated for its candidates, and its
delta records only those new entries, under *content* keys.

The parent replays deltas in serial candidate order.  Content keys make
replay idempotent: an entry that an earlier candidate already
contributed (in-process or via another worker's delta) is skipped,
exactly where the serial evaluation would have taken a cache hit.
Attribution then reproduces the serial counters: a delta's verdict entry
counts one hit when the verdict already exists, else one miss; each
*new* map/bounds entry counts one evaluation.  Two workers may evaluate
a shared within-level prefix redundantly (duplicated wall-clock work),
but the replay dedups the entries, so ``SearchResult.cache_stats`` —
and the beam itself — come out identical to ``jobs=1``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Outcome:
    """One candidate's evaluation as reported by a worker."""

    __slots__ = ("legal", "value", "timed_out", "delta")

    def __init__(self, legal: bool, value: Optional[float],
                 timed_out: bool, delta: List[Tuple]):
        self.legal = legal
        self.value = value
        self.timed_out = timed_out
        self.delta = delta

    def __repr__(self):
        return (f"Outcome(legal={self.legal}, value={self.value}, "
                f"timed_out={self.timed_out}, delta={len(self.delta)})")


def merge_outcome(cache, nest, deps, outcome: Outcome):
    """Replay *outcome*'s cache delta and return the canonical
    :class:`~repro.core.sequence.LegalityReport` (the already-cached
    report when one exists — see ``LegalityCache.merge_delta`` for the
    stats contract)."""
    return cache.merge_delta(nest, deps, outcome.delta)
