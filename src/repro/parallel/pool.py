"""The sharded process pool behind ``search(..., jobs=N)``.

Lifecycle: one :class:`ShardedPool` per search call — or, for a
long-lived caller such as the transformation service, one pool
:meth:`~ShardedPool.rebind`-ed across many calls.  Each level's
candidates are round-robin sharded over ``jobs`` workers forked fresh
for that level (fork inherits the nest, dependence set, scoring closure
and the current legality cache — nothing but results ever needs to be
pickled *into* a worker).  Results stream back over a queue; the caller
folds them in serial candidate order (:mod:`repro.parallel.merge`).

Robustness contract:

* a worker that dies silently (crash, OOM kill) is detected by
  liveness polling; its unfinished candidates are requeued **once**
  onto a single fresh worker;
* a second failure — or a stalled pool (no message for
  ``stall_timeout`` seconds while results are owed) — degrades the
  pool: remaining candidates of the level, and all later levels, are
  evaluated in-process by the caller.  Degradation is sticky and
  recorded in :attr:`stats`;
* a worker exception (the scoring function raised) is transported back
  and re-raised in the parent, as a serial search would have done.

The pool is also *conservatively unavailable* — it degrades immediately
at construction — when ``fork`` is unsupported, when a menu step does
not survive the spec round-trip, or when the supplied cache lacks the
delta protocol; ``search`` then silently runs serial, keeping ``jobs``
an optimization knob rather than a compatibility constraint.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.obs import distributed as _dist
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics
from repro.parallel import worker as worker_mod
from repro.parallel.merge import Outcome

#: Grace period between observing a worker's death and declaring its
#: unfinished candidates failed, so queue messages the dying process
#: already flushed can still drain.
_DEATH_GRACE = 0.25
_POLL = 0.05


class ShardedPool:
    """Shards beam-search candidate evaluation across forked workers."""

    def __init__(self, nest, deps, score, jobs: int,
                 candidate_timeout: Optional[float] = None,
                 stall_timeout: Optional[float] = None,
                 menu: Optional[Sequence[Template]] = None,
                 speculate: bool = False):
        self.nest = nest
        self.deps = deps
        self.score = score
        self.jobs = max(1, int(jobs))
        self.candidate_timeout = candidate_timeout
        #: Workers run the dep-only legality tier when set (see
        #: ``evaluate_wire``); rebind() updates it per search call.
        self.speculate = bool(speculate)
        if stall_timeout is None and candidate_timeout:
            # With a per-candidate budget, prolonged silence means a
            # worker is stuck somewhere the budget cannot reach.
            stall_timeout = max(10.0, 5.0 * candidate_timeout)
        self.stall_timeout = stall_timeout
        self.degraded = False
        self.degrade_reason: Optional[str] = None
        self._crash_degraded = False
        self._ctx = None
        self.stats: Dict[str, object] = {
            "jobs": self.jobs,
            "levels": 0,
            "rebinds": 0,
            "dispatched": 0,
            "parent_evals": 0,
            "timeouts": 0,
            "crashes": 0,
            "requeues": 0,
            "fallbacks": 0,
            "per_worker": {},
        }
        reason = self._availability(menu)
        if reason is not None:
            self._degrade(reason)

    # -- availability / degradation ----------------------------------------

    def _availability(self, menu) -> Optional[str]:
        if self.jobs < 2:
            return "jobs < 2"
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:
            return "fork start method unavailable on this platform"
        if menu is not None:
            for step in menu:
                if not worker_mod.step_roundtrips(step):
                    return (f"menu step {step.signature()} does not "
                            f"survive the spec round-trip")
        return None

    def _degrade(self, reason: str, sticky: bool = False) -> None:
        if sticky:
            self._crash_degraded = True
        if self.degraded:
            return
        self.degraded = True
        self.degrade_reason = reason
        self.stats["fallbacks"] = int(self.stats["fallbacks"]) + 1
        self.stats["fallback_reason"] = reason
        if _obs.enabled():
            get_metrics().counter("search.parallel.fallbacks").inc()

    def rebind(self, nest, deps, score,
               menu: Optional[Sequence[Template]] = None,
               speculate: bool = False) -> None:
        """Point the pool at a new workload without rebuilding it.

        A long-lived caller (the transformation service) keeps one pool
        across many ``search()`` calls instead of constructing — and
        availability-probing — a fresh one per request; cumulative
        stats (`levels`, `dispatched`, `per_worker`, ...) keep
        accumulating across rebinds.  Workload-shaped degradation (a
        menu that does not round-trip, a cache without the delta
        protocol) is re-evaluated against the new workload; degradation
        earned by repeated worker crashes is machine-shaped and stays
        sticky for the pool's lifetime.
        """
        self.nest = nest
        self.deps = deps
        self.score = score
        self.speculate = bool(speculate)
        self.stats["rebinds"] = int(self.stats["rebinds"]) + 1
        if not self._crash_degraded:
            self.degraded = False
            self.degrade_reason = None
            reason = self._availability(menu)
            if reason is not None:
                self._degrade(reason)

    # -- per-level evaluation ----------------------------------------------

    def evaluate_level(self, level: int,
                       candidates: Sequence[Transformation],
                       cache) -> Dict[int, Outcome]:
        """Evaluate a level's candidates in workers; returns ``index ->
        Outcome`` for the subset that workers completed.  The caller
        evaluates any missing index in-process (and folds *all* indices
        in serial order)."""
        if self.degraded or not candidates:
            return {}
        if not (hasattr(cache, "legality_with_delta") and
                hasattr(cache, "merge_delta")):
            self._degrade("cache does not implement the delta protocol")
            return {}
        if self.speculate and not hasattr(cache, "dep_legality_with_delta"):
            self._degrade(
                "cache does not implement the speculative delta protocol")
            return {}
        tasks = [(idx, worker_mod.candidate_to_spec(c))
                 for idx, c in enumerate(candidates)]
        workers = min(self.jobs, len(tasks))
        shards = [tasks[w::workers] for w in range(workers)]
        self.stats["levels"] = int(self.stats["levels"]) + 1
        with _obs.span("search.shard", level=level,
                       candidates=len(tasks), workers=workers) as sp:
            # Derived inside the span so forked children parent their
            # shipped subtrees under this shard's span.
            trace_ctx = _dist.current_context()
            outcomes, failed = self._run(shards, cache, "primary",
                                         trace_ctx)
            if failed and not self.degraded:
                self.stats["requeues"] = int(self.stats["requeues"]) + 1
                if _obs.enabled():
                    get_metrics().counter("search.parallel.requeues").inc()
                retried, failed_again = self._run([failed], cache,
                                                  "requeue", trace_ctx)
                outcomes.update(retried)
                if failed_again:
                    self._degrade("worker failed twice on the same shard",
                                  sticky=True)
            sp.tag(completed=len(outcomes))
        self.stats["dispatched"] = (int(self.stats["dispatched"]) +
                                    len(outcomes))
        timed_out = sum(1 for o in outcomes.values() if o.timed_out)
        if timed_out:
            self.stats["timeouts"] = int(self.stats["timeouts"]) + timed_out
            if _obs.enabled():
                get_metrics().counter(
                    "search.parallel.timeouts").inc(timed_out)
        return outcomes

    def _run(self, shards: List[List[Tuple[int, Tuple]]], cache,
             kind: str,
             trace_ctx: Optional[dict] = None,
             ) -> Tuple[Dict[int, Outcome], List[Tuple[int, Tuple]]]:
        """Run one worker generation; returns completed outcomes plus
        the ``(index, wire)`` tasks of workers that died owing results.
        Re-raises, in the parent, any exception a worker reported."""
        ctx = self._ctx
        out_queue = ctx.Queue()
        procs: List = []
        owed: Dict[int, Dict[int, Tuple]] = {}
        for wid, shard in enumerate(shards):
            owed[wid] = dict(shard)
            proc = ctx.Process(
                target=worker_mod.worker_main,
                args=(wid, kind, shard, self.nest, self.deps, self.score,
                      cache, self.candidate_timeout, out_queue,
                      trace_ctx, self.speculate),
                daemon=True)
            proc.start()
            procs.append(proc)
        outcomes: Dict[int, Outcome] = {}
        failed: Dict[int, Tuple] = {}
        error: Optional[BaseException] = None
        done: set = set()
        dead: set = set()
        dead_seen: Dict[int, float] = {}
        observing = _obs.enabled()
        metrics = get_metrics() if observing else None
        per_worker: Dict[str, int] = self.stats["per_worker"]  # type: ignore
        last_message = time.monotonic()
        while len(done) + len(dead) < len(procs):
            try:
                message = out_queue.get(timeout=_POLL)
            except queue_mod.Empty:
                now = time.monotonic()
                for wid, proc in enumerate(procs):
                    if wid in done or wid in dead:
                        continue
                    if not proc.is_alive():
                        first = dead_seen.setdefault(wid, now)
                        if now - first >= _DEATH_GRACE:
                            self._mark_dead(wid, owed, failed, dead,
                                            observing, metrics)
                    else:
                        dead_seen.pop(wid, None)
                if (self.stall_timeout is not None and
                        now - last_message > self.stall_timeout):
                    for wid, proc in enumerate(procs):
                        if wid in done or wid in dead:
                            continue
                        if owed[wid]:
                            proc.terminate()
                            proc.join(1.0)
                            self._mark_dead(wid, owed, failed, dead,
                                            observing, metrics)
                        else:
                            done.add(wid)
                continue
            last_message = time.monotonic()
            tag = message[0]
            if tag == "result":
                _, wid, idx, legal, value, timed_out, delta = message
                outcomes[idx] = Outcome(legal, value, timed_out, delta)
                owed[wid].pop(idx, None)
                key = f"{kind}{wid}"
                per_worker[key] = per_worker.get(key, 0) + 1
                if observing:
                    metrics.counter(
                        f"search.parallel.worker.{key}.candidates").inc()
            elif tag == "spans":
                # A tracing worker's completed subtree: collected here
                # (keyed by trace id) so the enclosing request's ship()
                # forwards it toward the trace root.
                _, wid, records, dropped = message
                _dist.get_collector().add(records, dropped)
            elif tag == "error":
                _, wid, idx, payload = message
                if error is None:
                    error = worker_mod.exception_from_wire(payload)
                owed[wid].pop(idx, None)
            elif tag == "done":
                _, wid = message
                done.add(wid)
                failed.update(owed[wid])
                owed[wid] = {}
        for proc in procs:
            proc.join(timeout=1.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        out_queue.close()
        if error is not None:
            raise error
        return outcomes, sorted(failed.items())

    def _mark_dead(self, wid: int, owed, failed, dead, observing,
                   metrics) -> None:
        dead.add(wid)
        failed.update(owed[wid])
        owed[wid] = {}
        self.stats["crashes"] = int(self.stats["crashes"]) + 1
        if observing:
            metrics.counter("search.parallel.crashes").inc()

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The stats dict plus degradation state, for
        ``SearchResult.parallel``."""
        out = dict(self.stats)
        out["per_worker"] = dict(self.stats["per_worker"])  # type: ignore
        out["degraded"] = self.degraded
        if self.degrade_reason is not None:
            out["degrade_reason"] = self.degrade_reason
        return out
