"""Worker-side protocol for sharded parallel beam search.

Wire forms
----------

A template step travels as ``(n, spec, names)`` — its step-language
spelling plus the two pieces ``to_spec()`` omits: the nest depth the
step expects and the ``names`` tuple of a renaming Unimodular.  A
candidate transformation travels as ``(input_depth, step_wires)``.
The naming mirrors the templates' serialization protocol:
``step_to_spec``/``step_from_spec`` and ``candidate_to_spec``/
``candidate_from_spec`` (the old ``*_to_wire``/``*_from_wire``
spellings remain as deprecated aliases for one release).  Rebuilding
goes through :func:`repro.core.spec.step_from_spec` **without**
peephole reduction, mirroring how the search composes candidates
(``base.then(step, reduce=False)``); :func:`step_roundtrips` verifies
that the rebuilt step has the same legality-cache content key as the
original, which is what makes worker-side cache deltas interchangeable
with parent-side evaluations.

Messages (all picklable tuples, tagged by their first element):

``("result", wid, idx, legal, value, timed_out, delta)``
    One candidate's evaluation: legality verdict, raw score value
    (``None`` when illegal or timed out), whether the scoring call
    overran ``candidate_timeout``, and the legality-cache delta to
    replay in the parent (see ``LegalityCache.legality_with_delta``).

``("error", wid, idx, payload)``
    The scoring function raised: the exception crosses back to the
    parent (pickled when possible) and is re-raised there, exactly as a
    serial search would have propagated it.

``("done", wid)``
    Shard finished; the worker exits after flushing the queue.
"""

from __future__ import annotations

import pickle
import signal
import threading
import traceback
import warnings
from typing import Callable, List, Optional, Tuple

from repro.core import spec as spec_mod
from repro.core.legality_cache import template_key
from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.parallel import faults
from repro.util.errors import ReproError


class ScoreTimeout(Exception):
    """Internal: a candidate evaluation overran its wall-clock budget."""


class WorkerError(ReproError):
    """A worker raised an exception that could not be pickled back;
    carries the worker-side type, message and traceback as text."""


# -- step/candidate wire forms ---------------------------------------------

def step_to_spec(step: Template) -> Tuple:
    """``(n, spec, names)`` — raises NotImplementedError for templates
    with no step-language spelling (those cannot be shipped)."""
    return (step.n, step.to_spec(), getattr(step, "names", None))


def step_from_spec(wire: Tuple) -> Template:
    n, spec, names = wire
    return spec_mod.step_from_spec(spec, n, names=names)


def step_roundtrips(step: Template) -> bool:
    """True iff the wire form rebuilds a step with the same cache
    content key, i.e. shipping it to a worker is indistinguishable from
    evaluating in-process."""
    try:
        rebuilt = step_from_spec(step_to_spec(step))
    except Exception:
        return False
    return template_key(rebuilt) == template_key(step)


def candidate_to_spec(candidate: Transformation) -> Tuple:
    return (candidate.input_depth,
            tuple(step_to_spec(s) for s in candidate.steps))


def candidate_from_spec(wire: Tuple) -> Transformation:
    n, step_wires = wire
    return Transformation([step_from_spec(w) for w in step_wires], n=n)


_DEPRECATED_WIRE_NAMES = {
    "step_to_wire": step_to_spec,
    "step_from_wire": step_from_spec,
    "candidate_to_wire": candidate_to_spec,
    "candidate_from_wire": candidate_from_spec,
}


def __getattr__(name: str):
    """Deprecated aliases for the pre-normalization wire-form names."""
    fn = _DEPRECATED_WIRE_NAMES.get(name)
    if fn is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.parallel.worker.{name} is deprecated; use "
        f"{fn.__name__} (the to_spec/from_spec wire-form naming)",
        DeprecationWarning, stacklevel=2)
    return fn


# -- per-candidate wall-clock budget ---------------------------------------

def call_with_timeout(fn: Callable[[], object],
                      seconds: Optional[float]) -> Tuple[object, bool]:
    """Run ``fn()`` under a wall-clock budget; return ``(value,
    timed_out)`` with ``value`` meaningless when ``timed_out``.

    Uses ``SIGALRM``/``setitimer``, so the budget only applies on the
    main thread of a process (which both the search caller and worker
    processes normally are); elsewhere, or with no budget, the call
    simply runs to completion.
    """
    if not seconds or seconds <= 0 or \
            threading.current_thread() is not threading.main_thread():
        return fn(), False

    def _alarm(signum, frame):
        raise ScoreTimeout

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn(), False
    except ScoreTimeout:
        return None, True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- exception transport ----------------------------------------------------

def exception_to_wire(exc: BaseException) -> Tuple:
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)  # some exceptions pickle but fail to rebuild
        return ("pickle", payload)
    except Exception:
        return ("text", type(exc).__name__, str(exc),
                traceback.format_exc())


def exception_from_wire(wire: Tuple) -> BaseException:
    if wire[0] == "pickle":
        return pickle.loads(wire[1])
    _, type_name, message, tb = wire
    return WorkerError(
        f"{type_name}: {message}\n--- worker traceback ---\n{tb}")


# -- the worker loop --------------------------------------------------------

def evaluate_wire(wire: Tuple, kind: str, index: int, nest, deps, score,
                  cache, timeout: Optional[float]) -> Tuple:
    """Evaluate one candidate: ``(legal, value, timed_out, delta)``."""
    candidate = candidate_from_spec(wire)
    report, delta = cache.legality_with_delta(candidate, nest, deps)
    if not report.legal:
        return False, None, False, delta

    def scored():
        faults.maybe_hang(kind, index)
        return score(candidate, nest, deps)

    value, timed_out = call_with_timeout(scored, timeout)
    return True, (None if timed_out else value), timed_out, delta


def worker_main(worker_id: int, kind: str, shard: List[Tuple[int, Tuple]],
                nest, deps, score, cache, timeout: Optional[float],
                out_queue) -> None:
    """Entry point of a forked evaluation worker.

    *shard* is a list of ``(index, candidate_wire)`` pairs in serial
    candidate order; *cache* is the fork-inherited copy of the parent's
    legality cache (level-start state), so deltas contain exactly the
    entries a serial evaluation would have added.
    """
    try:
        for index, wire in shard:
            faults.maybe_crash(kind, index)
            try:
                legal, value, timed_out, delta = evaluate_wire(
                    wire, kind, index, nest, deps, score, cache, timeout)
            except Exception as exc:
                out_queue.put(
                    ("error", worker_id, index, exception_to_wire(exc)))
                break  # a serial search would have aborted here too
            out_queue.put(
                ("result", worker_id, index, legal, value, timed_out,
                 delta))
        out_queue.put(("done", worker_id))
    finally:
        # Flush the feeder thread before the process exits, else the
        # tail of the queue can be lost on fast exits.
        out_queue.close()
        out_queue.join_thread()
