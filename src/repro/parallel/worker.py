"""Worker-side protocol for sharded parallel beam search.

Wire forms
----------

A template step travels as ``(n, spec, names)`` — its step-language
spelling plus the two pieces ``to_spec()`` omits: the nest depth the
step expects and the ``names`` tuple of a renaming Unimodular.  A
candidate transformation travels as ``(input_depth, step_wires)``.
The naming mirrors the templates' serialization protocol:
``step_to_spec``/``step_from_spec`` and ``candidate_to_spec``/
``candidate_from_spec`` (the old ``*_to_wire``/``*_from_wire``
spellings remain as deprecated aliases for one release).  Rebuilding
goes through :func:`repro.core.spec.step_from_spec` **without**
peephole reduction, mirroring how the search composes candidates
(``base.then(step, reduce=False)``); :func:`step_roundtrips` verifies
that the rebuilt step has the same legality-cache content key as the
original, which is what makes worker-side cache deltas interchangeable
with parent-side evaluations.

Messages (all picklable tuples, tagged by their first element):

``("result", wid, idx, legal, value, timed_out, delta)``
    One candidate's evaluation: legality verdict, raw score value
    (``None`` when illegal or timed out), whether the scoring call
    overran ``candidate_timeout``, and the legality-cache delta to
    replay in the parent (see ``LegalityCache.legality_with_delta``).

``("error", wid, idx, payload)``
    The scoring function raised: the exception crosses back to the
    parent (pickled when possible) and is re-raised there, exactly as a
    serial search would have propagated it.

``("done", wid)``
    Shard finished; the worker exits after flushing the queue.

``("spans", wid, records, dropped)``
    Only when the parent passed a distributed-tracing context: the
    worker's completed span subtree (``pool.worker`` + per-candidate
    ``pool.candidate`` spans) in wire form, shipped for stitching into
    the parent's trace (see :mod:`repro.obs.distributed`).
"""

from __future__ import annotations

import pickle
import signal
import threading
import time
import traceback
import warnings
from typing import Callable, List, Optional, Tuple

from repro.core import spec as spec_mod
from repro.core.legality_cache import template_key
from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.parallel import faults
from repro.resilience import chaos as _chaos
from repro.util.errors import ReproError


class ScoreTimeout(Exception):
    """Internal: a candidate evaluation overran its wall-clock budget.

    ``token`` identifies which :func:`call_with_timeout` frame armed the
    timer that fired, so nested budgets attribute timeouts to the right
    frame instead of the innermost one swallowing them all.
    """

    def __init__(self, token: object = None):
        super().__init__("wall-clock budget exceeded")
        self.token = token


class WorkerError(ReproError):
    """A worker raised an exception that could not be pickled back;
    carries the worker-side type, message and traceback as text."""


# -- step/candidate wire forms ---------------------------------------------

def step_to_spec(step: Template) -> Tuple:
    """``(n, spec, names)`` — raises NotImplementedError for templates
    with no step-language spelling (those cannot be shipped)."""
    return (step.n, step.to_spec(), getattr(step, "names", None))


def step_from_spec(wire: Tuple) -> Template:
    n, spec, names = wire
    return spec_mod.step_from_spec(spec, n, names=names)


def step_roundtrips(step: Template) -> bool:
    """True iff the wire form rebuilds a step with the same cache
    content key, i.e. shipping it to a worker is indistinguishable from
    evaluating in-process."""
    try:
        rebuilt = step_from_spec(step_to_spec(step))
    except Exception:
        return False
    return template_key(rebuilt) == template_key(step)


def candidate_to_spec(candidate: Transformation) -> Tuple:
    return (candidate.input_depth,
            tuple(step_to_spec(s) for s in candidate.steps))


def candidate_from_spec(wire: Tuple) -> Transformation:
    n, step_wires = wire
    return Transformation([step_from_spec(w) for w in step_wires], n=n)


_DEPRECATED_WIRE_NAMES = {
    "step_to_wire": step_to_spec,
    "step_from_wire": step_from_spec,
    "candidate_to_wire": candidate_to_spec,
    "candidate_from_wire": candidate_from_spec,
}


def __getattr__(name: str):
    """Deprecated aliases for the pre-normalization wire-form names."""
    fn = _DEPRECATED_WIRE_NAMES.get(name)
    if fn is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.parallel.worker.{name} is deprecated; use "
        f"{fn.__name__} (the to_spec/from_spec wire-form naming)",
        DeprecationWarning, stacklevel=2)
    return fn


# -- per-candidate wall-clock budget ---------------------------------------

def call_with_timeout(fn: Callable[[], object],
                      seconds: Optional[float]) -> Tuple[object, bool]:
    """Run ``fn()`` under a wall-clock budget; return ``(value,
    timed_out)`` with ``value`` meaningless when ``timed_out``.

    Uses ``SIGALRM``/``setitimer``, so the budget only applies on the
    main thread of a process (which both the search caller and worker
    processes normally are); elsewhere, or with no budget, the call
    simply runs to completion.

    **Nesting.**  Budgets nest correctly: the call saves the previous
    ``SIGALRM`` handler *and* the remaining time of any already-armed
    itimer, arms ``min(seconds, remaining)``, and on exit re-arms the
    outer timer with whatever of its budget is left (firing it promptly
    when the inner call consumed it all).  A server request budget
    around a per-candidate budget therefore cannot be cancelled by the
    inner timer's cleanup — the regression that motivated this was an
    inner ``setitimer(0)`` silently disarming the outer budget.  Each
    frame tags its :class:`ScoreTimeout` with a unique token; a timeout
    belonging to an outer frame is re-delivered under the restored
    outer handler rather than swallowed here.
    """
    if not seconds or seconds <= 0 or \
            threading.current_thread() is not threading.main_thread():
        return fn(), False

    token = object()

    def _alarm(signum, frame):
        raise ScoreTimeout(token)

    prev_handler = signal.getsignal(signal.SIGALRM)
    outer_remaining, _interval = signal.getitimer(signal.ITIMER_REAL)
    outer_deadline = (time.monotonic() + outer_remaining
                      if outer_remaining > 0 else None)
    budget = (seconds if outer_deadline is None
              else min(seconds, outer_remaining))
    signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        return fn(), False
    except ScoreTimeout as exc:
        if exc.token is not token:
            raise  # an outer frame's timeout unwinding through us
        # Our timer fired.  Either our own budget was the binding one
        # (a genuine inner timeout), or the outer frame's remaining
        # time was shorter and we armed that instead — in which case
        # the finally below re-arms the outer timer with ~no time
        # left, so the outer budget still fires, under its own
        # handler, immediately after we return.
        return None, True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev_handler)
        if outer_deadline is not None:
            signal.setitimer(signal.ITIMER_REAL,
                             max(outer_deadline - time.monotonic(), 1e-6))


# -- exception transport ----------------------------------------------------

def exception_to_wire(exc: BaseException) -> Tuple:
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)  # some exceptions pickle but fail to rebuild
        return ("pickle", payload)
    except Exception:
        return ("text", type(exc).__name__, str(exc),
                traceback.format_exc())


def exception_from_wire(wire: Tuple) -> BaseException:
    if wire[0] == "pickle":
        return pickle.loads(wire[1])
    _, type_name, message, tb = wire
    return WorkerError(
        f"{type_name}: {message}\n--- worker traceback ---\n{tb}")


# -- the worker loop --------------------------------------------------------

def evaluate_wire(wire: Tuple, kind: str, index: int, nest, deps, score,
                  cache, timeout: Optional[float],
                  speculate: bool = False) -> Tuple:
    """Evaluate one candidate: ``(legal, value, timed_out, delta)``.

    With *speculate* the legality tier is the dep-only verdict
    (``dep_legality_with_delta``): ``legal`` then means *dep-legal*, and
    the parent's admission control decides whether to pay the exact
    verdict (see :func:`repro.optimize.search.search`)."""
    candidate = candidate_from_spec(wire)
    if speculate:
        report, delta = cache.dep_legality_with_delta(candidate, nest, deps)
    else:
        report, delta = cache.legality_with_delta(candidate, nest, deps)
    if not report.legal:
        return False, None, False, delta

    def scored():
        faults.maybe_hang(kind, index)
        return score(candidate, nest, deps)

    value, timed_out = call_with_timeout(scored, timeout)
    return True, (None if timed_out else value), timed_out, delta


def worker_main(worker_id: int, kind: str, shard: List[Tuple[int, Tuple]],
                nest, deps, score, cache, timeout: Optional[float],
                out_queue, trace_ctx: Optional[dict] = None,
                speculate: bool = False) -> None:
    """Entry point of a forked evaluation worker.

    *shard* is a list of ``(index, candidate_wire)`` pairs in serial
    candidate order; *cache* is the fork-inherited copy of the parent's
    legality cache (level-start state), so deltas contain exactly the
    entries a serial evaluation would have added.  *trace_ctx* (only
    passed when the parent is tracing) joins this worker's spans to the
    parent's distributed trace: the fork-inherited tracer is replaced by
    a fresh one — a fresh process tag, so span ids cannot collide with
    the parent's — and the completed subtree ships back on the queue.
    """
    root_sp = None
    tracer = None
    if trace_ctx is not None:
        from repro.obs import distributed as _dist
        from repro.obs import trace as _trace
        if _trace.enabled():
            tracer = _trace.install(_trace.Tracer())
            root_cm = _dist.adopt(trace_ctx, "pool.worker",
                                  wid=worker_id, kind=kind,
                                  candidates=len(shard))
            root_sp = root_cm.__enter__()
    try:
        for index, wire in shard:
            faults.maybe_crash(kind, index)
            try:
                # error-kind chaos rides the exception transport back to
                # the parent (like any worker-side raise); crash/hang
                # kinds exercise the pool's requeue and stall paths.
                _chaos.inject("pool.worker")
                if tracer is not None:
                    with tracer.span("pool.candidate", index=index):
                        legal, value, timed_out, delta = evaluate_wire(
                            wire, kind, index, nest, deps, score, cache,
                            timeout, speculate)
                else:
                    legal, value, timed_out, delta = evaluate_wire(
                        wire, kind, index, nest, deps, score, cache,
                        timeout, speculate)
            except Exception as exc:
                out_queue.put(
                    ("error", worker_id, index, exception_to_wire(exc)))
                break  # a serial search would have aborted here too
            out_queue.put(
                ("result", worker_id, index, legal, value, timed_out,
                 delta))
        if root_sp is not None:
            from repro.obs import distributed as _dist
            root_cm.__exit__(None, None, None)
            records, dropped = _dist.ship(tracer, root_sp, trace_ctx)
            out_queue.put(("spans", worker_id, records, dropped))
        out_queue.put(("done", worker_id))
    finally:
        # Flush the feeder thread before the process exits, else the
        # tail of the queue can be lost on fast exits.
        out_queue.close()
        out_queue.join_thread()
