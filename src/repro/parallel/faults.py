"""Test-only fault injection for parallel-search workers.

The robustness tests install a :class:`FaultPlan` in the parent before
calling ``search(..., jobs=N)``; forked workers inherit it and consult
the module before/while evaluating each candidate.  Only worker
processes ever call the hook functions, so a plan perturbs workers
without touching the parent's own (fallback) evaluations — which is
exactly what lets the tests assert that results survive the faults.

Faults address candidates by their level-local index (the position in
the level's candidate list, which is also the worker protocol's task
index) and can be limited to a worker generation: ``"primary"`` for the
first dispatch of a level, ``"requeue"`` for the single retry worker.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Optional

#: Exit status used by injected crashes; chosen to be distinguishable
#: from interpreter deaths in worker logs (the pool itself treats every
#: silent death the same way).
CRASH_EXIT_CODE = 87


class FaultPlan:
    """A deterministic script of worker misbehavior.

    ``crash_indices`` — candidate indices whose evaluation dies via
    ``os._exit`` (no cleanup, no "done" sentinel: a genuine crash as the
    pool observes it).  ``hang_indices`` — candidate indices that sleep
    ``hang_seconds`` inside the scored region, to trip per-candidate
    timeouts or the pool's stall backstop.  ``kinds`` limits which
    worker generations misbehave.
    """

    def __init__(self, crash_indices: Iterable[int] = (),
                 hang_indices: Iterable[int] = (),
                 hang_seconds: float = 30.0,
                 kinds: Iterable[str] = ("primary",)):
        self.crash_indices = frozenset(crash_indices)
        self.hang_indices = frozenset(hang_indices)
        self.hang_seconds = float(hang_seconds)
        self.kinds = frozenset(kinds)


_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    global _PLAN
    _PLAN = plan


def clear() -> None:
    global _PLAN
    _PLAN = None


def current() -> Optional[FaultPlan]:
    return _PLAN


def maybe_crash(kind: str, index: int) -> None:
    """Worker hook, called before each candidate evaluation."""
    plan = _PLAN
    if plan is not None and kind in plan.kinds and \
            index in plan.crash_indices:
        os._exit(CRASH_EXIT_CODE)


def maybe_hang(kind: str, index: int) -> None:
    """Worker hook, called inside the timed scoring region."""
    plan = _PLAN
    if plan is not None and kind in plan.kinds and \
            index in plan.hang_indices:
        time.sleep(plan.hang_seconds)
