"""Pool-worker fault injection — now part of the unified chaos layer.

The implementation moved to :mod:`repro.resilience.chaos`, which adds
point-addressed injection (``pool.worker`` among them) on top of the
index-addressed :class:`FaultPlan` this module introduced; everything
importable here before still is.  The hook functions consult module
state in ``repro.resilience.chaos``, so installing through either
spelling perturbs the same workers.
"""

from __future__ import annotations

from repro.resilience.chaos import (  # noqa: F401  (re-exported)
    CRASH_EXIT_CODE,
    FaultPlan,
    clear,
    current,
    install,
    maybe_crash,
    maybe_hang,
)

__all__ = ["CRASH_EXIT_CODE", "FaultPlan", "clear", "current", "install",
           "maybe_crash", "maybe_hang"]
