"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``show FILE``
    Parse and pretty-print a loop nest; ``--deps`` adds the analyzed
    dependence vectors, ``--bounds`` the LB/UB/STEP matrices.

``analyze FILE [--level gcd|banerjee|fm]``
    Print the dependence-vector set at the chosen test-ladder tier.

``legality FILE --steps SPEC``
    Run the unified legality test for a transformation sequence.

``transform FILE --steps SPEC [--force] [--emit loop|c|python] [--trace]``
    Generate code for the sequence (``--force`` skips the dependence
    half of the legality test); ``--trace`` prints the Figure-7-style
    per-stage dependence/loop tables.

``run FILE [--steps SPEC] [--engine interpreter|compiled|vectorized]``
    Execute a nest (optionally transformed first) under the chosen
    engine and print iterations + wall clock as JSON; the vectorized
    engine additionally reports its lowering plan and fallback
    reasons.  ``search`` takes the same ``--engine`` for its
    ``--scorer time`` mode, ``profile`` for its run section, and
    ``serve`` as the default engine of service ``run`` requests.

``profile FILE [--steps SPEC] [--search] [--size N]``
    Run the full pipeline — dependence analysis, beam search (and/or the
    given sequence), code generation, compiled execution, cache
    simulation — with observability on, and print one machine-readable
    JSON document: per-phase profile, metrics snapshot, search and cache
    summaries.

``serve [--stdio | --tcp --host H --port P] [--jobs N] ...``
    Run the long-lived transformation service: newline-delimited JSON
    requests over stdio or TCP against warm caches and a shared worker
    pool (see :mod:`repro.service` and the Service section of
    ``docs/API.md``).  ``--supervise`` (TCP only) adds a crash/hang
    supervisor with warm-state restore; ``--chaos SPEC`` arms fault
    injection (:mod:`repro.resilience`).

``client SCRIPT [--connect HOST:PORT] [--retries N]``
    Replay an NDJSON request script against a service — a spawned
    stdio server by default, or a running TCP server with
    ``--connect``.  ``--retries N`` retries transport failures and
    retryable errors with idempotency keys (exactly-once execution).
    With ``--trace-json`` each request roots a distributed trace; the
    exported file is the stitched cross-process span tree
    (:mod:`repro.obs.distributed`).

``stats --connect HOST:PORT [--watch]``
    Fetch a running service's (or fleet's) ``telemetry`` snapshot and
    print it as JSON — against a fleet this is the merged fleet-wide
    document: per-worker counters summed, gauges tagged per worker,
    latency histograms merged with p50/p95/p99 estimates.

``fuzz --cases N --seed S [--matrix core,search,service,fleet,chaos]``
    Run the generative differential fuzzer (:mod:`repro.fuzz`): seeded
    random nests and transformation sequences cross-checked across
    engines, search strategies, job counts, the service, the fleet and
    chaos injection.  Failures auto-shrink to minimal repros;
    ``--corpus DIR`` banks them as regression artifacts, ``--replay``
    re-runs the existing bank instead of generating.

Every command additionally accepts ``--profile`` (print the per-phase
span table to stderr when done) and ``--trace-json PATH`` (export the
span stream — stitched across processes when remote spans were
collected — as JSON lines) — both install the :mod:`repro.obs`
tracer for the duration of the command — plus ``--jobs N`` and
``--candidate-timeout S``, which tune parallel candidate evaluation
where the command searches (``search``, ``profile``, ``serve``) and are
accepted-but-inert elsewhere so wrapper scripts can pass one uniform
flag set.

Exit codes: ``0`` success; ``1`` operation failed (illegal sequence,
failed service request); ``2`` bad input or usage (parse/spec errors,
malformed arguments).

The ``SPEC`` mini-language is a semicolon-separated list of step
builders, evaluated left to right against the current nest depth::

    interchange(1,2); block(1,3,16); parallelize(1)
    skew(2,1); interchange(1,2)
    permute(3,1,2); coalesce(1,2)
    unimodular([[1,1],[1,0]])
    reverse(2); interleave(1,2,4,4); wavefront()

Loop numbers are 1-based, outermost first, as in the paper.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro import obs
from repro.core import BoundsMatrix, Transformation
from repro.core.bounds_matrix import LB, STEP, UB
# The step mini-language lives in repro.core.spec (it is shared wire
# format, not CLI detail); these re-exports keep the historical
# ``from repro.cli import parse_steps`` spelling working.
from repro.core.spec import (  # noqa: F401  (re-exported)
    SpecError,
    build_step,
    parse_call as _parse_call,
    parse_steps,
    split_calls as _split_calls,
)
from repro.deps.analysis import analyze
from repro.ir import parse_nest
from repro.ir.emit import emit_c, emit_python
from repro.util.errors import ReproError

#: Engine names accepted by ``--engine`` (mirrors
#: ``repro.runtime.ENGINE_NAMES`` without importing the runtime package
#: at CLI startup).
ENGINE_CHOICES = ("interpreter", "compiled", "vectorized")

#: Cost-model names accepted by ``--model`` (mirrors
#: ``repro.optimize.model.MODEL_NAMES`` without importing the optimizer
#: at CLI startup).
MODEL_CHOICES = ("evidence", "static")


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def _read_nest(path: str, sink_imperfect: bool = False):
    text = sys.stdin.read() if path == "-" else open(path).read()
    if sink_imperfect:
        from repro.ir import parse_imperfect, sink
        return sink(parse_imperfect(text))
    return parse_nest(text)


def cmd_show(args) -> int:
    nest = _read_nest(args.file, args.sink)
    print(nest.pretty())
    if args.deps:
        print(f"\ndependence vectors: {analyze(nest, level=args.level)}")
    if args.bounds:
        bm = BoundsMatrix.of_nest(nest)
        for which in (LB, UB, STEP):
            print(f"\n{which} =")
            print(bm.pretty(which))
        print()
        print(bm.pretty_types())
    return 0


def cmd_analyze(args) -> int:
    nest = _read_nest(args.file, args.sink)
    print(analyze(nest, level=args.level))
    return 0


def cmd_legality(args) -> int:
    nest = _read_nest(args.file, args.sink)
    T = parse_steps(args.steps, nest.depth)
    deps = analyze(nest, level=args.level)
    report = T.legality(nest, deps)
    print(f"sequence: {T.signature()}")
    print(f"dependence vectors: {deps}")
    print(f"legal: {report.legal}")
    if not report.legal:
        print(f"reason: {report.reason}")
    return 0 if report.legal else 1


def cmd_transform(args) -> int:
    nest = _read_nest(args.file, args.sink)
    T = parse_steps(args.steps, nest.depth)
    deps = analyze(nest, level=args.level)
    if args.trace:
        dep_trace = T.dep_set_trace(deps)
        loop_trace = T.loop_trace(nest)
        names = ["START"] + [s.kernel_name for s in T.steps]
        for name, d, loops in zip(names, dep_trace, loop_trace):
            print(f"-- {name}: D = {d}")
            for lp in loops:
                print(f"     {lp.header()}")
        print()
    if args.force:
        out = T.apply(nest, check=False)
    else:
        report = T.legality(nest, deps)
        if not report.legal:
            print(f"ILLEGAL: {report.reason}", file=sys.stderr)
            return 1
        out = T.apply(nest, deps)
    if args.emit == "c":
        print(emit_c(out))
    elif args.emit == "python":
        from repro.deps.analysis.references import inferred_array_names
        print(emit_python(out, sorted(inferred_array_names(out))))
    elif args.emit == "pretty":
        from repro.ir.pretty_temps import pretty_with_temps
        print(pretty_with_temps(out))
    else:
        print(out.pretty())
    return 0


def cmd_run(args) -> int:
    """Execute a nest (optionally transformed first) under the chosen
    engine and print a JSON summary: iteration count, wall-clock, and —
    for the vectorized engine — the lowering plan and fallback reasons.
    """
    import time as time_mod

    from repro.runtime import resolve_engine

    nest = _read_nest(args.file, args.sink)
    sequence = None
    if args.steps:
        transformation = parse_steps(args.steps, nest.depth)
        sequence = transformation.signature()
        if args.force:
            nest = transformation.apply(nest, check=False)
        else:
            deps = analyze(nest, level=args.level)
            report = transformation.legality(nest, deps)
            if not report.legal:
                print(f"error: illegal sequence: {report.reason}",
                      file=sys.stderr)
                return 1
            nest = transformation.apply(nest, deps)
    symbols = {name: args.size for name in sorted(nest.invariants())}
    engine_cls = resolve_engine(args.engine)
    engine = engine_cls(nest, symbols=symbols)
    start = time_mod.perf_counter()
    result = engine.run({})
    wall = time_mod.perf_counter() - start
    doc = {
        "input": {"file": args.file, "level": args.level,
                  "size": args.size, "steps": args.steps},
        "engine": args.engine,
        "sequence": sequence,
        "depth": nest.depth,
        "iterations": result.body_count,
        "wall_s": round(wall, 6),
    }
    if args.engine == "vectorized":
        doc["vectorized"] = engine.describe()
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_search(args) -> int:
    """Beam-search a transformation sequence and print a JSON summary.

    ``--jobs N`` shards candidate evaluation across N forked worker
    processes; results are guaranteed identical to ``--jobs 1`` (the
    ``parallel`` block in the output records the worker accounting).
    ``--scorer time`` replaces the static parallelism score with
    measured wall clock under ``--engine``.
    """
    from repro.optimize.model import resolve_model
    from repro.optimize.search import (
        SearchConfig,
        make_time_score,
        parallelism_score,
        search,
    )

    nest = _read_nest(args.file, args.sink)
    deps = analyze(nest, level=args.level)
    if args.scorer == "time":
        symbols = {name: args.size for name in sorted(nest.invariants())}
        score = make_time_score({}, symbols, engine=args.engine)
    else:
        score = parallelism_score
    model = resolve_model(args.model) if args.model else None
    config = SearchConfig(score=score, depth=args.depth, beam=args.beam,
                          jobs=args.jobs,
                          candidate_timeout=args.candidate_timeout,
                          prune=args.prune, speculate=args.speculate,
                          model=model)
    result = search(nest, deps, config=config)
    winner = result.transformation
    doc = {
        "input": {"file": args.file, "level": args.level,
                  "depth": args.depth, "beam": args.beam,
                  "jobs": args.jobs, "scorer": args.scorer,
                  "prune": args.prune, "speculate": args.speculate,
                  "model": args.model,
                  "engine": (args.engine if args.scorer == "time"
                             else None)},
        "winner": winner.signature() if winner else None,
        "spec": winner.to_spec() if winner is not None else None,
        "score": result.score if result.score != float("-inf") else None,
        "explored": result.explored,
        "legal": result.legal_count,
        "timeouts": result.timeouts,
        "pruned": result.pruned,
        "prune_reasons": result.prune_reasons,
        "speculated": result.speculated,
        "evicted": result.evicted,
        "exact_verdicts": result.exact_verdicts,
        "cache_stats": result.cache_stats,
        "parallel": result.parallel,
    }
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_profile(args) -> int:
    """Profile the whole pipeline on one nest and print a JSON document.

    The tracer is already installed by :func:`main` (the ``profile``
    command always runs observed), so every instrumented layer — the
    dependence analyzer, the beam search and its legality cache, the
    compiled engine, the cache simulator — reports into the same span
    stream and metrics registry that this command renders.
    """
    from repro.cache.simulator import Layout, simulate_trace
    from repro.core.legality_cache import LegalityCache
    from repro.optimize.model import resolve_model
    from repro.optimize.search import SearchConfig, search
    from repro.runtime.compiled import run_compiled

    nest = _read_nest(args.file, args.sink)
    symbols = {name: args.size for name in sorted(nest.invariants())}
    deps = analyze(nest, level=args.level)

    doc_search = None
    winner = None
    if not args.no_search:
        model = resolve_model(args.model) if args.model else None
        config = SearchConfig(depth=args.depth, beam=args.beam,
                              jobs=args.jobs,
                              candidate_timeout=args.candidate_timeout,
                              prune=args.prune,
                              speculate=args.speculate, model=model)
        result = search(nest, deps, config=config)
        winner = result.transformation
        doc_search = {
            "winner": winner.signature() if winner else None,
            "score": (result.score
                      if result.score != float("-inf") else None),
            "explored": result.explored,
            "legal": result.legal_count,
            "pruned": result.pruned,
            "speculated": result.speculated,
            "evicted": result.evicted,
            "exact_verdicts": result.exact_verdicts,
            "cache_stats": result.cache_stats,
            "parallel": result.parallel,
        }

    if args.steps:
        chosen = parse_steps(args.steps, nest.depth)
    else:
        chosen = winner or Transformation.identity(nest.depth)
    report = LegalityCache().legality(chosen, nest, deps)

    doc_run = {"sequence": chosen.signature(), "legal": report.legal,
               "engine": args.engine}
    doc_cachesim = None
    try:
        out = chosen.apply(nest, deps) if report.legal else nest
        if not report.legal:
            doc_run["note"] = ("sequence illegal; profiled the original "
                               "nest instead")
        # Wall clock under the selected engine (the address trace below
        # always comes from the compiled engine — the vectorized one
        # does not trace).
        import time as time_mod

        from repro.runtime import resolve_engine

        timed_engine = resolve_engine(args.engine)(out, symbols=symbols)
        start = time_mod.perf_counter()
        timed_engine.run({})
        doc_run["wall_s"] = round(time_mod.perf_counter() - start, 6)
        if args.engine == "vectorized":
            doc_run["vectorized"] = timed_engine.describe()
        result = run_compiled(out, {}, symbols=symbols,
                              trace_addresses=True)
        doc_run["iterations"] = result.body_count
        doc_run["accesses"] = len(result.address_trace)
        if result.address_trace:
            # Extents observed in the trace are exact for the layout.
            extents = {}
            for name, index, _kind in result.address_trace:
                dims = extents.setdefault(name,
                                          [[ix, ix] for ix in index])
                for d, ix in enumerate(index):
                    if ix < dims[d][0]:
                        dims[d][0] = ix
                    if ix > dims[d][1]:
                        dims[d][1] = ix
            layout = Layout()
            for name in sorted(extents):
                layout.register(name, [tuple(e) for e in extents[name]])
            stats = simulate_trace(result.address_trace, layout)
            doc_cachesim = {
                "accesses": stats.accesses,
                "misses": stats.misses,
                "miss_rate": round(stats.miss_rate, 6),
            }
    except ReproError as exc:
        doc_run["error"] = str(exc)

    doc = obs.profile_document()
    doc["input"] = {"file": args.file, "level": args.level,
                    "size": args.size}
    doc["search"] = doc_search
    doc["run"] = doc_run
    doc["cachesim"] = doc_cachesim
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _free_port(host: str) -> int:
    """Reserve an ephemeral port number a supervised child can rebind
    across restarts (port 0 would move on every restart)."""
    import socket
    with socket.socket() as s:
        s.bind((host, 0))
        return s.getsockname()[1]


def _serve_child_argv(args, port: int, heartbeat: str,
                      checkpoint: str) -> list:
    """The argv of one supervised server incarnation: the user's serve
    options minus ``--supervise`` plus the heartbeat/checkpoint plumbing
    every restart must share."""
    argv = [sys.executable, "-m", "repro", "serve", "--tcp",
            "--host", args.host, "--port", str(port),
            "--heartbeat-file", heartbeat,
            "--checkpoint", checkpoint,
            "--checkpoint-every", str(args.checkpoint_every),
            "--queue-max", str(args.queue_max),
            "--batch-max", str(args.batch_max),
            "--cache-max-entries", str(args.cache_max_entries),
            "--engine", args.engine,
            "--hang-timeout", str(args.hang_timeout)]
    if args.request_timeout is not None:
        argv += ["--request-timeout", str(args.request_timeout)]
    if args.jobs and args.jobs > 1:
        argv += ["--jobs", str(args.jobs)]
    if args.prune:
        argv += ["--prune"]
    if args.speculate:
        argv += ["--speculate"]
    if args.model:
        argv += ["--model", args.model]
    return argv


def cmd_serve(args) -> int:
    """Run the long-lived transformation service until drained.

    The server keeps warm state (legality cache, compiled-nest cache,
    parse/analysis memos) and one shared worker pool across the whole
    session; see :mod:`repro.service`.  It exits cleanly on SIGTERM,
    SIGINT, stdin EOF (stdio mode) or a ``shutdown`` request.

    ``--supervise`` (TCP only) runs the server as a supervised child:
    crashes and hangs restart it with backoff, warm state survives via
    the checkpoint file, and a crash loop trips a circuit breaker.
    ``--chaos SPEC`` arms fault injection (in the supervised child via
    the ``REPRO_CHAOS`` environment).  ``--fleet N`` (TCP only) fronts
    N supervised workers behind the one port, routing requests by
    content-hash affinity and failing over dead workers' hash ranges
    to the survivors; see :mod:`repro.fleet`.
    """
    from repro.resilience import chaos

    if args.fleet:
        if not args.tcp:
            print("error: --fleet requires --tcp (N workers behind one "
                  "socket)", file=sys.stderr)
            return 2
        if args.supervise:
            print("error: --fleet supervises every worker already; "
                  "drop --supervise", file=sys.stderr)
            return 2
        from repro.fleet import FleetError, FleetFrontEnd, FleetRouter
        from repro.service import serve_tcp

        port = args.port or _free_port(args.host)
        directory = args.fleet_dir or f".repro-fleet-{port}"
        worker_args = ["--queue-max", str(args.queue_max),
                       "--batch-max", str(args.batch_max),
                       "--cache-max-entries",
                       str(args.cache_max_entries),
                       "--engine", args.engine]
        # Fleet workers inherit the front end's model-guided defaults.
        if args.prune:
            worker_args += ["--prune"]
        if args.speculate:
            worker_args += ["--speculate"]
        if args.model:
            worker_args += ["--model", args.model]
        if args.chaos:
            worker_args += ["--chaos", args.chaos,
                            "--chaos-seed", str(args.chaos_seed)]
            if args.chaos_state:
                worker_args += ["--chaos-state", args.chaos_state]
        router = FleetRouter(
            args.fleet, directory=directory,
            jobs=args.jobs,
            hang_timeout=args.hang_timeout,
            max_restarts=args.max_restarts,
            restart_window=args.restart_window,
            checkpoint_every=args.checkpoint_every,
            request_timeout=args.request_timeout,
            extra_args=worker_args)
        print(f"repro serve: starting fleet of {args.fleet} worker(s) "
              f"in {directory}", file=sys.stderr, flush=True)
        try:
            router.start()
        except FleetError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        frontend = FleetFrontEnd(router, queue_max=args.queue_max)
        serve_tcp(frontend, host=args.host, port=port)
        print(f"repro serve: fleet drained ({frontend.drain_reason}); "
              f"{frontend.counters['answered']} answered, "
              f"{router.counters['failovers']} failover(s)",
              file=sys.stderr)
        return 0

    if args.supervise:
        if not args.tcp:
            print("error: --supervise requires --tcp (clients reconnect "
                  "across restarts; stdio pipes cannot)", file=sys.stderr)
            return 2
        from repro.resilience.supervisor import Supervisor

        port = args.port or _free_port(args.host)
        heartbeat = args.heartbeat_file or f".repro-serve-{port}.hb"
        checkpoint = args.checkpoint or heartbeat + ".ckpt"
        if args.chaos:
            os.environ[chaos.ENV_SPEC] = args.chaos
            os.environ[chaos.ENV_SEED] = str(args.chaos_seed)
            # Firing counts must survive restarts, else every crash
            # rule is a crash loop.
            os.environ[chaos.ENV_STATE] = (args.chaos_state
                                           or heartbeat + ".chaos")
        supervisor = Supervisor(
            _serve_child_argv(args, port, heartbeat, checkpoint),
            heartbeat_file=heartbeat,
            hang_timeout=args.hang_timeout,
            max_restarts=args.max_restarts,
            restart_window=args.restart_window,
            report_path=args.report)
        supervisor.install_signal_handlers()
        print(f"repro serve: supervising on {args.host}:{port} "
              f"(heartbeat {heartbeat}, checkpoint {checkpoint})",
              file=sys.stderr, flush=True)
        code = supervisor.run()
        print(f"repro serve: supervision ended after "
              f"{len(supervisor.restarts)} restart(s)", file=sys.stderr)
        return code

    if args.chaos:
        chaos.arm(chaos.ChaosPlan.from_spec(
            args.chaos, seed=args.chaos_seed,
            state_path=args.chaos_state))
    else:
        chaos.arm_from_env()
    from repro.service import TransformationService, serve_stdio, serve_tcp

    service = TransformationService(
        jobs=args.jobs,
        queue_max=args.queue_max,
        batch_max=args.batch_max,
        request_timeout=args.request_timeout,
        cache_max_entries=args.cache_max_entries,
        heartbeat_file=args.heartbeat_file,
        hang_grace=max(args.hang_timeout / 2.0, 0.2),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        default_engine=args.engine,
        default_prune=args.prune,
        default_speculate=args.speculate,
        default_model=args.model)
    if args.tcp:
        serve_tcp(service, host=args.host, port=args.port)
    else:
        serve_stdio(service)
    print(f"repro serve: drained ({service.drain_reason}); "
          f"{service.counters['completed']} requests served",
          file=sys.stderr)
    return 0


def _traced_replay(client, requests) -> list:
    """Replay with distributed tracing: each request roots its own
    trace (``client.request`` span), sends the context on the wire, and
    folds the spans shipped back on the response into the collector —
    :func:`main` then exports the stitched cross-process tree."""
    from repro.obs import distributed as dist
    from repro.resilience.retry import RetryingClient

    responses = []
    for req in requests:
        op = req["op"]
        with dist.start_trace("client.request", op=op):
            ctx = dist.current_context()
            if isinstance(client, RetryingClient):
                response = client.request_raw(
                    op, req.get("params"), req_id=req.get("id"),
                    trace=ctx)
            else:
                rid = client.send(op, req.get("params"),
                                  req_id=req.get("id"), trace=ctx)
                response = client.recv(rid)
        if isinstance(response, dict):
            spans = response.pop("spans", None)
            dropped = response.pop("spans_dropped", 0)
            if spans or dropped:
                dist.get_collector().add(spans, dropped)
        responses.append(response)
    return responses


def cmd_client(args) -> int:
    """Replay an NDJSON request script and print the raw responses.

    Exit code 0 when every response is ``ok``, 1 when any request
    failed, 2 on a malformed script.
    """
    from repro.service import ServiceClient

    text = (sys.stdin.read() if args.script == "-"
            else open(args.script).read())
    requests = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            req = json.loads(line)
        except ValueError as exc:
            print(f"error: script line {lineno}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(req, dict) or "op" not in req:
            print(f"error: script line {lineno}: each request needs "
                  f"an 'op'", file=sys.stderr)
            return 2
        requests.append(req)

    serve_args = []
    if args.jobs and args.jobs > 1:
        serve_args += ["--jobs", str(args.jobs)]
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --connect expects HOST:PORT, got "
                  f"{args.connect!r}", file=sys.stderr)
            return 2
        shutdown = args.shutdown
        if args.retries:
            from repro.resilience.retry import RetryPolicy, RetryingClient
            client = RetryingClient.tcp(
                host, int(port),
                policy=RetryPolicy(attempts=args.retries + 1),
                attempt_timeout=args.attempt_timeout)
        else:
            client = ServiceClient.connect(host, int(port))
    else:
        shutdown = True
        if args.retries:
            from repro.resilience.retry import RetryPolicy, RetryingClient
            client = RetryingClient.spawn(
                serve_args, policy=RetryPolicy(attempts=args.retries + 1),
                attempt_timeout=args.attempt_timeout)
        else:
            client = ServiceClient.spawn(serve_args)
    try:
        if obs.enabled():
            responses = _traced_replay(client, requests)
        else:
            responses = client.replay(requests)
    finally:
        client.close(shutdown=shutdown)
    for response in responses:
        print(json.dumps(response, sort_keys=True))
    return 0 if all(r.get("ok") for r in responses) else 1


def cmd_stats(args) -> int:
    """Fetch a live service's ``telemetry`` snapshot and print JSON.

    Against a fleet front end the router answers with the merged
    fleet-wide document (``router`` / ``workers`` / ``merged``
    sections); against a single server, with that process's own
    snapshot.  ``--watch`` polls until interrupted, reconnecting each
    cycle so supervised restarts don't end the watch.
    """
    import time as time_mod

    from repro.service import ServiceClient
    from repro.service.protocol import ServiceError

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect expects HOST:PORT, got "
              f"{args.connect!r}", file=sys.stderr)
        return 2
    while True:
        try:
            client = ServiceClient.connect(host, int(port))
            try:
                doc = client.request("telemetry")
            finally:
                client.close(shutdown=False)
        except (ServiceError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(doc, indent=2, sort_keys=True), flush=True)
        if not args.watch:
            return 0
        time_mod.sleep(args.interval)


def cmd_fuzz(args) -> int:
    """Run the generative differential fuzzer, or replay the corpus.

    Prints one JSON report document to stdout (and, with ``--json``,
    to a file — what ``make fuzz-smoke`` publishes as the CI
    artifact).  Exit code 0 means zero divergences/crashes/hangs; 1
    means the run surfaced at least one failure (each shrunk, and
    banked when ``--corpus`` is given).
    """
    from repro.fuzz import run_fuzz
    from repro.fuzz.corpus import list_artifacts, replay_artifact
    from repro.fuzz.harness import MATRIX_DIMS

    if args.replay:
        artifacts = list_artifacts(args.corpus)
        failures = []
        for path in artifacts:
            outcome = replay_artifact(path)
            if outcome.failed:
                failures.append({"artifact": str(path),
                                 "status": outcome.status,
                                 "oracle": outcome.oracle,
                                 "detail": outcome.detail})
        doc = {"replayed": len(artifacts),
               "failures": failures}
        text = json.dumps(doc, indent=2, sort_keys=True)
        print(text, flush=True)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        return 1 if failures else 0

    matrix = [d.strip() for d in args.matrix.split(",") if d.strip()]
    for dim in matrix:
        if dim not in MATRIX_DIMS:
            print(f"error: unknown matrix dimension {dim!r} (choose "
                  f"from {', '.join(MATRIX_DIMS)})", file=sys.stderr)
            return 2

    def progress(report):
        print(f"fuzz: {report.summary()}", file=sys.stderr, flush=True)

    report = run_fuzz(args.cases, args.seed, matrix=matrix,
                      start=args.start, shrink=not args.no_shrink,
                      corpus=args.corpus,
                      time_limit=args.time_limit,
                      progress=progress if not args.quiet else None)
    text = json.dumps(report.to_json(), indent=2, sort_keys=True)
    print(text, flush=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(f"fuzz: {report.summary()}", file=sys.stderr)
    return 1 if report.failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iteration-reordering loop transformations "
                    "(Sarkar & Thekkath, PLDI 1992)",
        epilog="exit codes: 0 success; 1 operation failed (illegal "
               "sequence, failed service request); 2 bad input or usage "
               "(parse/spec errors, malformed arguments)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_observe(p):
        p.add_argument("--profile", action="store_true",
                       help="run with the tracer on and print the "
                            "per-phase profile table to stderr")
        p.add_argument("--trace-json", metavar="PATH", default=None,
                       help="run with the tracer on and export the span "
                            "stream to PATH as JSON lines")

    def add_parallel(p, jobs_help="worker processes for candidate "
                     "evaluation (1 = serial; results are identical "
                     "either way)"):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help=jobs_help)
        p.add_argument("--candidate-timeout", dest="candidate_timeout",
                       type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget per candidate scoring; "
                            "overrunning candidates score -inf")

    def add_model_guided(p):
        p.add_argument("--prune", action="store_true", default=False,
                       help="discard candidate steps by algebraic "
                            "pruning rules before legality runs")
        p.add_argument("--no-prune", dest="prune", action="store_false",
                       help="disable pruning (the default)")
        p.add_argument("--speculate", action="store_true", default=False,
                       help="admit model-favored candidates on the "
                            "cheap dependence verdict alone, deferring "
                            "exact legality to the beam frontier")
        p.add_argument("--model", choices=MODEL_CHOICES, default=None,
                       help="cost model for --speculate (default: a "
                            "fresh static model per search)")

    def add_common(p):
        p.add_argument("file", help="loop nest file ('-' for stdin)")
        p.add_argument("--level", choices=["gcd", "banerjee", "fm"],
                       default="fm", help="dependence test ladder depth")
        p.add_argument("--sink", action="store_true",
                       help="accept an imperfect nest and sink it into a "
                            "guarded perfect nest first")
        add_observe(p)
        add_parallel(p)

    p_show = sub.add_parser("show", help="parse and pretty-print a nest")
    add_common(p_show)
    p_show.add_argument("--deps", action="store_true",
                        help="also print analyzed dependence vectors")
    p_show.add_argument("--bounds", action="store_true",
                        help="also print the LB/UB/STEP matrices")
    p_show.set_defaults(func=cmd_show)

    p_an = sub.add_parser("analyze", help="print the dependence set")
    add_common(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_leg = sub.add_parser("legality", help="test a sequence's legality")
    add_common(p_leg)
    p_leg.add_argument("--steps", required=True, help="step specification")
    p_leg.set_defaults(func=cmd_legality)

    p_tr = sub.add_parser("transform", help="generate transformed code")
    add_common(p_tr)
    p_tr.add_argument("--steps", required=True, help="step specification")
    p_tr.add_argument("--force", action="store_true",
                      help="skip the dependence-vector legality test")
    p_tr.add_argument("--emit", choices=["loop", "c", "python", "pretty"],
                      default="loop",
                      help="output language ('pretty' extracts Figure-7 "
                           "style tmp* scalars)")
    p_tr.add_argument("--trace", action="store_true",
                      help="print per-stage dependence/loop tables")
    p_tr.set_defaults(func=cmd_transform)

    p_run = sub.add_parser(
        "run", help="execute a nest under a chosen engine")
    add_common(p_run)
    p_run.add_argument("--steps", default=None,
                       help="transform with this step sequence first")
    p_run.add_argument("--force", action="store_true",
                       help="skip the dependence-vector legality test")
    p_run.add_argument("--size", type=int, default=12,
                       help="value bound to every symbolic invariant "
                            "(default 12)")
    p_run.add_argument("--engine", choices=ENGINE_CHOICES,
                       default="compiled",
                       help="execution engine (default compiled; "
                            "vectorized needs NumPy)")
    p_run.set_defaults(func=cmd_run)

    p_se = sub.add_parser(
        "search", help="beam-search a transformation sequence")
    add_common(p_se)
    p_se.add_argument("--depth", type=int, default=2,
                      help="beam search depth (default 2)")
    p_se.add_argument("--beam", type=int, default=8,
                      help="beam width (default 8)")
    p_se.add_argument("--scorer", choices=["parallelism", "time"],
                      default="parallelism",
                      help="candidate score: static parallelism "
                           "(default) or measured wall clock")
    p_se.add_argument("--engine", choices=ENGINE_CHOICES,
                      default="vectorized",
                      help="engine timed by --scorer time "
                           "(default vectorized)")
    p_se.add_argument("--size", type=int, default=12,
                      help="value bound to every symbolic invariant "
                           "for --scorer time (default 12)")
    add_model_guided(p_se)
    p_se.set_defaults(func=cmd_search)

    p_prof = sub.add_parser(
        "profile",
        help="profile the search/legality/execution pipeline as JSON")
    add_common(p_prof)
    p_prof.add_argument("--steps", default=None,
                        help="also profile this specific step sequence "
                             "(default: the search winner)")
    p_prof.add_argument("--no-search", action="store_true",
                        help="skip the beam search phase")
    p_prof.add_argument("--depth", type=int, default=2,
                        help="beam search depth (default 2)")
    p_prof.add_argument("--beam", type=int, default=8,
                        help="beam width (default 8)")
    p_prof.add_argument("--size", type=int, default=12,
                        help="value bound to every symbolic invariant "
                             "for the execution phases (default 12)")
    p_prof.add_argument("--engine", choices=ENGINE_CHOICES,
                        default="compiled",
                        help="engine timed for the run section "
                             "(default compiled; the address trace for "
                             "the cache simulation always comes from "
                             "the compiled engine)")
    add_model_guided(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_srv = sub.add_parser(
        "serve",
        help="run the long-lived transformation service (NDJSON over "
             "stdio or TCP)")
    mode = p_srv.add_mutually_exclusive_group()
    mode.add_argument("--stdio", action="store_true", default=True,
                      help="serve over stdin/stdout (default)")
    mode.add_argument("--tcp", action="store_true",
                      help="serve over a TCP socket instead of stdio")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address for --tcp (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=0,
                       help="port for --tcp (default 0 = ephemeral; the "
                            "bound port is announced on stderr)")
    p_srv.add_argument("--queue-max", dest="queue_max", type=int,
                       default=64, metavar="N",
                       help="admission queue bound; requests beyond it "
                            "get a typed backpressure error (default 64)")
    p_srv.add_argument("--batch-max", dest="batch_max", type=int,
                       default=8, metavar="N",
                       help="max requests drained per processing cycle "
                            "(default 8)")
    p_srv.add_argument("--request-timeout", dest="request_timeout",
                       type=float, default=None, metavar="SECONDS",
                       help="per-request wall-clock budget; overruns get "
                            "a typed timeout error")
    p_srv.add_argument("--engine", choices=ENGINE_CHOICES,
                       default="compiled",
                       help="default engine for run requests that do "
                            "not name one (default compiled)")
    p_srv.add_argument("--cache-max-entries", dest="cache_max_entries",
                       type=int, default=4096, metavar="N",
                       help="bound on the warm legality cache (LRU "
                            "eviction; default 4096)")
    p_srv.add_argument("--supervise", action="store_true",
                       help="with --tcp: run the server as a supervised "
                            "child, restarting on crash or hang with "
                            "backoff and warm-state restore")
    p_srv.add_argument("--fleet", type=int, default=0, metavar="N",
                       help="with --tcp: front a fleet of N supervised "
                            "workers behind this port, routing by "
                            "content-hash affinity with failover")
    p_srv.add_argument("--fleet-dir", dest="fleet_dir", metavar="PATH",
                       default=None,
                       help="directory for the fleet's heartbeat/"
                            "checkpoint/report files (default "
                            ".repro-fleet-PORT)")
    p_srv.add_argument("--heartbeat-file", dest="heartbeat_file",
                       metavar="PATH", default=None,
                       help="liveness file the server touches while its "
                            "loop is healthy (chosen automatically under "
                            "--supervise)")
    p_srv.add_argument("--hang-timeout", dest="hang_timeout", type=float,
                       default=10.0, metavar="SECONDS",
                       help="stale-heartbeat threshold before the "
                            "supervisor kills a hung child (default 10)")
    p_srv.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="warm-state checkpoint file: restored at "
                            "startup, rewritten periodically (chosen "
                            "automatically under --supervise)")
    p_srv.add_argument("--checkpoint-every", dest="checkpoint_every",
                       type=int, default=25, metavar="N",
                       help="checkpoint after every N processed requests "
                            "(default 25)")
    p_srv.add_argument("--max-restarts", dest="max_restarts", type=int,
                       default=5, metavar="N",
                       help="circuit breaker: give up after N restarts "
                            "inside the restart window (default 5)")
    p_srv.add_argument("--restart-window", dest="restart_window",
                       type=float, default=60.0, metavar="SECONDS",
                       help="window for the restart circuit breaker "
                            "(default 60)")
    p_srv.add_argument("--report", metavar="PATH", default=None,
                       help="write the supervisor's JSON restart report "
                            "to PATH")
    p_srv.add_argument("--chaos", metavar="SPEC", default=None,
                       help="arm fault injection, e.g. "
                            "'service.dispatch:crash:1,legality:error:2' "
                            "(see repro.resilience.chaos)")
    p_srv.add_argument("--chaos-seed", dest="chaos_seed", type=int,
                       default=0, metavar="N",
                       help="seed for probabilistic chaos rules "
                            "(default 0)")
    p_srv.add_argument("--chaos-state", dest="chaos_state",
                       metavar="PATH", default=None,
                       help="persist chaos firing counts across "
                            "supervised restarts (chosen automatically "
                            "under --supervise)")
    add_observe(p_srv)
    add_parallel(p_srv, jobs_help="size of the shared worker pool for "
                 "batched legality and parallel search (default 1)")
    add_model_guided(p_srv)
    p_srv.set_defaults(func=cmd_serve)

    p_cl = sub.add_parser(
        "client",
        help="replay an NDJSON request script against a service")
    p_cl.add_argument("script",
                      help="request script, one {\"op\", \"params\"} "
                           "object per line ('-' for stdin)")
    p_cl.add_argument("--connect", metavar="HOST:PORT", default=None,
                      help="use a running TCP server instead of spawning "
                           "a stdio server")
    p_cl.add_argument("--shutdown", action="store_true",
                      help="with --connect: ask the server to drain and "
                           "stop after the replay")
    p_cl.add_argument("--retries", type=int, default=0, metavar="N",
                      help="retry each request up to N times on "
                           "transport failures and retryable errors, "
                           "with idempotency keys so nothing re-executes "
                           "(default 0 = fail fast)")
    p_cl.add_argument("--attempt-timeout", dest="attempt_timeout",
                      type=float, default=None, metavar="SECONDS",
                      help="with --retries: per-attempt response "
                           "timeout; a hung server becomes a retried "
                           "transport failure")
    add_observe(p_cl)
    add_parallel(p_cl, jobs_help="--jobs for the spawned server "
                 "(ignored with --connect)")
    p_cl.set_defaults(func=cmd_client)

    p_st = sub.add_parser(
        "stats",
        help="fetch a running service's (or fleet's) telemetry "
             "snapshot as JSON")
    p_st.add_argument("--connect", metavar="HOST:PORT", required=True,
                      help="address of the running server or fleet "
                           "front end")
    p_st.add_argument("--watch", action="store_true",
                      help="poll repeatedly instead of one shot")
    p_st.add_argument("--interval", type=float, default=2.0,
                      metavar="SECONDS",
                      help="polling interval for --watch (default 2)")
    p_st.set_defaults(func=cmd_stats)

    p_fz = sub.add_parser(
        "fuzz",
        help="run the generative differential fuzzer (or replay the "
             "regression corpus)")
    p_fz.add_argument("--cases", type=int, default=500, metavar="N",
                      help="number of generated cases (default 500)")
    p_fz.add_argument("--seed", type=int, default=0, metavar="S",
                      help="generator seed; the whole run is a pure "
                           "function of (seed, case ids)")
    p_fz.add_argument("--start", type=int, default=0, metavar="K",
                      help="first case id (resume or shard a long run)")
    p_fz.add_argument("--matrix", default="core,search",
                      metavar="DIMS",
                      help="comma-separated oracle dimensions: core "
                           "(always on), search, service, fleet, chaos "
                           "(default core,search)")
    p_fz.add_argument("--corpus", metavar="DIR", default=None,
                      help="bank shrunk failure artifacts in DIR (also "
                           "the bank --replay reads; default for "
                           "--replay: tests/corpus/fuzz or "
                           "$REPRO_FUZZ_CORPUS)")
    p_fz.add_argument("--replay", action="store_true",
                      help="replay every artifact in the corpus bank "
                           "instead of generating cases")
    p_fz.add_argument("--no-shrink", dest="no_shrink",
                      action="store_true",
                      help="report failures raw, without auto-shrinking")
    p_fz.add_argument("--time-limit", dest="time_limit", type=float,
                      default=10.0, metavar="SECONDS",
                      help="per-oracle hang budget (default 10)")
    p_fz.add_argument("--json", metavar="PATH", default=None,
                      help="also write the JSON report to PATH")
    p_fz.add_argument("--quiet", action="store_true",
                      help="suppress periodic progress lines on stderr")
    add_observe(p_fz)
    p_fz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False)
    trace_path = getattr(args, "trace_json", None)
    observe = (profiling or trace_path is not None or
               args.command == "profile")
    tracer = obs.enable() if observe else None
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            if trace_path is not None:
                from repro.obs import distributed as dist
                if len(dist.get_collector()):
                    # Remote spans were shipped back to this process:
                    # export the stitched cross-process tree.
                    dist.export_stitched(trace_path, tracer)
                else:
                    tracer.export_jsonl(trace_path)
            if profiling:
                print(obs.profile_table(tracer), file=sys.stderr)
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
