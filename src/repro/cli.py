"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``show FILE``
    Parse and pretty-print a loop nest; ``--deps`` adds the analyzed
    dependence vectors, ``--bounds`` the LB/UB/STEP matrices.

``analyze FILE [--level gcd|banerjee|fm]``
    Print the dependence-vector set at the chosen test-ladder tier.

``legality FILE --steps SPEC``
    Run the unified legality test for a transformation sequence.

``transform FILE --steps SPEC [--force] [--emit loop|c|python] [--trace]``
    Generate code for the sequence (``--force`` skips the dependence
    half of the legality test); ``--trace`` prints the Figure-7-style
    per-stage dependence/loop tables.

``profile FILE [--steps SPEC] [--search] [--size N]``
    Run the full pipeline — dependence analysis, beam search (and/or the
    given sequence), code generation, compiled execution, cache
    simulation — with observability on, and print one machine-readable
    JSON document: per-phase profile, metrics snapshot, search and cache
    summaries.

Every command additionally accepts ``--profile`` (print the per-phase
span table to stderr when done) and ``--trace-json PATH`` (export the
raw span stream as JSON lines); both install the
:mod:`repro.obs` tracer for the duration of the command.

The ``SPEC`` mini-language is a semicolon-separated list of step
builders, evaluated left to right against the current nest depth::

    interchange(1,2); block(1,3,16); parallelize(1)
    skew(2,1); interchange(1,2)
    permute(3,1,2); coalesce(1,2)
    unimodular([[1,1],[1,0]])
    reverse(2); interleave(1,2,4,4); wavefront()

Loop numbers are 1-based, outermost first, as in the paper.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import List, Optional, Sequence

from repro import obs
from repro.core import (
    Block,
    BoundsMatrix,
    Coalesce,
    Interleave,
    Parallelize,
    ReversePermute,
    Transformation,
    Unimodular,
)
from repro.core.bounds_matrix import LB, STEP, UB
from repro.core.derived import wavefront as _wavefront
from repro.deps.analysis import analyze
from repro.expr.parser import parse_expr
from repro.ir import parse_nest
from repro.ir.emit import emit_c, emit_python
from repro.util.errors import ReproError
from repro.util.matrices import IntMatrix


class SpecError(ReproError):
    """A malformed --steps specification."""


def _split_calls(spec: str) -> List[str]:
    calls = [part.strip() for part in spec.split(";")]
    return [c for c in calls if c]


def _parse_call(text: str):
    """``name(arg, ...)`` -> (name, [args]); args via literal_eval with
    bare identifiers allowed (block sizes may be symbolic)."""
    open_paren = text.find("(")
    if open_paren < 0 or not text.endswith(")"):
        raise SpecError(f"malformed step {text!r}; expected name(args)")
    name = text[:open_paren].strip().lower()
    body = text[open_paren + 1:-1].strip()
    if not body:
        return name, []
    args = []
    depth = 0
    current = ""
    for ch in body + ",":
        if ch == "," and depth == 0:
            args.append(current.strip())
            current = ""
            continue
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        current += ch
    parsed = []
    for a in args:
        try:
            parsed.append(ast.literal_eval(a))
        except (ValueError, SyntaxError):
            parsed.append(a)  # symbolic size / identifier
    return name, parsed


def _ints(args, count: Optional[int] = None, what: str = "argument"):
    for a in args:
        if not isinstance(a, int):
            raise SpecError(f"expected integer {what}s, got {a!r}")
    if count is not None and len(args) != count:
        raise SpecError(f"expected {count} {what}(s), got {len(args)}")
    return list(args)


def build_step(name: str, args: List, n: int):
    """Instantiate one kernel template for a nest of current depth *n*."""
    if name == "interchange":
        a, b = _ints(args, 2, "loop number")
        perm = list(range(1, n + 1))
        perm[a - 1], perm[b - 1] = perm[b - 1], perm[a - 1]
        return ReversePermute(n, [False] * n, perm)
    if name == "permute":
        order = _ints(args, n, "loop number")
        perm = [0] * n
        for position, loop in enumerate(order, start=1):
            perm[loop - 1] = position
        return ReversePermute(n, [False] * n, perm)
    if name == "reverse":
        which = _ints(args, None, "loop number")
        rev = [k + 1 in which for k in range(n)]
        return ReversePermute(n, rev, list(range(1, n + 1)))
    if name == "revpermute":
        if (len(args) != 2 or not isinstance(args[0], list) or
                not isinstance(args[1], list)):
            raise SpecError("revpermute takes ([rev 0/1 flags], [perm]), "
                            "e.g. revpermute([0,1], [2,1])")
        rev = [bool(r) for r in args[0]]
        return ReversePermute(n, rev, args[1])
    if name == "skew":
        if len(args) == 2:
            target, source, factor = args[0], args[1], 1
        else:
            target, source, factor = _ints(args, 3, "skew parameter")
        return Unimodular(n, IntMatrix.skew(n, target - 1, source - 1,
                                            factor))
    if name == "unimodular":
        if len(args) != 1 or not isinstance(args[0], list):
            raise SpecError("unimodular takes one matrix, e.g. "
                            "unimodular([[1,1],[1,0]])")
        return Unimodular(n, args[0])
    if name == "wavefront":
        factors = _ints(args, None, "factor") if args else None
        return _wavefront(n, factors).steps[0]
    if name == "parallelize":
        which = _ints(args, None, "loop number")
        return Parallelize(n, [k + 1 in which for k in range(n)])
    if name in ("block", "tile"):
        if len(args) < 3:
            raise SpecError(f"{name} needs (i, j, size...)")
        i, j = _ints(args[:2], 2, "range bound")
        sizes = args[2:]
        precise = False
        if sizes and sizes[-1] == "precise":
            precise = True
            sizes = sizes[:-1]
        width = j - i + 1
        if len(sizes) == 1:
            sizes = sizes * width
        return Block(n, i, j, [_coerce_size(s) for s in sizes],
                     precise=precise)
    if name in ("stripmine", "strip_mine"):
        if len(args) != 2:
            raise SpecError("stripmine needs (loop, size)")
        k = _ints(args[:1], 1, "loop number")[0]
        return Block(n, k, k, [_coerce_size(args[1])])
    if name == "coalesce":
        i, j = _ints(args, 2, "range bound")
        return Coalesce(n, i, j)
    if name == "interleave":
        if len(args) < 3:
            raise SpecError("interleave needs (i, j, size...)")
        i, j = _ints(args[:2], 2, "range bound")
        sizes = args[2:]
        precise = False
        if sizes and sizes[-1] == "precise":
            precise = True
            sizes = sizes[:-1]
        width = j - i + 1
        if len(sizes) == 1:
            sizes = sizes * width
        return Interleave(n, i, j, [_coerce_size(s) for s in sizes],
                          precise=precise)
    raise SpecError(f"unknown step {name!r}")


def _coerce_size(s):
    if isinstance(s, int):
        return s
    if isinstance(s, str):
        return parse_expr(s)
    raise SpecError(f"bad size {s!r}")


def parse_steps(spec: str, depth: int) -> Transformation:
    """Build a Transformation from a SPEC string for a *depth*-deep nest.

    The sequence is peephole-reduced, so ``skew(2,1); interchange(1,2)``
    becomes the single fused Unimodular step of Figure 1.
    """
    steps = []
    n = depth
    for call in _split_calls(spec):
        name, args = _parse_call(call)
        step = build_step(name, args, n)
        steps.append(step)
        n = step.output_depth
    return Transformation(steps, n=depth).reduced()


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def _read_nest(path: str, sink_imperfect: bool = False):
    text = sys.stdin.read() if path == "-" else open(path).read()
    if sink_imperfect:
        from repro.ir import parse_imperfect, sink
        return sink(parse_imperfect(text))
    return parse_nest(text)


def cmd_show(args) -> int:
    nest = _read_nest(args.file, args.sink)
    print(nest.pretty())
    if args.deps:
        print(f"\ndependence vectors: {analyze(nest, level=args.level)}")
    if args.bounds:
        bm = BoundsMatrix.of_nest(nest)
        for which in (LB, UB, STEP):
            print(f"\n{which} =")
            print(bm.pretty(which))
        print()
        print(bm.pretty_types())
    return 0


def cmd_analyze(args) -> int:
    nest = _read_nest(args.file, args.sink)
    print(analyze(nest, level=args.level))
    return 0


def cmd_legality(args) -> int:
    nest = _read_nest(args.file, args.sink)
    T = parse_steps(args.steps, nest.depth)
    deps = analyze(nest, level=args.level)
    report = T.legality(nest, deps)
    print(f"sequence: {T.signature()}")
    print(f"dependence vectors: {deps}")
    print(f"legal: {report.legal}")
    if not report.legal:
        print(f"reason: {report.reason}")
    return 0 if report.legal else 1


def cmd_transform(args) -> int:
    nest = _read_nest(args.file, args.sink)
    T = parse_steps(args.steps, nest.depth)
    deps = analyze(nest, level=args.level)
    if args.trace:
        dep_trace = T.dep_set_trace(deps)
        loop_trace = T.loop_trace(nest)
        names = ["START"] + [s.kernel_name for s in T.steps]
        for name, d, loops in zip(names, dep_trace, loop_trace):
            print(f"-- {name}: D = {d}")
            for lp in loops:
                print(f"     {lp.header()}")
        print()
    if args.force:
        out = T.apply(nest, check=False)
    else:
        report = T.legality(nest, deps)
        if not report.legal:
            print(f"ILLEGAL: {report.reason}", file=sys.stderr)
            return 1
        out = T.apply(nest, deps)
    if args.emit == "c":
        print(emit_c(out))
    elif args.emit == "python":
        from repro.deps.analysis.references import inferred_array_names
        print(emit_python(out, sorted(inferred_array_names(out))))
    elif args.emit == "pretty":
        from repro.ir.pretty_temps import pretty_with_temps
        print(pretty_with_temps(out))
    else:
        print(out.pretty())
    return 0


def cmd_search(args) -> int:
    """Beam-search a transformation sequence and print a JSON summary.

    ``--jobs N`` shards candidate evaluation across N forked worker
    processes; results are guaranteed identical to ``--jobs 1`` (the
    ``parallel`` block in the output records the worker accounting).
    """
    from repro.optimize.search import search

    nest = _read_nest(args.file, args.sink)
    deps = analyze(nest, level=args.level)
    result = search(nest, deps, depth=args.depth, beam=args.beam,
                    jobs=args.jobs,
                    candidate_timeout=args.candidate_timeout)
    winner = result.transformation
    doc = {
        "input": {"file": args.file, "level": args.level,
                  "depth": args.depth, "beam": args.beam,
                  "jobs": args.jobs},
        "winner": winner.signature() if winner else None,
        "spec": winner.to_spec() if winner is not None else None,
        "score": result.score if result.score != float("-inf") else None,
        "explored": result.explored,
        "legal": result.legal_count,
        "timeouts": result.timeouts,
        "cache_stats": result.cache_stats,
        "parallel": result.parallel,
    }
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_profile(args) -> int:
    """Profile the whole pipeline on one nest and print a JSON document.

    The tracer is already installed by :func:`main` (the ``profile``
    command always runs observed), so every instrumented layer — the
    dependence analyzer, the beam search and its legality cache, the
    compiled engine, the cache simulator — reports into the same span
    stream and metrics registry that this command renders.
    """
    from repro.cache.simulator import Layout, simulate_trace
    from repro.core.legality_cache import LegalityCache
    from repro.optimize.search import search
    from repro.runtime.compiled import run_compiled

    nest = _read_nest(args.file, args.sink)
    symbols = {name: args.size for name in sorted(nest.invariants())}
    deps = analyze(nest, level=args.level)

    doc_search = None
    winner = None
    if not args.no_search:
        result = search(nest, deps, depth=args.depth, beam=args.beam,
                        jobs=args.jobs,
                        candidate_timeout=args.candidate_timeout)
        winner = result.transformation
        doc_search = {
            "winner": winner.signature() if winner else None,
            "score": (result.score
                      if result.score != float("-inf") else None),
            "explored": result.explored,
            "legal": result.legal_count,
            "cache_stats": result.cache_stats,
            "parallel": result.parallel,
        }

    if args.steps:
        chosen = parse_steps(args.steps, nest.depth)
    else:
        chosen = winner or Transformation.identity(nest.depth)
    report = LegalityCache().legality(chosen, nest, deps)

    doc_run = {"sequence": chosen.signature(), "legal": report.legal}
    doc_cachesim = None
    try:
        out = chosen.apply(nest, deps) if report.legal else nest
        if not report.legal:
            doc_run["note"] = ("sequence illegal; profiled the original "
                               "nest instead")
        result = run_compiled(out, {}, symbols=symbols,
                              trace_addresses=True)
        doc_run["iterations"] = result.body_count
        doc_run["accesses"] = len(result.address_trace)
        if result.address_trace:
            # Extents observed in the trace are exact for the layout.
            extents = {}
            for name, index, _kind in result.address_trace:
                dims = extents.setdefault(name,
                                          [[ix, ix] for ix in index])
                for d, ix in enumerate(index):
                    if ix < dims[d][0]:
                        dims[d][0] = ix
                    if ix > dims[d][1]:
                        dims[d][1] = ix
            layout = Layout()
            for name in sorted(extents):
                layout.register(name, [tuple(e) for e in extents[name]])
            stats = simulate_trace(result.address_trace, layout)
            doc_cachesim = {
                "accesses": stats.accesses,
                "misses": stats.misses,
                "miss_rate": round(stats.miss_rate, 6),
            }
    except ReproError as exc:
        doc_run["error"] = str(exc)

    doc = obs.profile_document()
    doc["input"] = {"file": args.file, "level": args.level,
                    "size": args.size}
    doc["search"] = doc_search
    doc["run"] = doc_run
    doc["cachesim"] = doc_cachesim
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iteration-reordering loop transformations "
                    "(Sarkar & Thekkath, PLDI 1992)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="loop nest file ('-' for stdin)")
        p.add_argument("--level", choices=["gcd", "banerjee", "fm"],
                       default="fm", help="dependence test ladder depth")
        p.add_argument("--sink", action="store_true",
                       help="accept an imperfect nest and sink it into a "
                            "guarded perfect nest first")
        p.add_argument("--profile", action="store_true",
                       help="run with the tracer on and print the "
                            "per-phase profile table to stderr")
        p.add_argument("--trace-json", metavar="PATH", default=None,
                       help="run with the tracer on and export the span "
                            "stream to PATH as JSON lines")

    p_show = sub.add_parser("show", help="parse and pretty-print a nest")
    add_common(p_show)
    p_show.add_argument("--deps", action="store_true",
                        help="also print analyzed dependence vectors")
    p_show.add_argument("--bounds", action="store_true",
                        help="also print the LB/UB/STEP matrices")
    p_show.set_defaults(func=cmd_show)

    p_an = sub.add_parser("analyze", help="print the dependence set")
    add_common(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_leg = sub.add_parser("legality", help="test a sequence's legality")
    add_common(p_leg)
    p_leg.add_argument("--steps", required=True, help="step specification")
    p_leg.set_defaults(func=cmd_legality)

    p_tr = sub.add_parser("transform", help="generate transformed code")
    add_common(p_tr)
    p_tr.add_argument("--steps", required=True, help="step specification")
    p_tr.add_argument("--force", action="store_true",
                      help="skip the dependence-vector legality test")
    p_tr.add_argument("--emit", choices=["loop", "c", "python", "pretty"],
                      default="loop",
                      help="output language ('pretty' extracts Figure-7 "
                           "style tmp* scalars)")
    p_tr.add_argument("--trace", action="store_true",
                      help="print per-stage dependence/loop tables")
    p_tr.set_defaults(func=cmd_transform)

    def add_parallel(p):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for candidate evaluation "
                            "(1 = serial; results are identical either way)")
        p.add_argument("--candidate-timeout", dest="candidate_timeout",
                       type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget per candidate scoring; "
                            "overrunning candidates score -inf")

    p_se = sub.add_parser(
        "search", help="beam-search a transformation sequence")
    add_common(p_se)
    p_se.add_argument("--depth", type=int, default=2,
                      help="beam search depth (default 2)")
    p_se.add_argument("--beam", type=int, default=8,
                      help="beam width (default 8)")
    add_parallel(p_se)
    p_se.set_defaults(func=cmd_search)

    p_prof = sub.add_parser(
        "profile",
        help="profile the search/legality/execution pipeline as JSON")
    add_common(p_prof)
    p_prof.add_argument("--steps", default=None,
                        help="also profile this specific step sequence "
                             "(default: the search winner)")
    p_prof.add_argument("--no-search", action="store_true",
                        help="skip the beam search phase")
    p_prof.add_argument("--depth", type=int, default=2,
                        help="beam search depth (default 2)")
    p_prof.add_argument("--beam", type=int, default=8,
                        help="beam width (default 8)")
    p_prof.add_argument("--size", type=int, default=12,
                        help="value bound to every symbolic invariant "
                             "for the execution phases (default 12)")
    add_parallel(p_prof)
    p_prof.set_defaults(func=cmd_profile)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False)
    trace_path = getattr(args, "trace_json", None)
    observe = (profiling or trace_path is not None or
               args.command == "profile")
    tracer = obs.enable() if observe else None
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            if trace_path is not None:
                tracer.export_jsonl(trace_path)
            if profiling:
                print(obs.profile_table(tracer), file=sys.stderr)
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
