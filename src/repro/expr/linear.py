"""Affine-form extraction and the paper's ``type(expr, x)`` lattice.

Section 4.1 of the paper classifies how a bounds expression ``expr`` uses
an index variable ``x``::

    type(expr, x) = const      if expr is a compile-time constant
                    invar      if expr is invariant in x
                    linear     if expr is linear in x with a compile-time
                               constant coefficient
                    nonlinear  otherwise

with the total order ``const < invar < linear < nonlinear``.  A
precondition ``type(expr, x) <= V`` is satisfied by any type at or below
``V`` in the lattice.

Max/min functions are nonlinear in general, but the paper's special case
(Section 4.1) treats a *lower* bound that is a ``max`` of linear terms
(with positive step) or an *upper* bound that is a ``min`` of linear terms
as linear, since each term is a separate linear inequality.  That decision
depends on bound position and step sign, so it is exposed here as
:func:`bound_type_through_minmax` and applied by the bounds-matrix layer.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.expr.nodes import (
    Add,
    Call,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    add,
    free_vars,
    mul,
)


class BoundType(enum.IntEnum):
    """The paper's type lattice: const ⊑ invar ⊑ linear ⊑ nonlinear."""

    CONST = 0
    INVAR = 1
    LINEAR = 2
    NONLINEAR = 3

    def leq(self, other: "BoundType") -> bool:
        """Lattice order test (a total order here)."""
        return int(self) <= int(other)

    @staticmethod
    def lub(*types: "BoundType") -> "BoundType":
        """Least upper bound of any number of types (CONST for none)."""
        result = BoundType.CONST
        for t in types:
            if int(t) > int(result):
                result = t
        return result

    def __str__(self):
        return self.name.lower()


class AffineForm:
    """``expr == sum(coeffs[v] * v) + rest`` with integer coefficients.

    *rest* is invariant in the variables the form was extracted against.
    """

    __slots__ = ("coeffs", "rest")

    def __init__(self, coeffs: Dict[str, int], rest: Expr):
        self.coeffs = {v: c for v, c in coeffs.items() if c != 0}
        self.rest = rest

    def coefficient(self, name: str) -> int:
        return self.coeffs.get(name, 0)

    def to_expr(self) -> Expr:
        terms = [mul(Const(c), Var(v)) for v, c in sorted(self.coeffs.items())]
        terms.append(self.rest)
        return add(*terms)

    def __repr__(self):
        return f"AffineForm({self.coeffs!r}, rest={self.rest})"

    def __eq__(self, other):
        return (isinstance(other, AffineForm) and
                self.coeffs == other.coeffs and self.rest == other.rest)


def affine_form(e: Expr, wrt: Iterable[str]) -> Optional[AffineForm]:
    """Extract an affine form of *e* over the variables *wrt*.

    Returns ``None`` when *e* is not affine in those variables with
    compile-time integer coefficients (the paper's `linear` requirement).
    Variables outside *wrt* are left symbolic inside ``rest``.
    """
    wanted: Set[str] = set(wrt)

    def walk(node: Expr) -> Optional[Tuple[Dict[str, int], list]]:
        if not (free_vars(node) & wanted):
            return {}, [node]
        if isinstance(node, Var):
            return {node.name: 1}, []
        if isinstance(node, Add):
            coeffs: Dict[str, int] = {}
            rests: list = []
            for t in node.terms:
                sub = walk(t)
                if sub is None:
                    return None
                for v, c in sub[0].items():
                    coeffs[v] = coeffs.get(v, 0) + c
                rests.extend(sub[1])
            return coeffs, rests
        if isinstance(node, Mul):
            # Normalization distributes constants over sums, so at this
            # point a product involving a wanted variable must be
            # Const * Var to qualify as linear.
            factors = list(node.factors)
            constant = 1
            symbolic = []
            for f in factors:
                if isinstance(f, Const):
                    constant *= f.value
                else:
                    symbolic.append(f)
            touching = [f for f in symbolic if free_vars(f) & wanted]
            if len(touching) != 1 or not isinstance(touching[0], Var):
                return None
            if len(symbolic) != 1:
                # e.g. n * i: coefficient of i is not a compile-time const.
                return None
            return {touching[0].name: constant}, []
        # FloorDiv / CeilDiv / Mod / Min / Max / Call touching a wanted
        # variable are nonlinear by the paper's definition.
        return None

    result = walk(e)
    if result is None:
        return None
    coeffs, rests = result
    return AffineForm(coeffs, add(*rests) if rests else Const(0))


def bound_type(e: Expr, x: str) -> BoundType:
    """The paper's ``type(expr, x)`` for a single expression node."""
    if isinstance(e, Const):
        return BoundType.CONST
    if x not in free_vars(e):
        return BoundType.INVAR
    if affine_form(e, (x,)) is not None:
        return BoundType.LINEAR
    return BoundType.NONLINEAR


def bound_type_through_minmax(e: Expr, x: str,
                              allow: Optional[str] = None) -> BoundType:
    """``type(expr, x)`` honouring the max/min special case.

    *allow* is ``"max"`` for positions where a max of linear terms is
    itself linear (lower bound, positive step), ``"min"`` for the dual
    case, or ``None`` to disable the special case entirely.
    """
    if allow == "max" and isinstance(e, Max):
        return BoundType.lub(*[bound_type(a, x) for a in e.args])
    if allow == "min" and isinstance(e, Min):
        return BoundType.lub(*[bound_type(a, x) for a in e.args])
    return bound_type(e, x)


def classify_over(e: Expr, variables: Iterable[str]) -> Dict[str, BoundType]:
    """Map each variable name to ``type(e, var)``; convenience for display."""
    return {v: bound_type(e, v) for v in variables}
