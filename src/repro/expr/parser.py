"""A small recursive-descent parser for bound/subscript expressions.

Accepts the paper's surface syntax, e.g.::

    max(n, 3)            min(2, i + 512)
    colstr(j + 1) - 1    sqrt(i) / 2
    2*j                  n + n - 2

``/`` parses as exact floor division (loop bounds are integral), ``%`` as
floored modulus.  ``min``, ``max``, ``mod``, ``div``, ``ceil``, ``abs``
and ``sgn`` are recognized builders; any other identifier followed by a
parenthesis becomes an opaque :class:`~repro.expr.nodes.Call`.

The tokenizer is shared with the loop-nest parser in :mod:`repro.ir`.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.expr.nodes import (
    Expr,
    abs_,
    add,
    call,
    ceildiv,
    const,
    floordiv,
    mod,
    mul,
    neg,
    sgn,
    sub,
    var,
    vmax,
    vmin,
)
from repro.resilience import guards as _guards
from repro.util.errors import ParseError


class Token(NamedTuple):
    kind: str          # "int" | "ident" | "op" | "newline" | "eof"
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>[!#][^\n]*)
  | (?P<newline>\n)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\+=|==|<=|>=|<|>|=|\+|-|\*|/|%|\(|\)|,|:)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Split *text* into tokens; ``!`` and ``#`` start line comments."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}",
                             line=line, column=pos - line_start + 1)
        kind = m.lastgroup
        value = m.group()
        column = pos - line_start + 1
        pos = m.end()
        if kind == "ws" or kind == "comment":
            continue
        if kind == "newline":
            tokens.append(Token("newline", "\n", line, column))
            line += 1
            line_start = pos
            continue
        tokens.append(Token(kind, value, line, column))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


class TokenStream:
    """Cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0
        # Recursion-depth accounting shared by every recursive-descent
        # rule that runs over this stream (expression nesting here, loop
        # nesting in repro.ir.parser); guarded against
        # repro.resilience.guards.limits().
        self.depth = 0

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            actual = self.peek()
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {actual.text or actual.kind!r}",
                line=actual.line, column=actual.column)
        return tok

    def skip_newlines(self) -> None:
        while self.peek().kind == "newline":
            self.next()


_BUILDERS = {
    "min": vmin,
    "max": vmax,
    "mod": mod,
    "div": floordiv,
    "ceil": ceildiv,
    "abs": abs_,
    "sgn": sgn,
}


def _build(builder, tok: Token, *args) -> Expr:
    """Invoke a smart constructor at the parse boundary, converting its
    domain errors into positioned :class:`ParseError`\\ s.

    The constructors are a programmatic API and keep their natural
    exceptions (``floordiv(i, 0)`` raises ``ZeroDivisionError``), but
    the *parser* promises "ParseError or success, nothing else" — a
    source text like ``1/0``, ``mod(i)`` or ``min()`` is bad input, not
    a caller bug, so constant-fold division by zero
    (``ZeroDivisionError``), wrong builder arity (``TypeError``) and
    empty ``min``/``max`` (``ValueError``) all surface as typed parse
    errors carrying the offending position.
    """
    try:
        return builder(*args)
    except ZeroDivisionError as exc:
        raise ParseError(f"division by constant zero: {exc}",
                         line=tok.line, column=tok.column) from None
    except TypeError as exc:
        raise ParseError(f"bad arguments for {tok.text!r}: {exc}",
                         line=tok.line, column=tok.column) from None
    except ValueError as exc:
        raise ParseError(f"bad arguments for {tok.text!r}: {exc}",
                         line=tok.line, column=tok.column) from None


def _enter(stream: TokenStream) -> None:
    """Depth guard for the recursive rules: a pathologically nested
    input ("((((...))))", "----x") must fail as a typed ParseError with
    a position, not as a RecursionError from an arbitrary frame."""
    stream.depth += 1
    if stream.depth > _guards.limits().max_expr_depth:
        tok = stream.peek()
        raise ParseError(
            f"expression nesting exceeds {_guards.limits().max_expr_depth} "
            f"levels (REPRO_MAX_EXPR_DEPTH)",
            line=tok.line, column=tok.column)


def parse_expression(stream: TokenStream) -> Expr:
    """Parse an expression from *stream* (stops at the first non-expression
    token, which the caller consumes)."""
    _enter(stream)
    try:
        return _parse_additive(stream)
    finally:
        stream.depth -= 1


def _parse_additive(stream: TokenStream) -> Expr:
    result = _parse_multiplicative(stream)
    while True:
        if stream.accept("op", "+"):
            result = add(result, _parse_multiplicative(stream))
        elif stream.accept("op", "-"):
            result = sub(result, _parse_multiplicative(stream))
        else:
            return result


def _parse_multiplicative(stream: TokenStream) -> Expr:
    result = _parse_unary(stream)
    while True:
        tok = stream.peek()
        if stream.accept("op", "*"):
            result = mul(result, _parse_unary(stream))
        elif stream.accept("op", "/"):
            result = _build(floordiv, tok, result, _parse_unary(stream))
        elif stream.accept("op", "%"):
            result = _build(mod, tok, result, _parse_unary(stream))
        else:
            return result


def _parse_unary(stream: TokenStream) -> Expr:
    _enter(stream)
    try:
        if stream.accept("op", "-"):
            return neg(_parse_unary(stream))
        if stream.accept("op", "+"):
            return _parse_unary(stream)
        return _parse_atom(stream)
    finally:
        stream.depth -= 1


def _parse_atom(stream: TokenStream) -> Expr:
    tok = stream.peek()
    if tok.kind == "int":
        stream.next()
        return const(int(tok.text))
    if tok.kind == "ident":
        stream.next()
        if stream.accept("op", "("):
            args = [parse_expression(stream)]
            while stream.accept("op", ","):
                args.append(parse_expression(stream))
            stream.expect("op", ")")
            builder = _BUILDERS.get(tok.text)
            if builder is not None:
                return _build(builder, tok, *args)
            return call(tok.text, *args)
        return var(tok.text)
    if stream.accept("op", "("):
        inner = parse_expression(stream)
        stream.expect("op", ")")
        return inner
    raise ParseError(f"expected expression, found {tok.text or tok.kind!r}",
                     line=tok.line, column=tok.column)


def parse_expr(text: str) -> Expr:
    """Parse a standalone expression string."""
    _guards.check_source_size(text, "expression")
    stream = TokenStream(tokenize(text))
    stream.skip_newlines()
    result = parse_expression(stream)
    stream.skip_newlines()
    tok = stream.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}",
                         line=tok.line, column=tok.column)
    return result
