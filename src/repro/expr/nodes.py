"""Symbolic integer expressions for loop bounds and subscripts.

The framework manipulates loop bound expressions symbolically: bounds may
mention integer constants, index variables of enclosing loops, loop-nest
invariants (``n``), ``max``/``min`` of several terms, exact floor/ceiling
division, ``mod``, ``abs``/``sgn``, and opaque calls such as ``colstr(j)``
(Figure 4(c) of the paper) or ``sqrt(i)`` (Figure 5).

Expressions are immutable and hash-consed *structurally* (equal structure
compares and hashes equal).  All construction goes through the smart
constructors at the bottom of this module (:func:`add`, :func:`mul`,
:func:`vmin`, ...) which normalize aggressively:

* sums are flattened, constants folded, like terms collected;
* products are flattened, constants folded, and distributed over sums
  (bounded, to keep normal forms small);
* ``min``/``max`` are flattened, deduplicated, and constant arguments
  folded; arguments whose difference is a known constant are pruned;
* ``div``/``mod`` simplify for constant operands and unit divisors.

The normal form gives the linear-form extraction in
:mod:`repro.expr.linear` a trivially canonical input.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.util.intmath import ceil_div, floor_div, sign

# Maximum number of terms we are willing to create when distributing a
# product over sums.  Past this, the product is kept factored (still a
# valid expression, merely less canonical).
_DISTRIBUTE_LIMIT = 64


class Expr:
    """Base class of all expression nodes.  Immutable."""

    __slots__ = ("_hash", "_free")

    # Subclasses fill in _key() returning a hashable structural identity.

    def _key(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other):
        return self is other or (
            type(self) is type(other) and self._key() == other._key())

    def __hash__(self):
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", h)
        return h

    def __setattr__(self, name, value):
        # Allow only the lazily-cached private fields to be set.
        if name in ("_hash", "_free"):
            object.__setattr__(self, name, value)
        else:
            raise AttributeError("expressions are immutable")

    # The guarded __setattr__ breaks pickle's default slot-state
    # restoration, so spell the state protocol out.  ``_hash`` caches
    # ``hash(str)`` values, which are salted per process — dropping it
    # keeps a pickled expression from carrying a foreign process's hash.
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if name != "_hash" and hasattr(self, name):
                    state[name] = getattr(self, name)
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # Operator sugar so tests and examples read naturally -----------------

    def __add__(self, other):
        return add(self, _coerce(other))

    def __radd__(self, other):
        return add(_coerce(other), self)

    def __sub__(self, other):
        return sub(self, _coerce(other))

    def __rsub__(self, other):
        return sub(_coerce(other), self)

    def __mul__(self, other):
        return mul(self, _coerce(other))

    def __rmul__(self, other):
        return mul(_coerce(other), self)

    def __neg__(self):
        return neg(self)

    def __repr__(self):
        return f"Expr({to_str(self)})"

    def __str__(self):
        return to_str(self)


def _coerce(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return Const(value)
    raise TypeError(f"cannot use {value!r} as an expression")


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"Const requires an int, got {value!r}")
        object.__setattr__(self, "value", value)

    def _key(self):
        return self.value


class Var(Expr):
    """A named integer variable (loop index or loop-nest invariant)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise TypeError("Var requires a non-empty name")
        object.__setattr__(self, "name", name)

    def _key(self):
        return self.name


class Add(Expr):
    """A flattened n-ary sum.  Use :func:`add` to construct."""

    __slots__ = ("terms",)

    def __init__(self, terms: Tuple[Expr, ...]):
        object.__setattr__(self, "terms", terms)

    def _key(self):
        return self.terms


class Mul(Expr):
    """A flattened n-ary product.  Use :func:`mul` to construct."""

    __slots__ = ("factors",)

    def __init__(self, factors: Tuple[Expr, ...]):
        object.__setattr__(self, "factors", factors)

    def _key(self):
        return self.factors


class FloorDiv(Expr):
    """``floor(num / den)``; use :func:`floordiv`."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def _key(self):
        return (self.num, self.den)


class CeilDiv(Expr):
    """``ceil(num / den)``; use :func:`ceildiv`."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def _key(self):
        return (self.num, self.den)


class Mod(Expr):
    """Floored modulus ``a - b*floor(a/b)``; use :func:`mod`."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def _key(self):
        return (self.num, self.den)


class Min(Expr):
    """n-ary minimum; use :func:`vmin`."""

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", args)

    def _key(self):
        return self.args


class Max(Expr):
    """n-ary maximum; use :func:`vmax`."""

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", args)

    def _key(self):
        return self.args


class Call(Expr):
    """An opaque function call such as ``colstr(j)`` or ``sqrt(i)``.

    The framework treats calls as nonlinear black boxes.  A few pure
    functions (``abs``, ``sgn``) fold when all arguments are constant.
    """

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Tuple[Expr, ...]):
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", args)

    def _key(self):
        return (self.func, self.args)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

ZERO = Const(0)
ONE = Const(1)


def const(value: int) -> Const:
    """Integer literal expression."""
    return Const(value)


def var(name: str) -> Var:
    """Named variable expression."""
    return Var(name)


def _split_coeff(e: Expr) -> Tuple[int, Optional[Expr]]:
    """Split *e* into (integer coefficient, residual factor or None)."""
    if isinstance(e, Const):
        return e.value, None
    if isinstance(e, Mul) and isinstance(e.factors[0], Const):
        c = e.factors[0].value
        rest = e.factors[1:]
        if len(rest) == 1:
            return c, rest[0]
        return c, Mul(rest)
    return 1, e


def _sort_key(e: Expr):
    return (type(e).__name__, to_str(e))


def add(*terms) -> Expr:
    """Normalized sum of the given expressions/ints."""
    flat = []
    stack = [_coerce(t) for t in reversed(terms)]
    while stack:
        t = stack.pop()
        if isinstance(t, Add):
            stack.extend(reversed(t.terms))
        else:
            flat.append(t)
    constant = 0
    buckets: Dict[Expr, int] = {}
    order = []
    for t in flat:
        c, rest = _split_coeff(t)
        if rest is None:
            constant += c
            continue
        if rest not in buckets:
            buckets[rest] = 0
            order.append(rest)
        buckets[rest] += c
    result_terms = []
    for rest in sorted(order, key=_sort_key):
        c = buckets[rest]
        if c == 0:
            continue
        result_terms.append(rest if c == 1 else _raw_mul(c, rest))
    if constant != 0:
        result_terms.append(Const(constant))
    if not result_terms:
        return ZERO
    if len(result_terms) == 1:
        return result_terms[0]
    return Add(tuple(result_terms))


def _raw_mul(c: int, rest: Expr) -> Expr:
    """c * rest with c a plain non-zero, non-one integer, rest non-Add."""
    if isinstance(rest, Mul):
        return Mul((Const(c),) + rest.factors)
    return Mul((Const(c), rest))


def sub(a, b) -> Expr:
    """``a - b``."""
    return add(_coerce(a), neg(_coerce(b)))


def neg(a) -> Expr:
    """``-a``."""
    return mul(Const(-1), _coerce(a))


def mul(*factors) -> Expr:
    """Normalized product of the given expressions/ints."""
    flat = []
    stack = [_coerce(f) for f in reversed(factors)]
    while stack:
        f = stack.pop()
        if isinstance(f, Mul):
            stack.extend(reversed(f.factors))
        else:
            flat.append(f)
    constant = 1
    rest = []
    for f in flat:
        if isinstance(f, Const):
            constant *= f.value
        else:
            rest.append(f)
    if constant == 0:
        return ZERO
    if not rest:
        return Const(constant)
    # Distribute over sums when the expansion stays small.
    sums = [f for f in rest if isinstance(f, Add)]
    if sums:
        n_terms = 1
        for s in sums:
            n_terms *= len(s.terms)
        if n_terms <= _DISTRIBUTE_LIMIT:
            others = [f for f in rest if not isinstance(f, Add)]
            expanded = [[]]
            for s in sums:
                expanded = [acc + [t] for acc in expanded for t in s.terms]
            return add(*[
                mul(Const(constant), *(others + combo)) for combo in expanded
            ])
    rest.sort(key=_sort_key)
    if constant == 1 and len(rest) == 1:
        return rest[0]
    if constant == 1:
        return Mul(tuple(rest))
    return Mul((Const(constant),) + tuple(rest))


def floordiv(a, b) -> Expr:
    """``floor(a / b)`` with constant folding and unit-divisor removal."""
    a, b = _coerce(a), _coerce(b)
    if isinstance(b, Const):
        if b.value == 0:
            raise ZeroDivisionError("floordiv by constant zero")
        if b.value == 1:
            return a
        if isinstance(a, Const):
            return Const(floor_div(a.value, b.value))
        # floor(floor(x/m)/n) == floor(x/(m*n)) for positive divisors.
        if (b.value > 0 and isinstance(a, FloorDiv) and
                isinstance(a.den, Const) and a.den.value > 0):
            return floordiv(a.num, Const(a.den.value * b.value))
        # (c*e) / b when b divides every additive coefficient exactly is
        # not safe in general (floor of sum != sum of floors), so we only
        # fold the all-constant case and exact single products.
        c, rest = _split_coeff(a)
        if rest is not None and c % b.value == 0:
            return mul(Const(c // b.value), rest)
    if a == b:
        return ONE
    return FloorDiv(a, b)


def ceildiv(a, b) -> Expr:
    """``ceil(a / b)`` with constant folding and unit-divisor removal."""
    a, b = _coerce(a), _coerce(b)
    if isinstance(b, Const):
        if b.value == 0:
            raise ZeroDivisionError("ceildiv by constant zero")
        if b.value == 1:
            return a
        if isinstance(a, Const):
            return Const(ceil_div(a.value, b.value))
        # ceil(ceil(x/m)/n) == ceil(x/(m*n)) for positive divisors.
        if (b.value > 0 and isinstance(a, CeilDiv) and
                isinstance(a.den, Const) and a.den.value > 0):
            return ceildiv(a.num, Const(a.den.value * b.value))
        c, rest = _split_coeff(a)
        if rest is not None and c % b.value == 0:
            return mul(Const(c // b.value), rest)
    if a == b:
        return ONE
    return CeilDiv(a, b)


def mod(a, b) -> Expr:
    """Floored modulus with constant folding; ``mod(x, 1) == 0``."""
    a, b = _coerce(a), _coerce(b)
    if isinstance(b, Const):
        if b.value == 0:
            raise ZeroDivisionError("mod by constant zero")
        if b.value in (1, -1):
            return ZERO
        if isinstance(a, Const):
            return Const(a.value - b.value * floor_div(a.value, b.value))
    if a == b:
        return ZERO
    return Mod(a, b)


def _fold_minmax(args, op: Callable[[int, int], int], cls):
    flat = []
    stack = [_coerce(a) for a in reversed(args)]
    while stack:
        a = stack.pop()
        if isinstance(a, cls):
            stack.extend(reversed(a.args))
        else:
            flat.append(a)
    constant = None
    seen = []
    for a in flat:
        if isinstance(a, Const):
            constant = a.value if constant is None else op(constant, a.value)
        elif a not in seen:
            seen.append(a)
    # Prune arguments dominated by another argument: if (x - y) folds to a
    # constant we know which one wins.
    pruned = []
    for x in seen:
        dominated = False
        for y in seen:
            if x is y:
                continue
            diff = sub(x, y)
            if isinstance(diff, Const):
                # For Max: x is dominated when x <= y, i.e. diff <= 0;
                # ties keep the later element, so break ties by identity.
                if cls is Max and (diff.value < 0 or
                                   (diff.value == 0 and seen.index(y) < seen.index(x))):
                    dominated = True
                    break
                if cls is Min and (diff.value > 0 or
                                   (diff.value == 0 and seen.index(y) < seen.index(x))):
                    dominated = True
                    break
        if not dominated:
            pruned.append(x)
    seen = pruned
    result = list(seen)
    if constant is not None:
        result.append(Const(constant))
    if not result:
        raise ValueError("min/max of no arguments")
    if len(result) == 1:
        return result[0]
    result.sort(key=_sort_key)
    return cls(tuple(result))


def vmin(*args) -> Expr:
    """n-ary minimum (``min`` is taken by the builtin)."""
    return _fold_minmax(args, min, Min)


def vmax(*args) -> Expr:
    """n-ary maximum."""
    return _fold_minmax(args, max, Max)


_FOLDABLE_CALLS: Dict[str, Callable[..., int]] = {
    "abs": lambda x: abs(x),
    "sgn": lambda x: sign(x),
}


def call(func: str, *args) -> Expr:
    """Opaque call; folds ``abs``/``sgn`` over constant arguments."""
    cargs = tuple(_coerce(a) for a in args)
    if func in _FOLDABLE_CALLS and all(isinstance(a, Const) for a in cargs):
        return Const(_FOLDABLE_CALLS[func](*[a.value for a in cargs]))
    if func == "abs" and len(cargs) == 1:
        # abs(-e) == abs(e); normalize the sign of the leading coefficient.
        c, rest = _split_coeff(cargs[0])
        if c < 0:
            cargs = (mul(Const(-c), rest) if rest is not None else Const(-c),)
    return Call(func, cargs)


def abs_(a) -> Expr:
    """``abs(a)`` as an expression."""
    return call("abs", a)


def sgn(a) -> Expr:
    """``sgn(a)`` as an expression (-1, 0 or +1)."""
    return call("sgn", a)


# ---------------------------------------------------------------------------
# Traversal, substitution, evaluation
# ---------------------------------------------------------------------------

def children(e: Expr) -> Tuple[Expr, ...]:
    """Immediate sub-expressions of *e* (empty for leaves)."""
    if isinstance(e, (Const, Var)):
        return ()
    if isinstance(e, Add):
        return e.terms
    if isinstance(e, Mul):
        return e.factors
    if isinstance(e, (FloorDiv, CeilDiv, Mod)):
        return (e.num, e.den)
    if isinstance(e, (Min, Max)):
        return e.args
    if isinstance(e, Call):
        return e.args
    raise TypeError(f"unknown expression node {e!r}")


def free_vars(e: Expr) -> frozenset:
    """The set of variable names occurring in *e* (cached per node)."""
    cached = getattr(e, "_free", None)
    if cached is not None:
        return cached
    if isinstance(e, Var):
        result = frozenset((e.name,))
    elif isinstance(e, Const):
        result = frozenset()
    else:
        result = frozenset().union(*(free_vars(c) for c in children(e)))
    object.__setattr__(e, "_free", result)
    return result


def contains_call(e: Expr) -> bool:
    """True iff *e* contains any opaque :class:`Call` node."""
    if isinstance(e, Call):
        return True
    return any(contains_call(c) for c in children(e))


def is_constant(e: Expr) -> bool:
    """True iff *e* is a compile-time constant (a folded literal)."""
    return isinstance(e, Const)


def substitute(e: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace variables by expressions, renormalizing along the way."""
    if isinstance(e, Var):
        return mapping.get(e.name, e)
    if isinstance(e, Const):
        return e
    if not (free_vars(e) & set(mapping)):
        return e
    if isinstance(e, Add):
        return add(*[substitute(t, mapping) for t in e.terms])
    if isinstance(e, Mul):
        return mul(*[substitute(f, mapping) for f in e.factors])
    if isinstance(e, FloorDiv):
        return floordiv(substitute(e.num, mapping), substitute(e.den, mapping))
    if isinstance(e, CeilDiv):
        return ceildiv(substitute(e.num, mapping), substitute(e.den, mapping))
    if isinstance(e, Mod):
        return mod(substitute(e.num, mapping), substitute(e.den, mapping))
    if isinstance(e, Min):
        return vmin(*[substitute(a, mapping) for a in e.args])
    if isinstance(e, Max):
        return vmax(*[substitute(a, mapping) for a in e.args])
    if isinstance(e, Call):
        return call(e.func, *[substitute(a, mapping) for a in e.args])
    raise TypeError(f"unknown expression node {e!r}")


def evaluate(e: Expr, env: Mapping[str, int],
             funcs: Optional[Mapping[str, Callable[..., int]]] = None) -> int:
    """Evaluate *e* to an integer under variable bindings *env*.

    ``funcs`` supplies implementations for opaque calls (e.g. a ``colstr``
    lookup backed by a CSR array).  ``abs`` and ``sgn`` are built in.
    """
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Var):
        try:
            return env[e.name]
        except KeyError:
            raise NameError(f"unbound variable {e.name!r}") from None
    if isinstance(e, Add):
        return sum(evaluate(t, env, funcs) for t in e.terms)
    if isinstance(e, Mul):
        result = 1
        for f in e.factors:
            result *= evaluate(f, env, funcs)
        return result
    if isinstance(e, FloorDiv):
        return floor_div(evaluate(e.num, env, funcs), evaluate(e.den, env, funcs))
    if isinstance(e, CeilDiv):
        return ceil_div(evaluate(e.num, env, funcs), evaluate(e.den, env, funcs))
    if isinstance(e, Mod):
        num = evaluate(e.num, env, funcs)
        den = evaluate(e.den, env, funcs)
        return num - den * floor_div(num, den)
    if isinstance(e, Min):
        return min(evaluate(a, env, funcs) for a in e.args)
    if isinstance(e, Max):
        return max(evaluate(a, env, funcs) for a in e.args)
    if isinstance(e, Call):
        if e.func in _FOLDABLE_CALLS:
            impl = _FOLDABLE_CALLS[e.func]
        elif funcs and e.func in funcs:
            impl = funcs[e.func]
        else:
            raise NameError(f"no implementation for function {e.func!r}")
        return int(impl(*[evaluate(a, env, funcs) for a in e.args]))
    raise TypeError(f"unknown expression node {e!r}")


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------

_PREC_ADD = 1
_PREC_MUL = 2
_PREC_ATOM = 3


def _render(e: Expr, parent_prec: int) -> str:
    if isinstance(e, Const):
        s = str(e.value)
        return f"({s})" if e.value < 0 and parent_prec >= _PREC_MUL else s
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Add):
        # Show positive-coefficient terms first so "jj - ii" never prints
        # as "(-1)*ii + jj"; the order is cosmetic only.
        split = [(_split_coeff(t), t) for t in e.terms]
        display = ([p for p in split if p[0][0] >= 0] +
                   [p for p in split if p[0][0] < 0])
        parts = []
        for i, ((c, rest), t) in enumerate(display):
            if i == 0 and c >= 0:
                parts.append(_render(t, _PREC_ADD))
            elif c < 0:
                pos = (Const(-c) if rest is None
                       else rest if c == -1 else _raw_mul(-c, rest))
                parts.append(("-" if i == 0 else " - ") +
                             _render(pos, _PREC_ADD + 1))
            else:
                parts.append(f" + {_render(t, _PREC_ADD + 1)}")
        s = "".join(parts)
        return f"({s})" if parent_prec > _PREC_ADD else s
    if isinstance(e, Mul):
        c, rest = _split_coeff(e)
        if c < 0 and rest is not None:
            pos = rest if c == -1 else _raw_mul(-c, rest)
            s = "-" + _render(pos, _PREC_MUL)
            return f"({s})" if parent_prec >= _PREC_MUL else s
        s = "*".join(_render(f, _PREC_MUL) for f in e.factors)
        return f"({s})" if parent_prec > _PREC_MUL else s
    if isinstance(e, FloorDiv):
        return f"div({_render(e.num, 0)}, {_render(e.den, 0)})"
    if isinstance(e, CeilDiv):
        return f"ceil({_render(e.num, 0)}, {_render(e.den, 0)})"
    if isinstance(e, Mod):
        return f"mod({_render(e.num, 0)}, {_render(e.den, 0)})"
    if isinstance(e, Min):
        return "min(" + ", ".join(_render(a, 0) for a in e.args) + ")"
    if isinstance(e, Max):
        return "max(" + ", ".join(_render(a, 0) for a in e.args) + ")"
    if isinstance(e, Call):
        return e.func + "(" + ", ".join(_render(a, 0) for a in e.args) + ")"
    raise TypeError(f"unknown expression node {e!r}")


def to_str(e: Expr) -> str:
    """Render an expression in the paper's surface syntax."""
    return _render(e, 0)
