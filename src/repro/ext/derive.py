"""Empirical derivation of dependence-vector mapping rules.

The paper closes with: "An interesting area of future theoretical work
would be to explore the possibility of deriving the dependence vector
and loop bounds mapping rules automatically from a given iteration
mapping function."  This module does the empirical half: given any
template instantiation, it derives — by running the template's *code
generator* on a concrete rectangular space and tracing the execution —
the exact set of output-space difference tuples that an input distance
vector maps to, and validates the template's declared Table 2 rule
against that ground truth.

The derived set is exact for the sampled space; the declared rule is
*consistent* (Def. 3.4) iff it covers the derived set for every space,
so a covering failure on any sample is a genuine rule bug.  The tests
run every kernel template through this validator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.sequence import Transformation
from repro.core.template import Template
from repro.expr.nodes import Const, var
from repro.ir.loopnest import ArrayRef, Assign, Loop, LoopNest
from repro.runtime.interpreter import run_nest

Space = Sequence[Tuple[int, int]]


def _probe_nest(space: Space) -> LoopNest:
    """A rectangular nest whose body records nothing but is traceable."""
    loops = [Loop(f"x{k}", Const(lo), Const(hi))
             for k, (lo, hi) in enumerate(space)]
    body = [Assign(ArrayRef("probe",
                            tuple(var(f"x{k}") for k in range(len(space)))),
                   Const(1))]
    return LoopNest(loops, body)


def iteration_mapping(template: Template,
                      space: Space) -> Dict[Tuple[int, ...], Tuple[int, ...]]:
    """Map each input iteration to its output *iteration-number* tuple.

    Definition 3.3 counts iteration numbers per loop (0-based here, and
    restarting whenever an enclosing loop advances — which is what makes
    Block's element entries behave as in-tile offsets).  The mapping is
    obtained by generating code for the template over the concrete
    *space*, executing it with per-level iteration counters, and pairing
    those counters with the reconstructed input indices at every body
    execution.
    """
    from repro.runtime.interpreter import Interpreter
    from repro.util.intmath import sign as _sign

    nest = _probe_nest(space)
    out = Transformation.of(template).apply(nest, None, check=False)
    in_vars = nest.indices
    mapping: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    class Recorder(Interpreter):
        def run(self, arrays):
            self._counters = [0] * len(out.loops)
            return super().run(arrays)

        def _run_level(self, depth, env, state, itrace, atrace, counter):
            if depth == len(self.nest.loops):
                super()._run_level(depth, env, state, itrace, atrace,
                                   counter)
                return
            lp = self.nest.loops[depth]
            lo = self._eval(lp.lower, env, state, atrace)
            hi = self._eval(lp.upper, env, state, atrace)
            step = self._eval(lp.step, env, state, atrace)
            for pos, v in enumerate(range(lo, hi + _sign(step), step)):
                env[lp.index] = v
                self._counters[depth] = pos
                self._run_level(depth + 1, env, state, itrace, atrace,
                                counter)
            env.pop(lp.index, None)

        def _run_body(self, env, state, itrace, atrace, counter):
            super()._run_body(env, state, itrace, atrace, counter)
            in_coord = tuple(env[v] for v in in_vars)
            if in_coord in mapping:
                raise AssertionError(
                    f"input iteration {in_coord} executed twice — the "
                    f"template's code generation is broken")
            mapping[in_coord] = tuple(self._counters)

    Recorder(out).run({})
    return mapping


def derive_dep_map(template: Template, distance: Sequence[int],
                   space: Space) -> Set[Tuple[int, ...]]:
    """The exact output difference set for an input *distance* vector.

    Every pair of input iterations (p, p + distance) inside *space*
    contributes the difference of their output coordinates.
    """
    if len(distance) != len(space):
        raise ValueError("distance arity must match the space rank")
    mapping = iteration_mapping(template, space)
    derived: Set[Tuple[int, ...]] = set()
    for in_coord, out_coord in mapping.items():
        successor = tuple(a + d for a, d in zip(in_coord, distance))
        target = mapping.get(successor)
        if target is not None:
            derived.add(tuple(b - a for a, b in zip(out_coord, target)))
    return derived


class RuleValidation:
    """Outcome of :func:`validate_rule`."""

    __slots__ = ("ok", "derived", "uncovered", "declared", "criterion")

    def __init__(self, ok: bool, derived: Set[Tuple[int, ...]],
                 uncovered: Set[Tuple[int, ...]], declared, criterion: str):
        self.ok = ok
        self.derived = derived
        self.uncovered = uncovered
        self.declared = declared
        self.criterion = criterion

    def __bool__(self):
        return self.ok

    def __repr__(self):
        status = "consistent" if self.ok else f"UNCOVERED {self.uncovered}"
        return (f"RuleValidation({status}; {len(self.derived)} derived "
                f"tuples, criterion={self.criterion!r})")


def _order_covered(t: Tuple[int, ...], declared) -> bool:
    """Can the declared set produce a tuple ordering like *t*?

    The legality test only consumes lexicographic *order*: what must be
    covered is the position of t's first nonzero and its sign (entries
    below the first divergence never influence legality).  This is the
    right criterion for value-space rules like Unimodular's ``M x d``,
    whose below-divergence components legitimately differ from
    iteration-number space on trapezoidal outputs.
    """
    first = next((k for k, x in enumerate(t) if x != 0), None)
    for vec in declared:
        if first is None:
            if all(e.can_be_zero() for e in vec):
                return True
            continue
        if not all(vec[k].can_be_zero() for k in range(first)):
            continue
        entry = vec[first]
        if t[first] > 0 and entry.can_be_positive():
            return True
        if t[first] < 0 and entry.can_be_negative():
            return True
    return False


def validate_rule(template: Template, distance: Sequence[int],
                  space: Space, criterion: str = "order") -> RuleValidation:
    """Check the template's declared Table 2 rule against ground truth.

    *criterion*:

    * ``"order"`` (default) — every derived iteration-number difference
      must be *order-covered*: the declared set admits a tuple with the
      same first-nonzero position and sign.  This is exactly what the
      lexicographic legality test consumes, and is the property all the
      paper's rules satisfy.
    * ``"strict"`` — full tuple membership, ``t in Tuples(D')``.  Holds
      for the counter-space rules (ReversePermute, Parallelize, Block,
      Coalesce, Interleave) but is too strong for Unimodular on
      trapezoidal outputs, where iteration numbering diverges from
      index values below the first divergence.
    """
    from repro.deps.vector import DepVector

    if criterion not in ("order", "strict"):
        raise ValueError(f"unknown criterion {criterion!r}")
    derived = derive_dep_map(template, distance, space)
    declared = template.map_dep_vector(DepVector(list(distance)))
    if criterion == "strict":
        uncovered = {t for t in derived
                     if not any(v.contains_tuple(t) for v in declared)}
    else:
        uncovered = {t for t in derived if not _order_covered(t, declared)}
    return RuleValidation(not uncovered, derived, uncovered, declared,
                          criterion)
