"""Extensions beyond the paper's core framework.

* :mod:`repro.ext.unroll` — innermost-loop unrolling, the paper's
  "future work" example of a transformation that reorders statements as
  well as iterations (and therefore lives outside the kernel set);
* :mod:`repro.ext.derive` — empirical derivation of dependence-vector
  mapping rules from a template's iteration mapping, operationalizing
  the paper's closing "future theoretical work" as a validator for
  declared Table 2 rules.
"""

from repro.ext.derive import derive_dep_map, validate_rule
from repro.ext.unroll import unroll_innermost

__all__ = ["derive_dep_map", "validate_rule", "unroll_innermost"]
