"""Innermost-loop unrolling.

The paper's conclusion lists loop unrolling (with loop distribution) as
future work because it "reorders both iterations and statements" — it
cannot be a kernel template (the body changes).  It is provided here as
a post-pass over the framework's output: a classic back-end step after
iteration reordering has set up the loop structure.

Only the innermost loop can be unrolled while keeping the perfect-nest
representation, and the trip count must be divisible by the factor
(checked statically for constant bounds; otherwise the caller must
guarantee it — e.g. after strip-mining by the same factor, every full
tile qualifies).  Subscripts and guards are rewritten by substituting
``x -> x + m*s`` for the m-th replica.
"""

from __future__ import annotations

from typing import List

from repro.expr.nodes import Const, Expr, add, mul, substitute, var
from repro.ir.loopnest import Assign, If, InitStmt, Loop, LoopNest, Statement
from repro.util.errors import CodegenError
from repro.util.intmath import trip_count


def _shift_statement(stmt: Statement, index: str, offset: Expr) -> Statement:
    mapping = {index: add(var(index), offset)}
    if isinstance(stmt, Assign):
        target = stmt.target
        new_target = type(target)(
            target.name,
            tuple(substitute(s, mapping) for s in target.subscripts))
        return Assign(new_target, substitute(stmt.expr, mapping),
                      stmt.accumulate)
    if isinstance(stmt, If):
        return If(substitute(stmt.cond, mapping),
                  _shift_statement(stmt.then, index, offset))
    if isinstance(stmt, InitStmt):
        # Init statements define *other* variables from the indices; the
        # replica must not redefine them differently, so unrolling a nest
        # whose inits use the unrolled index is rejected upstream.
        return InitStmt(stmt.var, substitute(stmt.expr, mapping))
    raise CodegenError(f"cannot unroll statement {stmt!r}")


def unroll_innermost(nest: LoopNest, factor: int) -> LoopNest:
    """Unroll the innermost loop by *factor*.

    Requirements:

    * ``factor >= 1`` (1 is the identity);
    * the innermost step is a compile-time constant;
    * for constant bounds, the trip count must be divisible by *factor*
      (checked); for symbolic bounds the caller guarantees divisibility
      — strip-mine by *factor* first to make it so;
    * no init statement may reference the unrolled index (replicas would
      disagree on its value).
    """
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return nest
    inner = nest.loops[-1]
    if not isinstance(inner.step, Const):
        raise CodegenError(
            f"cannot unroll loop {inner.index}: step is not a compile-time "
            "constant")
    from repro.expr.nodes import free_vars

    for init in nest.inits:
        if inner.index in free_vars(init.expr):
            raise CodegenError(
                f"cannot unroll loop {inner.index}: init statement "
                f"{init} references it")

    step = inner.step.value
    if isinstance(inner.lower, Const) and isinstance(inner.upper, Const):
        trips = trip_count(inner.lower.value, inner.upper.value, step)
        if trips % factor != 0:
            raise CodegenError(
                f"trip count {trips} of loop {inner.index} is not "
                f"divisible by unroll factor {factor}; strip-mine first")

    new_inner = Loop(inner.index, inner.lower, inner.upper,
                     Const(step * factor), inner.kind)
    body: List[Statement] = []
    for m in range(factor):
        offset = Const(m * step)
        for stmt in nest.body:
            if m == 0:
                body.append(stmt)
            else:
                body.append(_shift_statement(stmt, inner.index, offset))
    return LoopNest(tuple(nest.loops[:-1]) + (new_inner,), body, nest.inits)
