"""Dependence entries: distance values and the six direction values.

Definition 3.1 of the paper: a dependence vector entry ``d_k`` is either a
*distance* (an exact integer) or a *direction* — one of ``+`` (positive),
``-`` (negative), ``0+`` (non-negative), ``0-`` (non-positive), ``!0``
(non-zero) or ``*`` (any).  An ``=`` direction is equivalent to a zero
distance and is canonicalized as such.

Internally an entry wraps an :class:`~repro.deps.intervals.IntervalSet`
(its ``S(d_k)``).  Entries resulting from interval arithmetic may denote
sets finer than the paper's seven shapes (e.g. ``[2, +inf]``); they print
as the tightest covering paper value and can be coarsened explicitly with
:meth:`DepEntry.coarsen`.
"""

from __future__ import annotations

from typing import Union

from repro.deps import intervals as iv
from repro.deps.intervals import IntervalSet

# Canonical direction spellings accepted/produced everywhere.
DIRECTION_CODES = ("+", "-", "0+", "0-", "!0", "*")

_CODE_TO_SET = {
    "+": iv.POSITIVE,
    "-": iv.NEGATIVE,
    "0+": iv.NON_NEGATIVE,
    "0-": iv.NON_POSITIVE,
    "!0": iv.NON_ZERO,
    "*": iv.ANY,
    "=": iv.ZERO,
    "<": iv.POSITIVE,     # relational aliases (Wolfe's notation): a "<"
    ">": iv.NEGATIVE,     # direction means the source iteration precedes
    "<=": iv.NON_NEGATIVE,
    ">=": iv.NON_POSITIVE,
}


class DepEntry:
    """One component of a dependence vector.  Immutable."""

    __slots__ = ("iset",)

    def __init__(self, iset: IntervalSet):
        if iset.is_empty():
            raise ValueError("a dependence entry cannot denote the empty set")
        object.__setattr__(self, "iset", iset)

    def __setattr__(self, name, value):
        raise AttributeError("DepEntry is immutable")

    # The guarded __setattr__ breaks pickle's default slot-state
    # restoration (entries cross process boundaries in parallel search).
    def __getstate__(self):
        return (self.iset,)

    def __setstate__(self, state):
        object.__setattr__(self, "iset", state[0])

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def distance(value: int) -> "DepEntry":
        """An exact integer distance entry."""
        return DepEntry(IntervalSet.point(value))

    @staticmethod
    def direction(code: str) -> "DepEntry":
        """A direction entry from its paper spelling (``'+'``, ``'0-'``...)."""
        try:
            return DepEntry(_CODE_TO_SET[code])
        except KeyError:
            raise ValueError(f"unknown direction value {code!r}; "
                             f"expected one of {DIRECTION_CODES}") from None

    @staticmethod
    def of(value: Union[int, str, "DepEntry"]) -> "DepEntry":
        """Coerce an int (distance), str (direction) or entry."""
        if isinstance(value, DepEntry):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a dependence entry")
        if isinstance(value, int):
            return DepEntry.distance(value)
        if isinstance(value, str):
            stripped = value.strip()
            try:
                return DepEntry.distance(int(stripped))
            except ValueError:
                return DepEntry.direction(stripped)
        raise TypeError(f"cannot interpret {value!r} as a dependence entry")

    # -- classification --------------------------------------------------------

    @property
    def is_distance(self) -> bool:
        return self.iset.is_point()

    @property
    def value(self) -> int:
        """The integer value of a distance entry."""
        return self.iset.point_value()

    def is_zero(self) -> bool:
        return self.iset.is_zero()

    def can_be_zero(self) -> bool:
        return self.iset.can_be_zero()

    def can_be_negative(self) -> bool:
        return self.iset.can_be_negative()

    def can_be_positive(self) -> bool:
        return self.iset.can_be_positive()

    def definitely_positive(self) -> bool:
        return self.iset.definitely_positive()

    def definitely_negative(self) -> bool:
        return self.iset.definitely_negative()

    @property
    def code(self) -> str:
        """The tightest paper spelling covering this entry.

        Exact distances print as their integer; everything else as one of
        the six directions.
        """
        if self.is_distance:
            return str(self.value)
        neg = self.can_be_negative()
        zero = self.can_be_zero()
        pos = self.can_be_positive()
        if neg and zero and pos:
            return "*"
        if neg and pos:
            return "!0"
        if zero and pos:
            return "0+"
        if neg and zero:
            return "0-"
        if pos:
            return "+"
        return "-"

    def coarsen(self) -> "DepEntry":
        """Round to the paper's exact domain (distance or six directions)."""
        if self.is_distance:
            return self
        return DepEntry.direction(self.code)

    def direction_of(self) -> "DepEntry":
        """Table 2's ``dir(d_k)``: directions and zero stay; a positive
        distance becomes ``+``; a negative distance becomes ``-``."""
        if self.is_distance:
            if self.value == 0:
                return self
            return DepEntry.direction("+" if self.value > 0 else "-")
        return self.coarsen()

    # -- arithmetic (used by the Unimodular mapping rule) ----------------------

    def negate(self) -> "DepEntry":
        return DepEntry(self.iset.negate())

    def add(self, other: "DepEntry") -> "DepEntry":
        return DepEntry(self.iset.add(other.iset))

    def scale(self, k: int) -> "DepEntry":
        if k == 0:
            return DepEntry.distance(0)
        return DepEntry(self.iset.scale(k))

    # -- semantics --------------------------------------------------------------

    def tuples(self) -> IntervalSet:
        """``S(d_k)`` — the set of integers this entry denotes."""
        return self.iset

    def sample(self, bound: int = 3):
        """A small, deterministic sample of members (for property tests)."""
        lo = self.iset.min()
        hi = self.iset.max()
        lo_c = lo if isinstance(lo, int) else -bound
        hi_c = hi if isinstance(hi, int) else bound
        clipped = self.iset.intersect(IntervalSet.range(min(lo_c, hi_c),
                                                        max(lo_c, hi_c)))
        if clipped.is_empty():
            # Entry lives entirely beyond the clip window (e.g. distance 7).
            return [self.iset.min() if isinstance(self.iset.min(), int)
                    else self.iset.max()]
        return clipped.enumerate(limit=2 * bound + 1 + 4)

    # -- protocol -----------------------------------------------------------------

    def __eq__(self, other):
        return isinstance(other, DepEntry) and self.iset == other.iset

    def __hash__(self):
        return hash(self.iset)

    def __repr__(self):
        return f"DepEntry({self.code!r})"

    def __str__(self):
        return self.code


# Frequently used constants.
D_ZERO = DepEntry.distance(0)
D_POS = DepEntry.direction("+")
D_NEG = DepEntry.direction("-")
D_ANY = DepEntry.direction("*")
