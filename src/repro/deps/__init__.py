"""Dependence vectors: entries, vectors, Table 2 rules, and analysis."""

from repro.deps.entry import DepEntry, DIRECTION_CODES
from repro.deps.intervals import IntervalSet
from repro.deps.vector import DepSet, DepVector, depset, depv
from repro.deps.graph import ANTI, DepEdge, DependenceGraph, FLOW, OUTPUT
from repro.deps.rules import (
    blockmap,
    blockmap_precise,
    imap,
    imap_precise,
    mergedirs,
    parmap,
    reverse,
    unimodular_map,
)

__all__ = [
    "DepEntry", "DIRECTION_CODES", "IntervalSet",
    "ANTI", "DepEdge", "DependenceGraph", "FLOW", "OUTPUT",
    "DepSet", "DepVector", "depset", "depv",
    "blockmap", "blockmap_precise", "imap", "imap_precise",
    "mergedirs", "parmap", "reverse", "unimodular_map",
]
