"""Dependence vectors and dependence-vector sets.

A dependence vector for a nest of size ``n`` is an ``n``-tuple of
:class:`~repro.deps.entry.DepEntry` values.  ``Tuples(d)`` is the
Cartesian product of the entries' integer sets; ``Tuples(D)`` is the
union over a set of vectors (Section 3.1).

The legality test (Section 3.2) asks whether ``Tuples(T(D))`` contains a
lexicographically negative integer tuple; :meth:`DepVector.can_be_lex_negative`
answers that for one vector by scanning for a position whose entry can be
negative while all earlier entries can simultaneously be zero (entries are
independent, so "simultaneously" is just conjunction).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple, Union

from repro.deps.entry import DepEntry


EntryLike = Union[int, str, DepEntry]


class DepVector:
    """An immutable tuple of dependence entries."""

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[EntryLike]):
        object.__setattr__(
            self, "entries", tuple(DepEntry.of(e) for e in entries))
        if not self.entries:
            raise ValueError("dependence vector must have at least one entry")

    def __setattr__(self, name, value):
        raise AttributeError("DepVector is immutable")

    # The guarded __setattr__ breaks pickle's default slot-state
    # restoration (vectors cross process boundaries in parallel search).
    def __getstate__(self):
        return (self.entries,)

    def __setstate__(self, state):
        object.__setattr__(self, "entries", state[0])

    # -- structure ---------------------------------------------------------

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, k: int) -> DepEntry:
        return self.entries[k]

    def entry(self, k: int) -> DepEntry:
        """1-based accessor matching the paper's loop numbering."""
        return self.entries[k - 1]

    # -- lexicographic properties -------------------------------------------

    def can_be_lex_negative(self) -> bool:
        """True iff ``Tuples(d)`` contains a lexicographically negative tuple.

        A tuple is lex-negative iff its first nonzero element is negative;
        such a tuple exists iff for some position *i* every earlier entry
        can be zero and entry *i* can be negative.
        """
        for i, e in enumerate(self.entries):
            if e.can_be_negative():
                if all(prev.can_be_zero() for prev in self.entries[:i]):
                    return True
        return False

    def can_be_lex_positive(self) -> bool:
        """True iff ``Tuples(d)`` contains a lexicographically positive tuple."""
        for i, e in enumerate(self.entries):
            if e.can_be_positive():
                if all(prev.can_be_zero() for prev in self.entries[:i]):
                    return True
        return False

    def is_lex_positive(self) -> bool:
        """True iff *every* tuple in ``Tuples(d)`` is lex-positive."""
        return (not self.can_be_lex_negative() and not self.can_be_zero_vector())

    def can_be_zero_vector(self) -> bool:
        return all(e.can_be_zero() for e in self.entries)

    def carried_at(self) -> int:
        """The unique 1-based level carrying every real dependence, or 0.

        Real dependences are the *lexicographically positive* members of
        ``Tuples(d)`` (a legal source ordering admits no others), so the
        query quantifies over those: the result is level ``k`` iff every
        lex-positive tuple has its first nonzero at ``k`` and the
        all-zero (loop-independent) tuple is not possible.  Returns 0
        when no level is forced (e.g. ``(0+, +)``, which can be carried
        at level 1 or 2) or when no lex-positive tuple exists at all.
        """
        forced = 0
        for i, e in enumerate(self.entries):
            if e.can_be_positive() and \
                    all(prev.can_be_zero() for prev in self.entries[:i]):
                if forced:
                    return 0  # two distinct levels possible
                forced = i + 1
        if forced and all(e.can_be_zero() for e in self.entries):
            return 0  # a loop-independent (all-zero) tuple is also possible
        return forced

    def could_be_carried_at(self, level: int) -> bool:
        """True iff some *lex-positive* tuple's first nonzero lands at
        *level* (1-based) — i.e. parallelizing that loop alone may be
        illegal.  A first nonzero that is negative belongs to a
        lexicographically negative tuple, which no legal source ordering
        produces, so it does not count."""
        i = level - 1
        e = self.entries[i]
        if not e.can_be_positive():
            return False
        return all(prev.can_be_zero() for prev in self.entries[:i])

    # -- sampling (used by property tests and the consistency checker) --------

    def sample_tuples(self, bound: int = 3, limit: int = 256) -> List[Tuple[int, ...]]:
        """A deterministic sample of concrete tuples from ``Tuples(d)``."""
        per_entry = [e.sample(bound) for e in self.entries]
        out = []
        for combo in itertools.product(*per_entry):
            out.append(tuple(combo))
            if len(out) >= limit:
                break
        return out

    def contains_tuple(self, tup: Sequence[int]) -> bool:
        if len(tup) != len(self.entries):
            return False
        return all(v in e.tuples() for v, e in zip(tup, self.entries))

    # -- misc -------------------------------------------------------------------

    def coarsen(self) -> "DepVector":
        return DepVector([e.coarsen() for e in self.entries])

    def expand_summary(self) -> List["DepVector"]:
        """Expand summary directions into equivalent non-summary vectors.

        Section 3.1 recommends expanding ``0+``, ``0-``, ``!0`` and ``*``
        into ``{0, +}``, ``{0, -}``, ``{-, +}`` and ``{-, 0, +}``
        respectively for best precision.
        """
        alternatives: List[List[DepEntry]] = []
        for e in self.entries:
            if e.is_distance:
                alternatives.append([e])
                continue
            options: List[DepEntry] = []
            if e.can_be_negative():
                options.append(DepEntry.direction("-"))
            if e.can_be_zero():
                options.append(DepEntry.distance(0))
            if e.can_be_positive():
                options.append(DepEntry.direction("+"))
            alternatives.append(options)
        return [DepVector(combo) for combo in itertools.product(*alternatives)]

    def __eq__(self, other):
        return isinstance(other, DepVector) and self.entries == other.entries

    def __hash__(self):
        return hash(self.entries)

    def __repr__(self):
        return f"DepVector({self})"

    def __str__(self):
        return "(" + ", ".join(e.code for e in self.entries) + ")"


def depv(*entries: EntryLike) -> DepVector:
    """Shorthand constructor: ``depv(1, '-', '0+')``."""
    return DepVector(entries)


class DepSet:
    """An ordered set of dependence vectors of equal length."""

    __slots__ = ("vectors",)

    def __init__(self, vectors: Iterable[Union[DepVector, Sequence[EntryLike]]]):
        seen = []
        for v in vectors:
            vec = v if isinstance(v, DepVector) else DepVector(v)
            if vec not in seen:
                seen.append(vec)
        object.__setattr__(self, "vectors", tuple(seen))
        lengths = {len(v) for v in self.vectors}
        if len(lengths) > 1:
            raise ValueError(f"mixed vector lengths in dependence set: {lengths}")

    def __setattr__(self, name, value):
        raise AttributeError("DepSet is immutable")

    # See DepVector: explicit state protocol for pickling.
    def __getstate__(self):
        return (self.vectors,)

    def __setstate__(self, state):
        object.__setattr__(self, "vectors", state[0])

    @property
    def depth(self) -> int:
        return len(self.vectors[0]) if self.vectors else 0

    def __iter__(self):
        return iter(self.vectors)

    def __len__(self):
        return len(self.vectors)

    def __contains__(self, vec: DepVector) -> bool:
        return vec in self.vectors

    def is_empty(self) -> bool:
        return not self.vectors

    def can_be_lex_negative(self) -> bool:
        """The dependence-vector legality test over the whole set."""
        return any(v.can_be_lex_negative() for v in self.vectors)

    def expand_summary(self) -> "DepSet":
        out: List[DepVector] = []
        for v in self.vectors:
            out.extend(v.expand_summary())
        return DepSet(out)

    def union(self, other: "DepSet") -> "DepSet":
        return DepSet(tuple(self.vectors) + tuple(other.vectors))

    def __eq__(self, other):
        return isinstance(other, DepSet) and set(self.vectors) == set(other.vectors)

    def __hash__(self):
        return hash(frozenset(self.vectors))

    def __repr__(self):
        return f"DepSet({{{', '.join(str(v) for v in self.vectors)}}})"

    def __str__(self):
        return "{" + ", ".join(str(v) for v in self.vectors) + "}"


def depset(*vectors) -> DepSet:
    """Shorthand: ``depset((1, '-'), (0, '+'))``."""
    return DepSet(vectors)
