"""Integer interval unions — the value sets behind dependence entries.

Section 3.1 of the paper assigns every dependence entry ``d_k`` a set of
integers ``S(d_k)``: a singleton for a distance, or one of six sign-shaped
sets for a direction value.  We represent those sets as unions of closed
integer intervals with optionally infinite endpoints:

====================  =======================
paper value           interval set
====================  =======================
distance ``y``        ``[y, y]``
``+``  (positive)     ``[1, +inf]``
``-``  (negative)     ``[-inf, -1]``
``0+`` (non-negative) ``[0, +inf]``
``0-`` (non-positive) ``[-inf, 0]``
``!0`` (non-zero)     ``[-inf, -1] U [1, +inf]``
``*``  (any)          ``[-inf, +inf]``
====================  =======================

Interval arithmetic makes the unimodular mapping rule (``d' = M x d``
"appropriately extended for direction values") both simple and at least
as precise as pure sign algebra.  Scalar multiplication by ``|k| > 1``
over-approximates (it keeps the hull, losing divisibility), which only
ever *adds* tuples — preserving the consistency property of Def. 3.4.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

NEG_INF = float("-inf")
POS_INF = float("inf")

Endpoint = Union[int, float]


def _is_finite(x: Endpoint) -> bool:
    return isinstance(x, int)


class IntervalSet:
    """A normalized union of disjoint, non-adjacent closed integer intervals.

    Immutable.  Construct via :meth:`point`, :meth:`range`,
    :meth:`from_intervals` or the module-level direction constants.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Sequence[Tuple[Endpoint, Endpoint]]):
        self._ivs = _normalize(intervals)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "IntervalSet":
        return IntervalSet([])

    @staticmethod
    def point(value: int) -> "IntervalSet":
        return IntervalSet([(value, value)])

    @staticmethod
    def range(lo: Endpoint, hi: Endpoint) -> "IntervalSet":
        return IntervalSet([(lo, hi)])

    @staticmethod
    def all() -> "IntervalSet":
        return IntervalSet([(NEG_INF, POS_INF)])

    # -- inspection ---------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Tuple[Endpoint, Endpoint], ...]:
        return self._ivs

    def is_empty(self) -> bool:
        return not self._ivs

    def is_point(self) -> bool:
        return (len(self._ivs) == 1 and _is_finite(self._ivs[0][0]) and
                self._ivs[0][0] == self._ivs[0][1])

    def point_value(self) -> int:
        if not self.is_point():
            raise ValueError(f"{self!r} is not a single point")
        return self._ivs[0][0]

    def min(self) -> Endpoint:
        if not self._ivs:
            raise ValueError("empty interval set has no minimum")
        return self._ivs[0][0]

    def max(self) -> Endpoint:
        if not self._ivs:
            raise ValueError("empty interval set has no maximum")
        return self._ivs[-1][1]

    def __contains__(self, value: int) -> bool:
        return any(lo <= value <= hi for lo, hi in self._ivs)

    def can_be_negative(self) -> bool:
        return bool(self._ivs) and self._ivs[0][0] < 0

    def can_be_positive(self) -> bool:
        return bool(self._ivs) and self._ivs[-1][1] > 0

    def can_be_zero(self) -> bool:
        return 0 in self

    def is_zero(self) -> bool:
        return self.is_point() and self._ivs[0][0] == 0

    def definitely_positive(self) -> bool:
        return bool(self._ivs) and self._ivs[0][0] >= 1

    def definitely_negative(self) -> bool:
        return bool(self._ivs) and self._ivs[-1][1] <= -1

    def definitely_nonnegative(self) -> bool:
        return bool(self._ivs) and self._ivs[0][0] >= 0

    def definitely_nonpositive(self) -> bool:
        return bool(self._ivs) and self._ivs[-1][1] <= 0

    def is_finite(self) -> bool:
        return all(_is_finite(lo) and _is_finite(hi) for lo, hi in self._ivs)

    def enumerate(self, limit: int = 1_000_000) -> List[int]:
        """All members of a finite set (raises when infinite or too big)."""
        if not self.is_finite():
            raise ValueError("cannot enumerate an infinite interval set")
        values: List[int] = []
        for lo, hi in self._ivs:
            if hi - lo + 1 > limit - len(values):
                raise ValueError("interval set too large to enumerate")
            values.extend(range(lo, hi + 1))
        return values

    # -- set operations ------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._ivs + other._ivs)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out = []
        for a_lo, a_hi in self._ivs:
            for b_lo, b_hi in other._ivs:
                lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
                if lo <= hi:
                    out.append((lo, hi))
        return IntervalSet(out)

    def issubset(self, other: "IntervalSet") -> bool:
        return self.intersect(other)._ivs == self._ivs

    # -- arithmetic -----------------------------------------------------------

    def negate(self) -> "IntervalSet":
        return IntervalSet([(-hi, -lo) for lo, hi in self._ivs])

    def add(self, other: "IntervalSet") -> "IntervalSet":
        """Minkowski sum; exact (interval sums over Z have no holes)."""
        if self.is_empty() or other.is_empty():
            return IntervalSet.empty()
        out = []
        for a_lo, a_hi in self._ivs:
            for b_lo, b_hi in other._ivs:
                out.append((_add_ep(a_lo, b_lo), _add_ep(a_hi, b_hi)))
        return IntervalSet(out)

    def scale(self, k: int) -> "IntervalSet":
        """``{k*v : v in self}`` approximated by its interval hull.

        Exact for ``k`` in {-1, 0, 1} and for point sets; otherwise the
        hull over-approximates (it ignores divisibility by ``k``), which
        is safe for dependence mapping.
        """
        if k == 0:
            return IntervalSet.empty() if self.is_empty() else IntervalSet.point(0)
        ivs = []
        for lo, hi in self._ivs:
            a, b = _mul_ep(lo, k), _mul_ep(hi, k)
            ivs.append((min(a, b), max(a, b)))
        return IntervalSet(ivs)

    # -- protocol -----------------------------------------------------------

    def __eq__(self, other):
        return isinstance(other, IntervalSet) and self._ivs == other._ivs

    def __hash__(self):
        return hash(self._ivs)

    def __repr__(self):
        def ep(x):
            if x == NEG_INF:
                return "-inf"
            if x == POS_INF:
                return "+inf"
            return str(x)
        body = " U ".join(f"[{ep(lo)},{ep(hi)}]" for lo, hi in self._ivs)
        return f"IntervalSet({body or 'empty'})"


def _add_ep(a: Endpoint, b: Endpoint) -> Endpoint:
    if _is_finite(a) and _is_finite(b):
        return a + b
    # inf + finite or matching infinities; mixed opposite infinities can
    # not arise from interval endpoints of the same side.
    total = a + b
    return total


def _mul_ep(a: Endpoint, k: int) -> Endpoint:
    if _is_finite(a):
        return a * k
    return a * k  # sign-correct float infinity


def _normalize(intervals: Iterable[Tuple[Endpoint, Endpoint]]):
    cleaned = []
    for lo, hi in intervals:
        for ep in (lo, hi):
            if not isinstance(ep, int) and ep not in (NEG_INF, POS_INF):
                raise TypeError(
                    f"endpoints must be ints or +-inf, got {ep!r}")
        if lo > hi:
            continue
        cleaned.append((lo, hi))
    cleaned.sort(key=lambda iv: (iv[0], iv[1]))
    merged: List[Tuple[Endpoint, Endpoint]] = []
    for lo, hi in cleaned:
        if merged:
            plo, phi = merged[-1]
            # Merge overlapping or adjacent integer intervals ([1,2],[3,4]).
            if lo <= phi or (_is_finite(phi) and _is_finite(lo) and lo == phi + 1):
                merged[-1] = (plo, max(phi, hi))
                continue
        merged.append((lo, hi))
    return tuple(merged)


# The six direction values of the paper (Section 3.1), as interval sets.
POSITIVE = IntervalSet.range(1, POS_INF)
NEGATIVE = IntervalSet.range(NEG_INF, -1)
NON_NEGATIVE = IntervalSet.range(0, POS_INF)
NON_POSITIVE = IntervalSet.range(NEG_INF, 0)
NON_ZERO = IntervalSet([(NEG_INF, -1), (1, POS_INF)])
ANY = IntervalSet.all()
ZERO = IntervalSet.point(0)
