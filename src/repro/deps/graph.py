"""Statement-level dependence graphs and loop-carried levels.

Section 5 credits Allen & Kennedy with the notions of *loop-carried*
and *loop-independent* dependence and legality tests built on the
*level* of a carried dependence; Wolfe's framework hangs transformations
off a dependence graph.  This module provides that classic artifact on
top of our analyzer: a graph whose nodes are body statements and whose
edges carry the dependence kind (flow/anti/output), the vector, and the
carried level — plus the standard queries (which loops carry
dependences, which are parallel).

The paper's own framework deliberately avoids needing this (its uniform
legality test works on the vector set alone); the graph exists here for
interoperability and for cross-checking: ``parallel_levels`` must agree
with the framework's Parallelize legality, which the tests assert.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.deps.analysis.driver import DependenceAnalyzer
from repro.deps.vector import DepSet, DepVector
from repro.ir.loopnest import LoopNest

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"


def _kind(src_is_write: bool, dst_is_write: bool) -> str:
    if src_is_write and dst_is_write:
        return OUTPUT
    if src_is_write:
        return FLOW
    return ANTI


class DepEdge:
    """One dependence edge: source statement -> sink statement."""

    __slots__ = ("src_stmt", "dst_stmt", "array", "kind", "vector")

    def __init__(self, src_stmt: int, dst_stmt: int, array: str,
                 kind: str, vector: DepVector):
        self.src_stmt = src_stmt
        self.dst_stmt = dst_stmt
        self.array = array
        self.kind = kind
        self.vector = vector

    @property
    def level(self) -> int:
        """The carried level: the outermost loop that must carry this
        dependence (1-based), or 0 when no single level is forced
        (a summary vector like ``(0+, +)``)."""
        return self.vector.carried_at()

    def __repr__(self):
        lvl = self.level or "?"
        return (f"DepEdge(S{self.src_stmt} -> S{self.dst_stmt} on "
                f"{self.array}, {self.kind}, {self.vector}, level {lvl})")


class DependenceGraph:
    """Statement-level dependence graph of one perfect loop nest."""

    def __init__(self, nest: LoopNest, edges: Sequence[DepEdge]):
        self.nest = nest
        self.edges = list(edges)

    @classmethod
    def from_nest(cls, nest: LoopNest, level: str = "fm"
                  ) -> "DependenceGraph":
        analyzer = DependenceAnalyzer(nest, level=level)
        edges: List[DepEdge] = []
        for pair in analyzer.explain():
            kind = _kind(pair.src.is_write, pair.dst.is_write)
            for vec in pair.vectors:
                edges.append(DepEdge(pair.src.stmt_index,
                                     pair.dst.stmt_index,
                                     pair.src.array, kind, vec.coarsen()))
        return cls(nest, edges)

    # -- queries ------------------------------------------------------------

    def vectors(self) -> DepSet:
        """The flat dependence-vector set the framework consumes."""
        if not self.edges:
            return DepSet([])
        return DepSet([e.vector for e in self.edges])

    def edges_of_kind(self, kind: str) -> List[DepEdge]:
        return [e for e in self.edges if e.kind == kind]

    def carried_at(self, level: int) -> List[DepEdge]:
        """Edges whose dependence is (or may be) carried by loop *level*."""
        return [e for e in self.edges
                if e.vector.could_be_carried_at(level)]

    def carrying_levels(self) -> Set[int]:
        """Every 1-based loop level that may carry some dependence."""
        out: Set[int] = set()
        for level in range(1, self.nest.depth + 1):
            if self.carried_at(level):
                out.add(level)
        return out

    def parallel_levels(self) -> List[int]:
        """Loops that carry no dependence — individually parallelizable
        (Allen & Kennedy's criterion; agrees with the framework's
        Parallelize legality, see the tests)."""
        return [level for level in range(1, self.nest.depth + 1)
                if not self.carried_at(level)]

    def statement_pairs(self) -> Set[Tuple[int, int]]:
        return {(e.src_stmt, e.dst_stmt) for e in self.edges}

    def pretty(self) -> str:
        """Wolfe-style listing: one line per edge, grouped by kind."""
        if not self.edges:
            return "(no cross-iteration dependences)"
        lines = []
        for kind in (FLOW, ANTI, OUTPUT):
            for e in self.edges_of_kind(kind):
                lvl = e.level or "none forced"
                lines.append(
                    f"S{e.src_stmt} -> S{e.dst_stmt}  {kind:6} on "
                    f"{e.array:8} {str(e.vector):14} carried: {lvl}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"DependenceGraph({len(self.edges)} edges, "
                f"{len(self.statement_pairs())} statement pairs)")
