"""Table 2: dependence-vector mapping rule helpers.

Each kernel template's dependence-vector mapping (Section 3.2, Table 2)
is built from the per-entry functions defined here:

* ``reverse``     — for ReversePermute's reversal mask;
* ``parmap``      — for Parallelize;
* ``mergedirs``   — for Coalesce;
* ``blockmap``    — for Block (pairs of block/element entries);
* ``imap``        — for Interleave (pairs of offset/stride entries);
* ``unimodular_map`` — ``d' = M x d`` extended to direction values via
  interval arithmetic.

``blockmap`` and ``imap`` map one entry to *up to two* pairs, which is why
Block and Interleave can turn one dependence vector into as many as
``2^(j-i+1)`` vectors — and why they cannot be represented by a matrix
(Section 3.2).

The ``precise`` variants are an extension (flagged in DESIGN.md): when the
entry is an exact distance and the block size / interleave factor is a
known constant, the exact set of (block, element) pairs is enumerated
instead of the paper's conservative rule.  Both satisfy the consistency
property (Def. 3.4); the precise form denotes a subset of the
conservative one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.deps.entry import DepEntry
from repro.deps.vector import DepVector
from repro.util.intmath import ceil_div, floor_div
from repro.util.matrices import IntMatrix


def reverse(entry: DepEntry) -> DepEntry:
    """Table 2's ``reverse(d_k)``: negate the entry.

    ``+ <-> -``, ``0+ <-> 0-``, ``!0`` and ``*`` are fixed, a distance
    ``y`` becomes ``-y``.
    """
    return entry.negate()


def parmap(entry: DepEntry) -> DepEntry:
    """Table 2's ``parmap(d_k)`` for Parallelize.

    Iterations of a ``pardo`` loop may execute in any relative order, so a
    dependence entry that can be nonzero becomes ``*`` (the dependence may
    flow "backwards" in the parallel schedule, which the uniform
    lexicographic test then flags when that loop is outermost-carried).
    An exactly-zero entry stays zero.
    """
    if entry.is_zero():
        return entry
    return DepEntry.direction("*")


def mergedirs(entries: Sequence[DepEntry]) -> DepEntry:
    """Table 2's ``mergedirs`` for Coalesce: fold entries outer-to-inner.

    The coalesced loop enumerates the sub-iteration space in lexicographic
    order, so the merged entry's sign set is: the nonzero signs of the
    outer entry, plus — only when the outer entry can be zero — the signs
    of the merge of the remaining entries.  E.g. ``mergedirs(+, -) = +``
    and ``mergedirs(0+, -) = 0- U + = !0``... folded pairwise::

        mergedirs(a, b, c) = merge2(a, merge2(b, c))
    """
    if not entries:
        raise ValueError("mergedirs of no entries")
    result = entries[-1].direction_of()
    for outer in reversed(entries[:-1]):
        result = _merge2(outer.direction_of(), result)
    return result


def _merge2(outer: DepEntry, inner: DepEntry) -> DepEntry:
    neg = outer.can_be_negative()
    pos = outer.can_be_positive()
    zero = False
    if outer.can_be_zero():
        neg = neg or inner.can_be_negative()
        pos = pos or inner.can_be_positive()
        zero = inner.can_be_zero()
    return _from_signs(neg, zero, pos)


def _from_signs(neg: bool, zero: bool, pos: bool) -> DepEntry:
    if not (neg or zero or pos):
        raise ValueError("empty sign set")
    if not neg and not pos:
        return DepEntry.distance(0)
    code = {(True, True, True): "*",
            (True, False, True): "!0",
            (False, True, True): "0+",
            (True, True, False): "0-",
            (False, False, True): "+",
            (True, False, False): "-"}[(neg, zero, pos)]
    return DepEntry.direction(code)


BlockPair = Tuple[DepEntry, DepEntry]


def blockmap(entry: DepEntry) -> List[BlockPair]:
    """Table 2's ``blockmap(d_k)`` for Block: (block entry, element entry).

    ::

        d_k = 0        -> {(0, 0)}
        d_k = *        -> {(*, *)}
        d_k = 1 or -1  -> {(0, d_k), (d_k, *)}
        otherwise      -> {(0, d_k), (dir(d_k), *)}

    The element loop keeps the original index variable but its iteration
    numbering restarts inside every block, so once the block entries
    differ the element entry is unconstrained (``*``).
    """
    zero = DepEntry.distance(0)
    if entry.is_zero():
        return [(zero, zero)]
    star = DepEntry.direction("*")
    if not entry.is_distance and entry.code == "*":
        return [(star, star)]
    return [(zero, entry), (entry.direction_of(), star)]


def blockmap_precise(entry: DepEntry, bsize: int) -> List[BlockPair]:
    """Exact (block, element) pairs for a constant distance and block size.

    With 0-based in-block offsets ``r`` and block indices ``q`` (so the
    normalized iteration number is ``m = q*bsize + r``), a distance ``y``
    yields ``delta_q`` in ``[ceil((y-(bsize-1))/bsize), floor((y+(bsize-1))/bsize)]``
    and for each the element offset difference is ``y - bsize*delta_q``.
    """
    if bsize <= 0:
        raise ValueError("block size must be positive")
    if not entry.is_distance:
        return blockmap(entry)
    y = entry.value
    lo = ceil_div(y - (bsize - 1), bsize)
    hi = floor_div(y + (bsize - 1), bsize)
    pairs = []
    for dq in range(lo, hi + 1):
        pairs.append((DepEntry.distance(dq), DepEntry.distance(y - bsize * dq)))
    return pairs


def imap(entry: DepEntry) -> List[BlockPair]:
    """Table 2's ``imap(d_k)`` for Interleave: (offset entry, stride entry).

    The output pairs are (difference of the outer offset loop 0..isize-1,
    difference of the inner strided loop's iteration number)::

        d_k = 0   -> {(0, 0)}
        d_k = *   -> {(*, *)}
        d_k > 0   -> {(+, 0+), (0-, +)}
        d_k < 0   -> {(-, 0-), (0+, -)}

    Summary directions take the union of their cases.
    """
    results: List[BlockPair] = []
    if entry.can_be_zero():
        results.append((DepEntry.distance(0), DepEntry.distance(0)))
    if not entry.is_distance and entry.code == "*":
        return [(DepEntry.direction("*"), DepEntry.direction("*"))]
    if entry.can_be_positive():
        results.append((DepEntry.direction("+"), DepEntry.direction("0+")))
        results.append((DepEntry.direction("0-"), DepEntry.direction("+")))
    if entry.can_be_negative():
        results.append((DepEntry.direction("-"), DepEntry.direction("0-")))
        results.append((DepEntry.direction("0+"), DepEntry.direction("-")))
    return results


def imap_precise(entry: DepEntry, isize: int) -> List[BlockPair]:
    """Exact (offset, stride) pairs for a constant distance and factor.

    A distance ``y`` splits as ``y = delta_r + isize*delta_q`` with
    ``delta_r`` in ``(-isize, isize)``; the two candidates are
    ``y mod isize`` and ``y mod isize - isize``.
    """
    if isize <= 0:
        raise ValueError("interleave factor must be positive")
    if not entry.is_distance:
        return imap(entry)
    y = entry.value
    r = y - isize * floor_div(y, isize)   # y mod isize, in [0, isize)
    pairs: List[BlockPair] = []
    if r == 0:
        pairs.append((DepEntry.distance(0), DepEntry.distance(y // isize)))
    else:
        pairs.append((DepEntry.distance(r),
                      DepEntry.distance(floor_div(y, isize))))
        pairs.append((DepEntry.distance(r - isize),
                      DepEntry.distance(floor_div(y, isize) + 1)))
    return pairs


def unimodular_map(matrix: IntMatrix, vector: DepVector) -> DepVector:
    """``d' = M x d`` extended for direction values ([9, 14]).

    Every output entry is an integer linear combination of input entries;
    the combination is evaluated with interval arithmetic on the entries'
    value sets, then used directly (it may be finer than the paper's
    seven canonical shapes — callers may :meth:`DepVector.coarsen`).
    """
    if matrix.ncols != len(vector):
        raise ValueError(
            f"matrix is {matrix.nrows}x{matrix.ncols} but vector has "
            f"{len(vector)} entries")
    out = []
    for i in range(matrix.nrows):
        acc = DepEntry.distance(0)
        for k in range(matrix.ncols):
            coeff = matrix[i, k]
            if coeff != 0:
                acc = acc.add(vector[k].scale(coeff))
        out.append(acc)
    return DepVector(out)
