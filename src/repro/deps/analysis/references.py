"""Array reference collection for dependence analysis.

Finds every array read and write in a loop-nest body.  Writes are the
targets of :class:`~repro.ir.loopnest.Assign`; reads are ``Call`` nodes
whose callee is a known array name.  By default the array-name set is
inferred as "every assigned name" plus any caller-supplied names; a
``Call`` to an unknown name is treated as a pure function (it creates no
dependence itself, but its arguments are still scanned, and subscripts
containing such calls are simply non-affine to the analyzer).

An accumulating assignment (``A(i,j) += e``) is both a read and a write
of its target.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.expr.nodes import Call, Expr, children
from repro.ir.loopnest import Assign, If, InitStmt, LoopNest, Statement


class ArrayAccess:
    """One textual array reference."""

    __slots__ = ("array", "subscripts", "is_write", "stmt_index")

    def __init__(self, array: str, subscripts: Tuple[Expr, ...],
                 is_write: bool, stmt_index: int):
        self.array = array
        self.subscripts = subscripts
        self.is_write = is_write
        self.stmt_index = stmt_index

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        subs = ", ".join(str(s) for s in self.subscripts)
        return f"{kind}:{self.array}({subs})@stmt{self.stmt_index}"


def inferred_array_names(nest: LoopNest) -> Set[str]:
    """Names assigned anywhere in the body (the minimal safe array set)."""
    names: Set[str] = set()

    def visit(stmt: Statement) -> None:
        if isinstance(stmt, Assign):
            names.add(stmt.target.name)
        elif isinstance(stmt, If):
            visit(stmt.then)

    for stmt in nest.body:
        visit(stmt)
    return names


def collect_accesses(nest: LoopNest,
                     arrays: Optional[Iterable[str]] = None
                     ) -> List[ArrayAccess]:
    """All array accesses in body order.

    *arrays* extends the inferred array-name set (useful when a read-only
    array is referenced but never written — it creates no dependences,
    but callers may want it traced)."""
    known = inferred_array_names(nest)
    if arrays is not None:
        known |= set(arrays)
    out: List[ArrayAccess] = []

    def scan_expr(e: Expr, stmt_index: int) -> None:
        if isinstance(e, Call) and e.func in known:
            out.append(ArrayAccess(e.func, e.args, False, stmt_index))
        for c in children(e):
            scan_expr(c, stmt_index)

    def visit(stmt: Statement, stmt_index: int) -> None:
        if isinstance(stmt, Assign):
            if stmt.accumulate:
                out.append(ArrayAccess(stmt.target.name,
                                       stmt.target.subscripts, False,
                                       stmt_index))
            scan_expr(stmt.expr, stmt_index)
            for s in stmt.target.subscripts:
                scan_expr(s, stmt_index)
            out.append(ArrayAccess(stmt.target.name, stmt.target.subscripts,
                                   True, stmt_index))
        elif isinstance(stmt, If):
            scan_expr(stmt.cond, stmt_index)
            visit(stmt.then, stmt_index)
        elif isinstance(stmt, InitStmt):
            scan_expr(stmt.expr, stmt_index)

    for idx, stmt in enumerate(nest.body):
        visit(stmt, idx)
    return out


def dependence_candidate_pairs(accesses: Sequence[ArrayAccess]):
    """Ordered pairs (src, dst) on the same array with at least one write.

    Both orders of each unordered pair are yielded (plus write self-pairs)
    because the driver only enumerates lexicographically positive
    direction vectors per ordered pair.
    """
    for a in accesses:
        for b in accesses:
            if a.array != b.array:
                continue
            if not (a.is_write or b.is_write):
                continue
            if a is b and not a.is_write:
                continue
            yield a, b
