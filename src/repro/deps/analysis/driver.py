"""The dependence analyzer: from a loop nest to a dependence-vector set.

Pipeline (standard practice per the paper's references [4, 15, 10, 6, 12]):

1. normalize constant non-unit steps to iteration counters (dependence
   entries are iteration-number differences, Def. 3.3);
2. collect array accesses and form candidate pairs (same array, at least
   one write);
3. per pair, build the affine subscript equalities and loop-bound
   constraints over the 2n iteration variables (plus symbolic
   invariants as free unknowns);
4. enumerate direction vectors hierarchically (Burke–Cytron style),
   pruning each partial assignment with a test ladder — GCD, then
   Banerjee intervals, then (``level='fm'``) exact rational
   Fourier–Motzkin;
5. refine surviving leaves to distances where the system forces a
   constant difference, and emit the paper-domain dependence vectors.

Only *cross-iteration* dependences are reported (the all-zero vector
never constrains iteration reordering of a single-body perfect nest).
Anything the analyzer cannot model — non-affine subscripts in every
dimension, symbolic steps — degrades to the conservative
lexicographically-positive cover ``(+, *, ..), (0, +, *, ..), ...``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.deps.analysis.linear_system import LinearSystem
from repro.deps.analysis.references import (
    ArrayAccess,
    collect_accesses,
    dependence_candidate_pairs,
)
from repro.deps.analysis.tests import (
    DIRECTION_INTERVALS,
    Equality,
    banerjee_test,
    gcd_test,
)
from repro.deps.vector import DepEntry, DepSet, DepVector
from repro.expr.linear import affine_form
from repro.expr.nodes import Const, Expr, Max, Min, add, mul, substitute, var
from repro.ir.loopnest import LoopNest
from repro.obs import trace as _obs
from repro.obs.metrics import get_metrics

LEVELS = ("gcd", "banerjee", "fm")

Coeffs = Dict[str, Fraction]


def _affine_dict(expr: Expr, index_names: Sequence[str], suffix: str,
                 invariants: Sequence[str]
                 ) -> Optional[Tuple[Coeffs, Fraction]]:
    """Express *expr* as coefficients over suffixed iteration variables
    and plain invariant symbols, plus a rational constant."""
    form = affine_form(expr, index_names)
    if form is None:
        return None
    coeffs: Coeffs = {f"{v}{suffix}": Fraction(c)
                      for v, c in form.coeffs.items()}
    inv_form = affine_form(form.rest, invariants)
    if inv_form is None or not isinstance(inv_form.rest, Const):
        return None
    for v, c in inv_form.coeffs.items():
        coeffs[v] = coeffs.get(v, Fraction(0)) + Fraction(c)
    return coeffs, Fraction(inv_form.rest.value)


class _PairProblem:
    """The constraint system for one ordered access pair."""

    def __init__(self, equalities: List[Equality], base: LinearSystem,
                 index_names: Sequence[str],
                 var_ranges: Dict[str, Tuple],
                 opaque_levels: Set[int]):
        self.equalities = equalities
        self.base = base
        self.index_names = list(index_names)
        self.var_ranges = var_ranges
        self.opaque_levels = opaque_levels

    def with_directions(self, directions: Dict[str, str]) -> LinearSystem:
        system = self.base.copy()
        for name, code in directions.items():
            lo, hi = DIRECTION_INTERVALS[code]
            # delta = x$2 - x$1
            coeffs = {f"{name}$2": Fraction(1), f"{name}$1": Fraction(-1)}
            if lo is not None:
                system.add_ge(dict(coeffs), -lo)
            if hi is not None:
                system.add_le(dict(coeffs), -hi)
        return system


class DependenceAnalyzer:
    """Configurable analyzer; see the module docstring.

    *level* selects the deepest refutation tier: ``'gcd'``,
    ``'banerjee'`` or ``'fm'`` (default, most precise).
    """

    def __init__(self, nest: LoopNest,
                 arrays: Optional[Iterable[str]] = None,
                 level: str = "fm"):
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        self.nest = nest
        self.level = level
        self.arrays = set(arrays) if arrays else None
        self.n = nest.depth
        self._prepare()

    # -- setup -----------------------------------------------------------------

    def _prepare(self) -> None:
        nest = self.nest
        self.index_names = list(nest.indices)
        self.invariants = sorted(nest.invariants())
        # Normalize constant non-unit steps: x = l + s*t.
        self.rewrite: Dict[str, Expr] = {}
        self.opaque_levels: Set[int] = set()  # 0-based
        self.norm_names: List[str] = []
        bounds: List[Optional[Tuple[Expr, Expr]]] = []
        for k, lp in enumerate(nest.loops):
            lower = substitute(lp.lower, self.rewrite)
            upper = substitute(lp.upper, self.rewrite)
            from repro.expr.nodes import free_vars as _fv
            lower_uses_indices = bool(_fv(lower) & set(self.index_names))
            if isinstance(lp.step, Const) and lp.step.value == 1:
                self.norm_names.append(lp.index)
                bounds.append((lower, upper))
            elif isinstance(lp.step, Const) and not lower_uses_indices:
                t = lp.index + "$t"
                self.norm_names.append(t)
                self.rewrite[lp.index] = add(lower,
                                             mul(lp.step, var(t)))
                # t >= 0 and l + s*t within the travel span; encoded later
                # via the span trick in _bound_constraints.
                bounds.append((lower, upper))
            else:
                # Symbolic step: iteration counting is opaque.  Rewrite
                # the index to a non-affine marker so every subscript or
                # bound mentioning it degrades conservatively.
                t = lp.index + "$t"
                self.norm_names.append(t)
                from repro.expr.nodes import call as _call
                self.rewrite[lp.index] = _call("opaque$step", var(t))
                self.opaque_levels.add(k)
                bounds.append(None)
        self._bounds = bounds

    def _bound_constraints(self, system: LinearSystem, suffix: str) -> None:
        for k, lp in enumerate(self.nest.loops):
            if k in self.opaque_levels:
                continue
            lower, upper = self._bounds[k]
            name = f"{self.norm_names[k]}{suffix}"
            step = lp.step.value  # const by construction here
            if step == 1:
                self._add_bound(system, lower, name, suffix, is_lower=True)
                self._add_bound(system, upper, name, suffix, is_lower=False)
            else:
                # t >= 0 ; span - |s| t >= 0.
                system.add_ge({name: Fraction(1)}, 0)
                if step > 0:
                    span = add(upper, mul(Const(-1), lower))
                else:
                    span = add(lower, mul(Const(-1), upper))
                parsed = _affine_dict(span, self.norm_names, "",
                                      self.invariants)
                if parsed is None:
                    continue
                coeffs, const = parsed
                coeffs = {self._suffix_var(v, suffix): c
                          for v, c in coeffs.items()}
                coeffs[name] = coeffs.get(name, Fraction(0)) - abs(step)
                system.add_ge(coeffs, const)

    def _suffix_var(self, v: str, suffix: str) -> str:
        # _affine_dict with empty suffix leaves iteration vars bare;
        # re-suffix them, leaving invariants alone.
        if v in self.index_names or v in [n for n in self.norm_names]:
            return f"{v}{suffix}"
        return v

    def _add_bound(self, system: LinearSystem, expr: Expr, name: str,
                   suffix: str, is_lower: bool) -> None:
        terms: Tuple[Expr, ...]
        if is_lower and isinstance(expr, Max):
            terms = expr.args
        elif not is_lower and isinstance(expr, Min):
            terms = expr.args
        elif isinstance(expr, (Max, Min)):
            return  # wrong-direction minmax: skip (conservative)
        else:
            terms = (expr,)
        for term in terms:
            rewritten = substitute(term, self.rewrite)
            parsed = _affine_dict(rewritten, self.norm_names, "",
                                  self.invariants)
            if parsed is None:
                continue  # non-affine bound: skip (conservative)
            term_coeffs, const = parsed
            term_coeffs = {self._suffix_var(v, suffix): c
                           for v, c in term_coeffs.items()}
            if is_lower:
                # x - term >= 0
                coeffs = {v: -c for v, c in term_coeffs.items()}
                coeffs[name] = coeffs.get(name, Fraction(0)) + 1
                system.add_ge(coeffs, -const)
            else:
                # term - x >= 0
                coeffs = dict(term_coeffs)
                coeffs[name] = coeffs.get(name, Fraction(0)) - 1
                system.add_ge(coeffs, const)

    # -- ranges for the Banerjee tier --------------------------------------------

    def _const_ranges(self) -> Dict[str, Tuple]:
        out: Dict[str, Tuple] = {}
        for k, lp in enumerate(self.nest.loops):
            if k in self.opaque_levels:
                out[self.norm_names[k]] = (None, None)
                continue
            lower, upper = self._bounds[k]
            step = lp.step.value
            if step == 1:
                lo = Fraction(lower.value) if isinstance(lower, Const) else None
                hi = Fraction(upper.value) if isinstance(upper, Const) else None
            else:
                lo = Fraction(0)
                hi = None
                if isinstance(lower, Const) and isinstance(upper, Const):
                    span = (upper.value - lower.value if step > 0
                            else lower.value - upper.value)
                    hi = Fraction(span // abs(step))
            out[self.norm_names[k]] = (lo, hi)
        return out

    # -- per-pair problem construction ------------------------------------------------

    def _build_problem(self, src: ArrayAccess,
                       dst: ArrayAccess) -> Optional[_PairProblem]:
        equalities: List[Equality] = []
        for f, g in zip(src.subscripts, dst.subscripts):
            fa = _affine_dict(substitute(f, self.rewrite), self.norm_names,
                              "", self.invariants)
            ga = _affine_dict(substitute(g, self.rewrite), self.norm_names,
                              "", self.invariants)
            if fa is None or ga is None:
                continue  # non-affine dimension contributes no constraint
            coeffs: Coeffs = {}
            for v, c in fa[0].items():
                coeffs[self._suffix_var(v, "$1")] = (
                    coeffs.get(self._suffix_var(v, "$1"), Fraction(0)) + c)
            for v, c in ga[0].items():
                key = self._suffix_var(v, "$2")
                coeffs[key] = coeffs.get(key, Fraction(0)) - c
            equalities.append(Equality(coeffs, fa[1] - ga[1]))

        system = LinearSystem()
        for eq in equalities:
            system.add_eq(dict(eq.coeffs), eq.const)
        self._bound_constraints(system, "$1")
        self._bound_constraints(system, "$2")
        return _PairProblem(equalities, system, self.norm_names,
                            self._const_ranges(), self.opaque_levels)

    # -- the direction-vector hierarchy -------------------------------------------------

    def _feasible(self, problem: _PairProblem,
                  directions: Dict[str, str]) -> bool:
        # Test-ladder accounting: which tier refutes each direction-vector
        # node (gcd, then banerjee, then exact FM) — the per-tier counters
        # show how much work the cheap tiers save the expensive ones.
        observing = _obs.enabled()
        metrics = get_metrics() if observing else None
        for eq in problem.equalities:
            if not gcd_test(eq):
                if observing:
                    metrics.counter("deps.refuted.gcd").inc()
                return False
        if self.level == "gcd":
            if observing:
                metrics.counter("deps.feasible").inc()
            return True
        for eq in problem.equalities:
            if not banerjee_test(eq, problem.var_ranges, directions):
                if observing:
                    metrics.counter("deps.refuted.banerjee").inc()
                return False
        if self.level == "banerjee":
            if observing:
                metrics.counter("deps.feasible").inc()
            return True
        feasible = problem.with_directions(directions).is_feasible()
        if observing:
            metrics.counter("deps.feasible" if feasible
                            else "deps.refuted.fm").inc()
        return feasible

    def _refine_entry(self, problem: _PairProblem,
                      directions: Dict[str, str], name: str) -> DepEntry:
        code = directions[name]
        base = {"+": DepEntry.direction("+"),
                "-": DepEntry.direction("-"),
                "*": DepEntry.direction("*"),
                "0": DepEntry.distance(0)}[code]
        if code == "*":
            return base
        if self.level != "fm" or code == "0":
            return base
        system = problem.with_directions(directions)
        dname = f"{name}$d"
        system.add_eq({dname: Fraction(1), f"{name}$2": Fraction(-1),
                       f"{name}$1": Fraction(1)}, 0)
        lo, hi = system.bounds_of(dname)
        if lo is not None and hi is not None and lo == hi and lo.denominator == 1:
            return DepEntry.distance(int(lo))
        return base

    def _enumerate(self, problem: _PairProblem) -> List[DepVector]:
        out: List[DepVector] = []
        names = problem.index_names

        def descend(level: int, directions: Dict[str, str],
                    zero_prefix: bool) -> None:
            if level == self.n:
                if zero_prefix:
                    return  # all-zero: loop-independent, not reported
                entries = [self._refine_entry(problem, directions, nm)
                           for nm in names]
                out.append(DepVector(entries))
                return
            name = names[level]
            if level in problem.opaque_levels:
                # No constraints exist on an opaque level: emit the
                # lex-nonnegative cover for it directly.
                choices = ["0", "+"] if zero_prefix else ["*"]
            else:
                choices = (["0", "+"] if zero_prefix else ["0", "+", "-"])
            for code in choices:
                directions[name] = code
                if self._feasible(problem, directions):
                    still_zero = zero_prefix and code == "0"
                    descend(level + 1, directions, still_zero)
            del directions[name]

        descend(0, {}, True)
        return out

    # -- public API ----------------------------------------------------------------------

    def analyze(self) -> DepSet:
        vectors: List[DepVector] = []
        for pair in self.explain():
            vectors.extend(pair.vectors)
        return DepSet([v.coarsen() for v in vectors])

    def explain(self) -> List["PairReport"]:
        """Per-access-pair breakdown of the analysis (what `analyze`
        aggregates): the references involved, how many affine subscript
        equalities constrained the pair, whether the conservative
        lex-positive cover had to be used, and the resulting vectors."""
        with _obs.span("deps.analyze", level=self.level, depth=self.n):
            accesses = collect_accesses(self.nest, self.arrays)
            reports: List[PairReport] = []
            for src, dst in dependence_candidate_pairs(accesses):
                problem = self._build_problem(src, dst)
                if problem is None or not problem.equalities:
                    reports.append(PairReport(
                        src, dst, 0, True, _conservative_cover(self.n)))
                    continue
                vectors = self._enumerate(problem)
                reports.append(PairReport(
                    src, dst, len(problem.equalities), False, vectors))
        if _obs.enabled():
            metrics = get_metrics()
            metrics.counter("deps.pairs").inc(len(reports))
            metrics.counter("deps.pairs_conservative").inc(
                sum(1 for r in reports if r.conservative))
        return reports


class PairReport:
    """One access pair's analysis outcome (see
    :meth:`DependenceAnalyzer.explain`)."""

    __slots__ = ("src", "dst", "equalities", "conservative", "vectors")

    def __init__(self, src, dst, equalities: int, conservative: bool,
                 vectors: List[DepVector]):
        self.src = src
        self.dst = dst
        self.equalities = equalities
        self.conservative = conservative
        self.vectors = vectors

    def __repr__(self):
        tag = "conservative" if self.conservative else \
            f"{self.equalities} equalities"
        vecs = ", ".join(str(v) for v in self.vectors) or "none"
        return f"PairReport({self.src} -> {self.dst}; {tag}; {vecs})"


def _conservative_cover(n: int) -> List[DepVector]:
    """The lex-positive cover: (+,*,..), (0,+,*,..), ..., (0,..,0,+)."""
    out = []
    for p in range(n):
        entries = ([DepEntry.distance(0)] * p + [DepEntry.direction("+")] +
                   [DepEntry.direction("*")] * (n - p - 1))
        out.append(DepVector(entries))
    return out


def analyze(nest: LoopNest, arrays: Optional[Iterable[str]] = None,
            level: str = "fm") -> DepSet:
    """Analyze *nest* and return its dependence-vector set."""
    from repro.resilience import chaos
    chaos.inject("deps.analysis")
    return DependenceAnalyzer(nest, arrays=arrays, level=level).analyze()
