"""Dependence analysis: ZIV/GCD/Banerjee/Fourier–Motzkin over affine nests."""

from repro.deps.analysis.driver import DependenceAnalyzer, analyze, LEVELS
from repro.deps.analysis.linear_system import LinConstraint, LinearSystem
from repro.deps.analysis.references import (
    ArrayAccess,
    collect_accesses,
    dependence_candidate_pairs,
    inferred_array_names,
)
from repro.deps.analysis.tests import Equality, banerjee_test, gcd_test

__all__ = [
    "DependenceAnalyzer", "analyze", "LEVELS",
    "LinConstraint", "LinearSystem",
    "ArrayAccess", "collect_accesses", "dependence_candidate_pairs",
    "inferred_array_names",
    "Equality", "banerjee_test", "gcd_test",
]
