"""Exact rational linear systems with Fourier–Motzkin feasibility.

The dependence analyzer reduces "can iteration ``x1`` of one reference
and iteration ``x2`` of another touch the same array element (under a
direction constraint)?" to the feasibility of a system of linear
equalities and inequalities over the 2n iteration variables plus any
symbolic nest invariants (treated as existential unknowns — sound, since
a dependence that exists for *some* ``n`` must be assumed).

Feasibility is decided over the rationals by Fourier–Motzkin
elimination (conservative for integers: rationally infeasible implies
integer infeasible; the integer-only refutations come from the GCD test
in :mod:`repro.deps.analysis.tests`).  The same machinery computes exact
variable bounds, which the driver uses to refine direction entries to
distances.

Representation matters here: constraints are normalized to coprime
*integer* coefficients on construction (any positive rational scaling
preserves a ``>= 0`` constraint), which keeps the hot elimination loop
in machine-int arithmetic — no :class:`~fractions.Fraction` division —
and makes scalar multiples of the same hyperplane collapse in the
dedup pass.  Variables are eliminated cheapest-first (fewest
positive×negative row combinations), which defers — and usually
avoids — the quadratic constraint blowup a fixed order runs into on
mod/div-heavy subscripts.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Safety valve against FM blowup; beyond this we give up and report
#: "feasible" (conservative for dependence testing).
MAX_CONSTRAINTS = 4000


class LinConstraint:
    """``sum(coeffs[v] * v) + const >= 0`` (or ``== 0`` for equalities).

    Stored in canonical form: coefficients and constant are coprime
    integers (the input may be ints or Fractions; construction scales
    by the positive LCM of denominators and divides by the GCD).
    """

    __slots__ = ("coeffs", "const", "equality")

    def __init__(self, coeffs: Dict[str, object], const: object,
                 equality: bool = False):
        ints: Dict[str, object] = {}
        scale = 1
        for v, c in coeffs.items():
            if c == 0:
                continue
            if not isinstance(c, int):
                c = Fraction(c)
                den = c.denominator
                if den != 1:
                    scale = scale * den // gcd(scale, den)
            ints[v] = c
        if not isinstance(const, int):
            const = Fraction(const)
            den = const.denominator
            if den != 1:
                scale = scale * den // gcd(scale, den)
        if scale != 1:
            ints = {v: int(c * scale) for v, c in ints.items()}
            const = int(const * scale)
        else:
            ints = {v: int(c) for v, c in ints.items()}
            const = int(const)
        g = abs(const)
        for x in ints.values():
            g = gcd(g, x if x >= 0 else -x)
        if g > 1:
            ints = {v: x // g for v, x in ints.items()}
            const //= g
        self.coeffs: Dict[str, int] = ints
        self.const: int = const
        self.equality = equality

    def key(self):
        return (tuple(sorted(self.coeffs.items())), self.const, self.equality)

    def __repr__(self):
        terms = " + ".join(f"{c}*{v}" for v, c in sorted(self.coeffs.items()))
        op = "==" if self.equality else ">="
        return f"LinConstraint({terms} + {self.const} {op} 0)"


class LinearSystem:
    """A mutable collection of constraints over named rational variables."""

    def __init__(self):
        self.constraints: List[LinConstraint] = []

    def copy(self) -> "LinearSystem":
        out = LinearSystem()
        out.constraints = list(self.constraints)
        return out

    # -- building ----------------------------------------------------------

    def add(self, coeffs: Dict[str, Fraction], const, *,
            equality: bool = False) -> None:
        self.constraints.append(LinConstraint(coeffs, const, equality))

    def add_ge(self, coeffs, const) -> None:
        """``sum(coeffs) + const >= 0``."""
        self.add(coeffs, const)

    def add_le(self, coeffs, const) -> None:
        """``sum(coeffs) + const <= 0``."""
        self.add({v: -c for v, c in coeffs.items()}, -Fraction(const))

    def add_eq(self, coeffs, const) -> None:
        self.add(coeffs, const, equality=True)

    def variables(self) -> List[str]:
        seen: List[str] = []
        for c in self.constraints:
            for v in c.coeffs:
                if v not in seen:
                    seen.append(v)
        return seen

    # -- solving -----------------------------------------------------------

    def _as_inequalities(self) -> List[LinConstraint]:
        out = []
        for c in self.constraints:
            if c.equality:
                out.append(LinConstraint(c.coeffs, c.const))
                out.append(LinConstraint(
                    {v: -x for v, x in c.coeffs.items()}, -c.const))
            else:
                out.append(c)
        return out

    def is_feasible(self) -> bool:
        """Rational feasibility via Fourier–Motzkin; conservative ``True``
        when the elimination grows past :data:`MAX_CONSTRAINTS`."""
        ineqs = _dedupe(self._as_inequalities())
        while True:
            live = {v for c in ineqs for v in c.coeffs}
            if not live:
                return True
            ineqs = _eliminate(ineqs, _cheapest_var(ineqs, live))
            if ineqs is None:
                return True  # gave up: assume feasible
            for c in ineqs:
                if not c.coeffs and c.const < 0:
                    return False
            ineqs = [c for c in ineqs if c.coeffs]

    def bounds_of(self, name: str) -> Tuple[Optional[Fraction],
                                            Optional[Fraction]]:
        """(min, max) of variable *name* over the solution set.

        ``None`` means unbounded in that direction (or the system gave
        up).  An infeasible system returns ``(None, None)``; callers
        should check :meth:`is_feasible` first when it matters.
        """
        ineqs = _dedupe(self._as_inequalities())
        while True:
            live = {v for c in ineqs for v in c.coeffs} - {name}
            if not live:
                break
            ineqs = _eliminate(ineqs, _cheapest_var(ineqs, live))
            if ineqs is None:
                return None, None
            for c in ineqs:
                if not c.coeffs and c.const < 0:
                    return None, None
            ineqs = [c for c in ineqs if c.coeffs]
        lo: Optional[Fraction] = None
        hi: Optional[Fraction] = None
        for c in ineqs:
            a = c.coeffs.get(name, 0)
            if a == 0:
                continue
            bound = Fraction(-c.const, a)
            if a > 0:  # name >= bound
                lo = bound if lo is None else max(lo, bound)
            else:      # name <= bound
                hi = bound if hi is None else min(hi, bound)
        return lo, hi


def _dedupe(ineqs: List[LinConstraint]) -> List[LinConstraint]:
    seen = set()
    out = []
    for c in ineqs:
        k = c.key()
        if k not in seen:
            seen.add(k)
            out.append(c)
    return out


def _cheapest_var(ineqs: Sequence[LinConstraint],
                  candidates: Set[str]) -> str:
    """The candidate whose elimination creates the fewest combined rows
    (Fourier–Motzkin's classic min ``|pos|*|neg|`` heuristic); ties
    break alphabetically so elimination order — and therefore the
    give-up behavior near :data:`MAX_CONSTRAINTS` — is deterministic."""
    counts: Dict[str, List[int]] = {}
    for c in ineqs:
        for v, a in c.coeffs.items():
            if v not in candidates:
                continue
            pn = counts.setdefault(v, [0, 0])
            pn[0 if a > 0 else 1] += 1
    best = None
    best_cost = None
    for v in sorted(candidates):
        pos, neg = counts.get(v, (0, 0))
        cost = pos * neg - (pos + neg)
        if best_cost is None or cost < best_cost:
            best, best_cost = v, cost
    return best


def _eliminate(ineqs: List[LinConstraint],
               name: str) -> Optional[List[LinConstraint]]:
    """One FM step; None signals a blowup give-up.

    Combination is by integer cross-multiplication — ``aq*p + ap*q``
    instead of ``p/ap + q/aq`` — so no rational arithmetic happens
    here; the constructor renormalizes each combined row to coprime
    integers.
    """
    kept, pos, neg = [], [], []
    for c in ineqs:
        a = c.coeffs.get(name, 0)
        if a == 0:
            kept.append(c)
        elif a > 0:
            pos.append(c)
        else:
            neg.append(c)
    if len(pos) * len(neg) + len(kept) > MAX_CONSTRAINTS:
        return None
    for p in pos:
        ap = p.coeffs[name]
        for q in neg:
            aq = -q.coeffs[name]
            coeffs: Dict[str, int] = {}
            for v, c in p.coeffs.items():
                if v != name:
                    coeffs[v] = aq * c
            for v, c in q.coeffs.items():
                if v != name:
                    coeffs[v] = coeffs.get(v, 0) + ap * c
            kept.append(LinConstraint(coeffs, aq * p.const + ap * q.const))
    return _dedupe(kept)
