"""The classic dependence tests: ZIV, GCD, and Banerjee bounds.

These are the cheap tiers of the analyzer's test ladder (the expensive
exact tier is rational Fourier–Motzkin in
:mod:`repro.deps.analysis.linear_system`):

* **ZIV** — a dimension whose subscripts use no iteration variables is
  independent iff the two constants differ;
* **GCD** — an affine equality has integer solutions only if the gcd of
  its variable coefficients divides its constant term;
* **Banerjee** — interval bounds of ``f(x1) - g(x2)`` under the loop
  ranges and a direction-vector constraint; independence when the
  interval excludes zero.

All three are *refutation* tests: "pass" means a dependence cannot be
ruled out.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.util.intmath import gcd_many

Coeffs = Dict[str, Fraction]
Interval = Tuple[Optional[Fraction], Optional[Fraction]]  # None = infinite


class Equality:
    """``sum(coeffs[v] * v) + const == 0`` over suffixed iteration
    variables (``i$1``/``i$2``) and invariant symbols."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Coeffs, const: Fraction):
        self.coeffs = {v: Fraction(c) for v, c in coeffs.items() if c != 0}
        self.const = Fraction(const)

    def __repr__(self):
        terms = " + ".join(f"{c}*{v}" for v, c in sorted(self.coeffs.items()))
        return f"Equality({terms} + {self.const} == 0)"


def gcd_test(eq: Equality) -> bool:
    """True when integer solutions may exist (pass), False = refuted."""
    denominators = [c.denominator for c in eq.coeffs.values()]
    denominators.append(eq.const.denominator)
    scale = 1
    for d in denominators:
        scale = scale * d // _gcd2(scale, d)
    ints = [int(c * scale) for c in eq.coeffs.values()]
    const = int(eq.const * scale)
    g = gcd_many(ints)
    if g == 0:
        return const == 0
    return const % g == 0


def _gcd2(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a or 1


def _iv_add(a: Interval, b: Interval) -> Interval:
    lo = None if a[0] is None or b[0] is None else a[0] + b[0]
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return lo, hi


def _iv_scale(a: Interval, k: Fraction) -> Interval:
    if k == 0:
        return Fraction(0), Fraction(0)
    lo, hi = a
    if k > 0:
        return (None if lo is None else lo * k,
                None if hi is None else hi * k)
    return (None if hi is None else hi * k,
            None if lo is None else lo * k)


def _iv_intersect(a: Interval, b: Interval) -> Optional[Interval]:
    lo = a[0] if b[0] is None else b[0] if a[0] is None else max(a[0], b[0])
    hi = a[1] if b[1] is None else b[1] if a[1] is None else min(a[1], b[1])
    if lo is not None and hi is not None and lo > hi:
        return None
    return lo, hi


#: Direction codes to delta intervals (delta = x2 - x1).
DIRECTION_INTERVALS: Dict[str, Interval] = {
    "+": (Fraction(1), None),
    "0": (Fraction(0), Fraction(0)),
    "-": (None, Fraction(-1)),
    "*": (None, None),
}


def banerjee_test(eq: Equality,
                  var_ranges: Dict[str, Interval],
                  direction: Dict[str, str]) -> bool:
    """Banerjee-style interval refutation under a direction constraint.

    *var_ranges* maps base iteration-variable names to their (possibly
    infinite) value intervals; *direction* maps base names to one of
    ``'+' '0' '-' '*'`` constraining ``x$2 - x$1``.  Any variable in the
    equality that is neither a suffixed iteration variable nor in
    *var_ranges* (e.g. a symbolic invariant) is unbounded.

    Returns True when a dependence cannot be ruled out.
    """
    # Rewrite x$2 = x$1 + delta: coefficient a2 moves onto x$1 and delta.
    combined: Dict[str, Fraction] = {}
    delta_coeffs: Dict[str, Fraction] = {}
    extra: Dict[str, Fraction] = {}
    for v, c in eq.coeffs.items():
        if v.endswith("$1"):
            base = v[:-2]
            combined[base] = combined.get(base, Fraction(0)) + c
        elif v.endswith("$2"):
            base = v[:-2]
            combined[base] = combined.get(base, Fraction(0)) + c
            delta_coeffs[base] = delta_coeffs.get(base, Fraction(0)) + c
        else:
            extra[v] = extra.get(v, Fraction(0)) + c

    total: Interval = (eq.const, eq.const)
    for base, c in combined.items():
        rng = var_ranges.get(base, (None, None))
        total = _iv_add(total, _iv_scale(rng, c))
    for base, c in delta_coeffs.items():
        dir_iv = DIRECTION_INTERVALS[direction.get(base, "*")]
        rng = var_ranges.get(base, (None, None))
        width: Interval = (None, None)
        if rng[0] is not None and rng[1] is not None:
            width = (rng[0] - rng[1], rng[1] - rng[0])
        delta_iv = _iv_intersect(dir_iv, width)
        if delta_iv is None:
            return False  # direction impossible inside the range at all
        total = _iv_add(total, _iv_scale(delta_iv, c))
    for v, c in extra.items():
        total = _iv_add(total, _iv_scale((None, None), c))

    lo, hi = total
    if lo is not None and lo > 0:
        return False
    if hi is not None and hi < 0:
        return False
    return True
