"""Perf-10 — the long-lived transformation service's warm-state payoff.

A session of requests against one warm :class:`TransformationService`
versus the same 100-request replay where every request hits a fresh,
cold service (the one-shot-CLI model, minus process startup — which
only makes the comparison conservative).  The replay is the shape a
tooling client actually produces: the same handful of nests and step
sequences arriving over and over, interleaved with searches and
analyses.

Warm state turns the repeats into memo hits — parse, dependence
analysis, legality verdicts, compiled engines — so the asserted floor
is a property of the caching architecture, not of host speed.  The
smoke run writes ``bench_service.json`` with the observability metrics
of an instrumented warm replay embedded (queue/batch counters,
per-phase latency histograms, cache reuse ratio).
"""

import gc
import json
import time

import pytest

from repro import obs
from repro.obs.metrics import get_metrics
from repro.service import TransformationService

STENCIL = """
do i = 2, n-1
  do j = 2, n-1
    a(i, j) = a(i-1, j) + a(i, j-1)
  enddo
enddo
"""

MATMUL = """
do i = 1, n
  do j = 1, n
    do k = 1, n
      A(i, j) += B(i, k) * C(k, j)
    enddo
  enddo
enddo
"""

SPEEDUP_FLOOR = 3.0
ROUNDS = 10


def replay_requests():
    """The 100-request session: 10 rounds of a 10-request tool loop."""
    requests = []
    rid = 0
    for _ in range(ROUNDS):
        for op, params in (
            ("parse", {"text": STENCIL}),
            ("analyze", {"text": STENCIL}),
            ("legality", {"text": STENCIL, "steps": "interchange(1,2)"}),
            ("legality", {"text": STENCIL,
                          "steps": "skew(2,1); interchange(1,2)"}),
            ("legality", {"text": STENCIL, "steps": "block(1,2,16)"}),
            ("search", {"text": STENCIL, "depth": 2, "beam": 4}),
            ("analyze", {"text": MATMUL}),
            ("legality", {"text": MATMUL, "steps": "interchange(1,3)"}),
            ("legality", {"text": MATMUL,
                          "steps": "permute(2,3,1); block(1,3,8)"}),
            ("search", {"text": MATMUL, "depth": 1, "beam": 4}),
        ):
            rid += 1
            requests.append({"id": rid, "op": op, "params": params})
    return requests


def run_warm(requests):
    """One service, the whole session (the point of the PR).  The bench
    enqueues the whole replay up front, so size admission to the
    session (a real client would interleave and never queue this
    deep)."""
    service = TransformationService(queue_max=len(requests))
    replies = []
    for req in requests:
        service.ingest(json.dumps(req), replies.append)
    service.request_drain("bench")
    service.run()
    return service, replies


def run_cold(requests):
    """A fresh service per request: nothing survives between requests."""
    replies = []
    for req in requests:
        service = TransformationService()
        service.ingest(json.dumps(req), replies.append)
        service.request_drain("bench")
        service.run()
    return replies


def _timed(fn):
    """Best of two trials with the collector paused (see Perf-1)."""
    best, result = float("inf"), None
    for _ in range(2):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, result


@pytest.mark.smoke
def test_smoke_service_warm_vs_cold(report, smoke_summary):
    """CI guardrail: the warm service must beat per-request cold state
    >= 3x on the 100-request replay, answering identically."""
    requests = replay_requests()

    cold_s, cold_replies = _timed(lambda: run_cold(requests))
    warm_s, (service, warm_replies) = _timed(lambda: run_warm(requests))

    # Transparency first: a fast wrong answer is not a speedup.  Warm
    # search repeats differ only in cache-stats accounting, never in
    # the answer fields.
    assert len(warm_replies) == len(cold_replies) == len(requests)
    for warm, cold in zip(sorted(warm_replies, key=lambda r: r["id"]),
                          sorted(cold_replies, key=lambda r: r["id"])):
        assert warm["ok"] and cold["ok"]
        w, c = warm["result"], cold["result"]
        if "winner" in w:
            for key in ("winner", "spec", "score", "explored", "legal"):
                assert w[key] == c[key], (warm["id"], key)
        else:
            assert w == c, warm["id"]

    # An instrumented warm replay, for the embedded metrics.
    obs.enable()
    try:
        observed_service, _ = run_warm(requests)
        metrics = get_metrics().snapshot()
        phases = obs.profile_document()["phases"]
    finally:
        obs.disable()
    stats = observed_service._op_stats({})

    speedup = cold_s / warm_s
    doc = {
        "benchmark": f"{len(requests)}-request replay "
                     f"(legality/search/analyze over 2 nests), warm "
                     f"service vs fresh-state per request",
        "requests": len(requests),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "threshold": SPEEDUP_FLOOR,
        "cache_reuse_ratio": stats["caches"]["reuse_ratio"],
        "caches": stats["caches"],
        "batches": stats["batches"],
        "queue": stats["queue"],
        "metrics": {name: value for name, value in sorted(metrics.items())
                    if name.startswith(("service.", "search.",
                                        "legality."))},
        "phases": phases,
    }
    smoke_summary["service"] = {k: doc[k] for k in
                                ("benchmark", "requests", "cold_seconds",
                                 "warm_seconds", "speedup", "threshold",
                                 "cache_reuse_ratio")}
    with open("bench_service.json", "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    report("Perf-10 smoke: warm service vs cold per-request state",
           f"{speedup:.1f}x over {len(requests)} requests "
           f"(floor {SPEEDUP_FLOOR}x); cold {cold_s:.2f}s vs warm "
           f"{warm_s:.2f}s; cache reuse ratio "
           f"{stats['caches']['reuse_ratio']:.2f}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm service only {speedup:.2f}x faster than cold")


def test_service_batching_reports(report):
    """Report-only: batch accounting on a bursty session."""
    requests = replay_requests()[:40]
    service = TransformationService(batch_max=16)
    replies = []
    for req in requests:
        service.ingest(json.dumps(req), replies.append)
    service.request_drain("bench")
    service.run()
    assert all(r["ok"] for r in replies)
    counters = service.counters
    report("Perf-10: service batching (informational)",
           f"{counters['batches']} batches for {len(requests)} requests "
           f"(max batch {counters['max_batch']}, batch_max 16)")
