"""Figures 6 and 7 — the appendix's matrix-multiply example: a
five-instantiation sequence (ReversePermute, Block, Parallelize,
ReversePermute, Coalesce).

Regenerates Figure 7's table — dependence vectors and loop headers after
every stage — verifies the stage-by-stage dependence sets against the
figure, checks end-to-end semantics with concrete block sizes, and
times the full pipeline (legality + codegen) and its per-stage cost.
"""

import random

import pytest

from repro.core import (
    Block,
    Coalesce,
    Parallelize,
    ReversePermute,
    Transformation,
)
from repro.deps import depset
from repro.deps.analysis import analyze
from repro.runtime import check_equivalence, run_nest

from benchmarks.conftest import random_square


def pipeline(bj="bj", bk="bk", bi="bi"):
    return Transformation.of(
        ReversePermute(3, [False] * 3, [3, 1, 2]),
        Block(3, 1, 3, [bj, bk, bi]),
        Parallelize(6, [True, False, True, False, False, False]),
        ReversePermute(6, [False] * 6, [1, 3, 2, 4, 5, 6]),
        Coalesce(6, 1, 2),
    )


EXPECTED_TRACE = [
    depset((0, 0, "+")),                                   # START
    depset((0, "+", 0)),                                   # ReversePermute
    depset((0, 0, 0, 0, "+", 0), (0, "+", 0, 0, "*", 0)),  # Block
    depset((0, 0, 0, 0, "+", 0), (0, "+", 0, 0, "*", 0)),  # Parallelize
    depset((0, 0, 0, 0, "+", 0), (0, 0, "+", 0, "*", 0)),  # ReversePermute
    depset((0, 0, 0, "+", 0), (0, "+", 0, "*", 0)),        # Coalesce
]


def test_fig7_dependence_stage_table(report, benchmark, matmul_nest):
    deps = analyze(matmul_nest)
    T = pipeline()
    trace = benchmark(T.dep_set_trace, deps)
    names = ["START"] + [s.kernel_name for s in T.steps]
    lines = [f"{name:16} {d}" for name, d in zip(names, trace)]
    report("Figure 7: dependence vectors per stage", "\n".join(lines))
    assert trace == EXPECTED_TRACE


def test_fig7_loop_header_table(report, benchmark, matmul_nest):
    T = pipeline()
    trace = benchmark(T.loop_trace, matmul_nest)
    names = ["START"] + [s.kernel_name for s in T.steps]
    blocks = []
    for name, loops in zip(names, trace):
        headers = "\n    ".join(lp.header() for lp in loops)
        blocks.append(f"{name}:\n    {headers}")
    report("Figure 7: loop headers per stage", "\n\n".join(blocks))
    # Final shape: pardo jic, do kk, do j, do k, do i.
    final = trace[-1]
    assert [lp.index for lp in final] == ["jic", "kk", "j", "k", "i"]
    assert final[0].kind == "pardo"


def test_fig7_generated_code(report, benchmark, matmul_nest):
    deps = analyze(matmul_nest)
    T = pipeline()
    out = benchmark(T.apply, matmul_nest, deps)
    from repro.ir import pretty_with_temps
    report("Figure 7: final transformed matrix multiply (symbolic "
           "block sizes, paper-style tmp scalars)",
           pretty_with_temps(out))
    text = pretty_with_temps(out)
    assert out.depth == 5
    assert "tmpj =" in text and "tmpi =" in text
    assert "do j = max(1, tmpj), min(bj + tmpj - 1, n)" in text


@pytest.mark.parametrize("sizes", [(2, 2, 2), (3, 2, 4), (4, 4, 4)])
def test_fig7_semantics_concrete_blocks(report, benchmark, matmul_nest,
                                        sizes):
    deps = depset((0, 0, "+"))
    T = pipeline(*sizes)
    out = T.apply(matmul_nest, deps)
    n = 8
    rng = random.Random(sum(sizes))
    arrays = {"B": random_square(rng, 1, n, "B"),
              "C": random_square(rng, 1, n, "C")}
    check_equivalence(matmul_nest, out, arrays, symbols={"n": n})
    result = benchmark(run_nest, out, arrays, symbols={"n": n})
    assert result.body_count == n ** 3


def test_fig7_legality_cost(benchmark, matmul_nest):
    """How much the uniform legality test costs for a 5-step sequence —
    the price of a candidate evaluation in a search-and-undo optimizer."""
    deps = depset((0, 0, "+"))
    T = pipeline()
    report = benchmark(T.legality, matmul_nest, deps)
    assert report.legal
