"""Perf-8 — simulated parallel speedups under the makespan cost model.

Quantifies the parallel-execution motivation: what Parallelize,
the Figure-1 wavefront, and Coalesce actually buy on P simulated
processors (LPT scheduling of the outermost pardo loop).
"""

import pytest

from repro.core import Coalesce, Parallelize, Transformation
from repro.core.derived import skew_and_interchange
from repro.deps import depset
from repro.deps.analysis import analyze
from repro.ir import parse_nest
from repro.optimize import maximal_parallelize
from repro.runtime import simulate_makespan


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_matmul_parallel_scaling(report, benchmark, matmul_nest, p):
    deps = depset((0, 0, "+"))
    T = maximal_parallelize(matmul_nest, deps)
    out = T.apply(matmul_nest, deps)
    n = 16
    result = benchmark(simulate_makespan, out, p, {"n": n})
    report(f"Perf-8: matmul on P={p}",
           f"{result!r}, efficiency {result.efficiency:.2f}")
    assert result.speedup == pytest.approx(min(p, n), rel=0.01)


@pytest.mark.parametrize("n", [10, 20, 40])
def test_wavefront_speedup_series(report, benchmark, stencil_nest, n):
    """Figure 1's payoff across sizes: speedup grows ~ n^2 / (2n) on
    enough processors (the wavefront length bounds each step)."""
    deps = analyze(stencil_nest)
    T = skew_and_interchange().then(Parallelize(2, [False, True]),
                                    reduce=False)
    out = T.apply(stencil_nest, deps)
    p = 64
    serial = simulate_makespan(stencil_nest, p, {"n": n})
    wave = benchmark(simulate_makespan, out, p, {"n": n})
    report(f"Perf-8: stencil wavefront, n={n}, P={p}",
           f"serial makespan {serial.makespan} -> wavefront "
           f"{wave.makespan} ({wave.speedup:.1f}x)")
    assert wave.makespan < serial.makespan
    # The shape: makespan is Theta(n) (one step per wavefront, with the
    # short wavefronts adding a logarithmic-ish tail), not Theta(n^2).
    assert wave.makespan <= 4 * n


def test_coalesce_load_balance_sweep(report, benchmark):
    """The guided-self-scheduling story across processor counts: the
    coalesced loop's makespan is never worse, and wins whenever the
    outer trip count does not divide P."""
    nest = parse_nest("""
    pardo i = 1, 6
      pardo j = 1, 5
        a(i, j) = 1
      enddo
    enddo
    """)
    T = Transformation.of(Coalesce(2, 1, 2))
    out = T.apply(nest, depset())
    lines = [f"{'P':>3} | nested | coalesced"]
    wins = 0
    for p in (2, 3, 4, 5, 7, 8, 16):
        nested = simulate_makespan(nest, p).makespan
        merged = simulate_makespan(out, p).makespan
        lines.append(f"{p:>3} | {nested:>6} | {merged}")
        assert merged <= nested
        if merged < nested:
            wins += 1
    report("Perf-8: coalesce load balance (30 iterations total)",
           "\n".join(lines))
    assert wins >= 3
    benchmark(simulate_makespan, out, 7)
