"""Perf-9 — sharded parallel beam search (``search(..., jobs=N)``).

The scoring functions that matter in practice *execute* each candidate
(compiled engine + cache simulator), so candidate evaluation is
latency-bound: every score pays a measurement latency that is
wall-clock, not CPU.  The smoke benchmark models that latency explicitly
— a fixed sleep inside the scorer — which makes the asserted speedup a
property of the sharding architecture rather than of the host's core
count: overlapping N workers' latencies wins even on a single-CPU CI
runner, where a CPU-bound workload could never show a speedup.  A
report-only CPU-bound measurement rides along for hosts with real
parallelism.

Besides the speedup floor, the smoke run re-asserts the determinism
contract (jobs=4 field-identical to jobs=1) and writes its numbers to
``bench_parallel_search.json`` (uploaded by CI next to
``bench_smoke.json``).
"""

import gc
import json
import time

import pytest

from repro.deps import depset
from repro.ir import parse_nest
from repro.optimize.search import SearchConfig, parallelism_score, search

MATMUL = """
do i = 1, n
  do j = 1, n
    do k = 1, n
      A(i, j) += B(i, k) * C(k, j)
    enddo
  enddo
enddo
"""

#: Modeled per-candidate measurement latency (seconds).  Chosen so the
#: serial run is ~1s: long enough that fork/queue overhead is noise,
#: short enough for a CI smoke lane.
MEASURE_LATENCY = 0.015

SPEEDUP_FLOOR = 1.5
JOBS = 4


def _latency_bound_score(transformation, nest, deps):
    time.sleep(MEASURE_LATENCY)
    return parallelism_score(transformation, nest, deps)


def _timed(fn):
    """Best of two trials with the collector paused (see Perf-1)."""
    best, result = float("inf"), None
    for _ in range(2):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, result


@pytest.mark.smoke
def test_smoke_parallel_search_speedup(report, smoke_summary):
    """CI guardrail: jobs=4 must be >= 1.5x faster than serial on the
    latency-bound deep-menu workload, with field-identical results."""
    nest = parse_nest(MATMUL)
    deps = depset((0, 0, "+"))

    serial_s, serial = _timed(
        lambda: search(nest, deps, config=SearchConfig(
            score=_latency_bound_score, depth=2, beam=6)))
    parallel_s, parallel = _timed(
        lambda: search(nest, deps, config=SearchConfig(
            score=_latency_bound_score, depth=2, beam=6, jobs=JOBS)))

    # Determinism first: a fast wrong answer is not a speedup.
    assert parallel.transformation.signature() == \
        serial.transformation.signature()
    assert parallel.score == serial.score
    assert parallel.explored == serial.explored
    assert parallel.legal_count == serial.legal_count
    assert parallel.cache_stats == serial.cache_stats
    stats = parallel.parallel
    assert not stats["degraded"] and stats["crashes"] == 0

    speedup = serial_s / parallel_s
    doc = {
        "benchmark": f"latency-bound beam search, depth=2 beam=6, "
                     f"{MEASURE_LATENCY * 1000:.0f}ms/candidate",
        "explored": serial.explored,
        "legal": serial.legal_count,
        "cache_stats": serial.cache_stats,
        "serial_seconds": round(serial_s, 6),
        "parallel_seconds": round(parallel_s, 6),
        "jobs": JOBS,
        "speedup": round(speedup, 2),
        "threshold": SPEEDUP_FLOOR,
        "parallel_stats": stats,
    }
    smoke_summary["parallel_search"] = doc
    with open("bench_parallel_search.json", "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    report("Perf-9 smoke: sharded parallel search",
           f"{speedup:.1f}x at jobs={JOBS} (floor {SPEEDUP_FLOOR}x), "
           f"{serial.explored} candidates, serial {serial_s:.2f}s vs "
           f"parallel {parallel_s:.2f}s; per-worker "
           f"{stats['per_worker']}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"jobs={JOBS} only {speedup:.2f}x faster than serial")


def test_parallel_search_cpu_bound_scaling(report):
    """Report-only: CPU-bound scaling depends on the host's core count
    (a single-CPU runner legitimately shows ~1x), so no floor here."""
    nest = parse_nest(MATMUL)
    deps = depset((0, 0, "+"))
    serial_s, serial = _timed(
        lambda: search(nest, deps, config=SearchConfig(depth=3, beam=8)))
    parallel_s, parallel = _timed(
        lambda: search(nest, deps,
                       config=SearchConfig(depth=3, beam=8, jobs=2)))
    assert parallel.score == serial.score
    assert parallel.cache_stats == serial.cache_stats
    report("Perf-9: CPU-bound parallel search (informational)",
           f"serial {serial_s * 1000:.1f}ms vs jobs=2 "
           f"{parallel_s * 1000:.1f}ms "
           f"({serial_s / parallel_s:.2f}x) on this host; "
           f"explored={serial.explored}")
