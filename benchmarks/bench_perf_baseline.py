"""Perf-4 — the general framework vs the unimodular-only baseline.

Regenerates the expressiveness comparison (which kernel templates each
framework can represent — the paper's core argument) and compares costs
on the common subset: composition (matrix product vs sequence
concatenation + peephole) and legality testing.
"""

import pytest

from repro.baselines import CannotExpress, UnimodularFramework
from repro.core import (
    Block,
    Coalesce,
    Interleave,
    Parallelize,
    ReversePermute,
    Transformation,
    Unimodular,
)
from repro.deps import depset

TEMPLATES = [
    ("Unimodular", Unimodular(3, [[1, 1, 0], [0, 1, 0], [0, 0, 1]])),
    ("ReversePermute", ReversePermute(3, [True, False, False], [2, 3, 1])),
    ("Parallelize", Parallelize(3, [True, False, False])),
    ("Block", Block(3, 1, 3, [8, 8, 8])),
    ("Coalesce", Coalesce(3, 1, 3)),
    ("Interleave", Interleave(3, 1, 3, [4, 4, 4])),
]


def test_expressiveness_table(report, benchmark):
    lines = [f"{'Template':18} | general framework | unimodular baseline",
             "-" * 62]
    expressible = 0
    for name, template in TEMPLATES:
        try:
            UnimodularFramework.from_template(template)
            baseline = "yes"
            expressible += 1
        except CannotExpress:
            baseline = "NO"
        lines.append(f"{name:18} | {'yes':17} | {baseline}")
    report("Perf-4: expressiveness (the paper's core argument)",
           "\n".join(lines))
    assert expressible == 2  # only Unimodular and ReversePermute

    def probe():
        count = 0
        for _, template in TEMPLATES:
            try:
                UnimodularFramework.from_template(template)
                count += 1
            except CannotExpress:
                pass
        return count

    assert benchmark(probe) == 2


def test_composition_cost_baseline(benchmark):
    a = UnimodularFramework.skew(3, 2, 1)
    b = UnimodularFramework.interchange(3, 1, 2)
    c = UnimodularFramework.reversal(3, [3])

    def compose():
        return a.then(b).then(c)

    result = benchmark(compose)
    assert result.matrix.is_unimodular()


def test_composition_cost_general(benchmark):
    a = Transformation.of(Unimodular(3, UnimodularFramework.skew(3, 2, 1).matrix))
    b = Unimodular(3, UnimodularFramework.interchange(3, 1, 2).matrix)
    c = Unimodular(3, UnimodularFramework.reversal(3, [3]).matrix)

    def compose():
        return a.then(b).then(c)

    result = benchmark(compose)
    assert len(result) == 1  # peephole fuses to one step


def test_legality_cost_baseline(benchmark):
    deps = depset((1, 0, 0), (0, 1, -1), ("0+", 2, "-"))
    t = UnimodularFramework.skew(3, 2, 1).then(
        UnimodularFramework.interchange(3, 1, 2))
    assert benchmark(t.is_legal, deps) in (True, False)


def test_legality_cost_general_on_common_subset(benchmark):
    deps = depset((1, 0, 0), (0, 1, -1), ("0+", 2, "-"))
    t = Transformation.of(
        Unimodular(3, UnimodularFramework.skew(3, 2, 1).matrix),
        Unimodular(3, UnimodularFramework.interchange(3, 1, 2).matrix))

    def dep_half():
        return not t.map_dep_set(deps).can_be_lex_negative()

    assert benchmark(dep_half) in (True, False)


def test_reverse_permute_advantage(report, benchmark):
    """Section 4.2's claim (c): ReversePermute avoids matrix arithmetic
    on dependence vectors.  Measure the dependence-mapping speed of the
    same interchange via ReversePermute vs via a matrix."""
    deps = depset(*[(i % 3, (i * 7) % 5 - 2, 1) for i in range(20)])
    rp = ReversePermute(3, [False] * 3, [2, 1, 3])
    benchmark(rp.map_dep_set, deps)
    report("Perf-4: ReversePermute dependence mapping",
           "compare against test_mapping_throughput[Unimodular-...] in "
           "bench_table2 for the matrix path")
